//! Application-specific thresholds from historical data (paper §4.2).
//!
//! Paradyn's stock threshold (20%) can hide real bottlenecks; a threshold
//! that is too low wastes instrumentation without improving the result.
//! The useful setting is application-specific — 12% for the MPI Poisson
//! code, 20% for the PVM ocean model — which is exactly what a
//! historical record can provide.
//!
//! ```text
//! cargo run --release --example threshold_study
//! ```

use histpc::history;
use histpc::prelude::*;

fn study(name: &str, workload: &dyn Workload) {
    let config = SearchConfig {
        window: SimDuration::from_secs(2),
        sample: SimDuration::from_millis(250),
        ..SearchConfig::default()
    };
    let session = Session::new();
    println!("== {name} ==");

    // Run once with the stock settings; derive a threshold from the
    // run's raw profile (the historical record).
    let base = session.diagnose(workload, &config, "base").unwrap();
    let sync = history::derive_threshold_from_profile(
        &base.postmortem,
        &histpc::consultant::HypothesisTree::standard(),
        "ExcessiveSyncWaitingTime",
        0.05,
        0.9,
    )
    .unwrap_or(0.20);
    println!(
        "stock 20% threshold: {} bottlenecks from {} pairs (efficiency {:.3})",
        base.report.bottleneck_count(),
        base.report.pairs_tested,
        base.report.efficiency()
    );
    println!(
        "history-derived synchronization threshold: {:.1}%",
        sync * 100.0
    );

    // Re-run with only the derived threshold (no other directives).
    let mut directives = SearchDirectives::none();
    directives.add_threshold(ThresholdDirective {
        hypothesis: "ExcessiveSyncWaitingTime".into(),
        value: sync,
    });
    let tuned = session
        .diagnose(
            workload,
            &config.clone().with_directives(directives),
            "tuned",
        )
        .unwrap();
    println!(
        "derived threshold:   {} bottlenecks from {} pairs (efficiency {:.3})",
        tuned.report.bottleneck_count(),
        tuned.report.pairs_tested,
        tuned.report.efficiency()
    );
    let missed = tuned
        .report
        .bottleneck_set()
        .iter()
        .filter(|p| !base.report.bottleneck_set().contains(p))
        .count();
    println!("bottlenecks the stock threshold missed: {missed}\n");
}

fn main() {
    study(
        "Poisson 2-D decomposition (MPI, 4 nodes)",
        &PoissonWorkload::new(PoissonVersion::C),
    );
    study(
        "Ocean circulation model (PVM, workstations)",
        &OceanWorkload::new(),
    );
}
