//! Resource mapping between code versions (the paper's §3.2 and fig. 3).
//!
//! Version A names its modules `oned.f`, `exchng1.f`, `sweep.f`; the
//! non-blocking revision B renames them to `onednb.f`, `nbexchng.f`,
//! `nbsweep.f` (and `sweep1d` becomes `nbsweep`). Directives harvested
//! from A are useless against B until the names are mapped. This example
//! shows the execution map, the automatically suggested mappings, a
//! user-specified mapping file, and the directed diagnosis of B.
//!
//! ```text
//! cargo run --release --example cross_version
//! ```

use histpc::history;
use histpc::instr::Binder;
use histpc::prelude::*;

fn main() {
    let config = SearchConfig {
        window: SimDuration::from_secs(2),
        sample: SimDuration::from_millis(250),
        ..SearchConfig::default()
    };
    let session = Session::new();

    // Base run of version A.
    let a = session
        .diagnose(&PoissonWorkload::new(PoissonVersion::A), &config, "a1")
        .unwrap();
    println!(
        "version A base run: {} bottlenecks, {} pairs",
        a.report.bottleneck_count(),
        a.report.pairs_tested
    );

    // The execution map of A and B's Code hierarchies (fig. 3).
    let space_a = Binder::new(PoissonWorkload::new(PoissonVersion::A).app_spec()).build_space();
    let space_b = Binder::new(PoissonWorkload::new(PoissonVersion::B).app_spec()).build_space();
    let mut merged = space_a.hierarchy("Code").unwrap().clone();
    merged
        .merge_tagged(space_b.hierarchy("Code").unwrap(), 1, 2)
        .unwrap();
    println!("\nexecution map ({{1}} = A only, {{2}} = B only, {{1,2}} = both):");
    print!("{}", merged.render(true));

    // Automatic mapping suggestions...
    let a_names: Vec<ResourceName> = space_a
        .hierarchies()
        .iter()
        .flat_map(|h| h.all_names())
        .collect();
    let b_names: Vec<ResourceName> = space_b
        .hierarchies()
        .iter()
        .flat_map(|h| h.all_names())
        .collect();
    let suggested = MappingSet::suggest(&a_names, &b_names);
    println!("\nsuggested mappings:\n{}", suggested.to_text());

    // ...optionally overridden/extended by a user-specified mapping file,
    // exactly as in the paper ("map resourceName1 resourceName2").
    let user_file = "# corrections from the developer\n\
                     map /Code/oned.f/main /Code/onednb.f/main\n";
    let user = MappingSet::parse(user_file).expect("mapping file parses");
    println!("user mapping file:\n{user_file}");

    // Harvest from A, map into B's names, diagnose B.
    let directives = session
        .harvest_mapped(
            &a.record,
            &b_names,
            &ExtractionOptions::priorities_and_safe_prunes(),
            &user,
        )
        .unwrap();
    println!(
        "mapped {} directives from A into B's names",
        directives.len()
    );

    let b = session
        .diagnose(
            &PoissonWorkload::new(PoissonVersion::B),
            &config.clone().with_directives(directives),
            "b-directed",
        )
        .unwrap();
    println!(
        "\nversion B directed run: {} bottlenecks, {} pairs, all found by {}",
        b.report.bottleneck_count(),
        b.report.pairs_tested,
        b.report
            .time_of_last_bottleneck()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into()),
    );

    // For comparison: B without history. The reference set is
    // de-duplicated across the redundant Machine hierarchy (the mapped
    // directives prune it, so machine-constrained duplicates of process
    // bottlenecks are intentionally not re-found).
    let b_base = session
        .diagnose(&PoissonWorkload::new(PoissonVersion::B), &config, "b-base")
        .unwrap();
    let t_base = b_base.report.time_of_last_bottleneck().unwrap();
    let truth: Vec<(String, Focus)> = b_base
        .report
        .bottleneck_set()
        .into_iter()
        .filter(|(_, f)| f.selection("Machine").is_none_or(|m| m.is_root()))
        .collect();
    let t_directed = b.report.time_to_find(&truth, 1.0).unwrap_or(t_base);
    println!(
        "version B base run would need {} — mapped directives reduce it by {:.1}%",
        t_base,
        100.0 * (1.0 - t_directed.as_secs_f64() / t_base.as_secs_f64())
    );

    // The combination operators on multi-run knowledge (§4.3).
    let da = history::extract(&a.record, &ExtractionOptions::priorities_only());
    let db = history::extract(&b_base.record, &ExtractionOptions::priorities_only());
    let inter = histpc::history::intersect(&da, &db);
    let uni = histpc::history::union(&da, &db);
    println!(
        "\ncombining A and B priorities: |A∩B| = {}, |A∪B| = {}",
        inter.priorities.len(),
        uni.priorities.len()
    );
}
