//! The profile-analyze-change tuning cycle of the paper's §4.3.
//!
//! A developer tunes the Poisson application through four revisions:
//! A (1-D, blocking) → B (1-D, non-blocking) → C (2-D) → D (2-D on 8
//! nodes). At each step, the Performance Consultant is directed by
//! knowledge harvested from the *previous* version's run, with resource
//! names mapped across the revision (renamed modules/functions, different
//! machine nodes).
//!
//! ```text
//! cargo run --release --example tuning_cycle
//! ```

use histpc::prelude::*;

fn main() {
    let versions = [
        PoissonVersion::A,
        PoissonVersion::B,
        PoissonVersion::C,
        PoissonVersion::D,
    ];
    let config = SearchConfig {
        window: SimDuration::from_secs(2),
        sample: SimDuration::from_millis(250),
        ..SearchConfig::default()
    };
    let store_dir = std::env::temp_dir().join("histpc-tuning-cycle");
    let _ = std::fs::remove_dir_all(&store_dir);
    let session = Session::with_store(&store_dir).expect("store opens");
    println!("execution store: {}", store_dir.display());

    let mut previous: Option<Diagnosis> = None;
    for version in versions {
        let wl = PoissonWorkload::new(version);
        let label = format!("run-{}", version.label());
        println!("\n== version {} ==", version.label());

        // A quick structural probe gives the new version's resource list
        // so old directives can be mapped onto it. (In a live tool this
        // comes from the application's startup discovery.)
        let mut probe_engine = wl.build_engine();
        probe_engine.run_until(SimTime::from_secs(1));
        let probe = PostmortemData::from_totals(probe_engine.app().clone(), probe_engine.totals());
        let new_resources: Vec<ResourceName> = probe
            .space()
            .hierarchies()
            .iter()
            .flat_map(|h| h.all_names())
            .collect();

        let directives = match &previous {
            None => SearchDirectives::none(),
            Some(prev) => {
                let mapped = session
                    .harvest_mapped(
                        &prev.record,
                        &new_resources,
                        &ExtractionOptions::priorities_and_safe_prunes(),
                        &MappingSet::new(),
                    )
                    .unwrap();
                println!(
                    "directing with {} directives harvested from version {}",
                    mapped.len(),
                    prev.record.app_version
                );
                mapped
            }
        };

        let d = session
            .diagnose(&wl, &config.clone().with_directives(directives), &label)
            .unwrap();
        let t = d
            .report
            .time_of_last_bottleneck()
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "bottlenecks: {}  pairs: {}  all found by: {}  (peak instr. cost {:.1}%)",
            d.report.bottleneck_count(),
            d.report.pairs_tested,
            t,
            d.report.peak_cost * 100.0
        );
        for b in d.report.bottlenecks().iter().take(3) {
            println!(
                "  {:>6.1}%  {}  {}",
                b.last_value * 100.0,
                b.hypothesis,
                b.focus
            );
        }

        // Quantitative comparison against the previous version (the
        // experiment-management loop): did the revision fix anything,
        // and did it introduce new problems?
        if let Some(prev) = &previous {
            let mapping = MappingSet::suggest(&prev.record.resources, &d.record.resources);
            let cmp = histpc::history::compare(&prev.record, &d.record, Some(&mapping));
            println!(
                "vs version {}: {} resolved, {} introduced, {} persisting",
                prev.record.app_version,
                cmp.resolved.len(),
                cmp.introduced.len(),
                cmp.persisting.len()
            );
        }
        previous = Some(d);
    }

    let apps = session
        .store()
        .unwrap()
        .applications()
        .expect("store lists");
    let runs = session.store().unwrap().labels("poisson").expect("labels");
    println!(
        "\nstore now holds {} application(s), runs: {:?}",
        apps.len(),
        runs
    );
}
