//! Quickstart: diagnose a parallel application, harvest directives from
//! the run, and re-diagnose — the paper's headline workflow.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use histpc::history;
use histpc::prelude::*;

fn main() {
    // The paper's primary application: the 2-D Poisson decomposition
    // (version C), simulated on a 4-node SP/2-like machine.
    let workload = PoissonWorkload::new(PoissonVersion::C);
    let config = SearchConfig {
        window: SimDuration::from_secs(2),
        sample: SimDuration::from_millis(250),
        ..SearchConfig::default()
    };
    let session = Session::new();

    // 1. The single-button Performance Consultant, no prior knowledge.
    println!("== base diagnosis (no directives) ==");
    let base = session.diagnose(&workload, &config, "base").unwrap();
    let t_base = base
        .report
        .time_of_last_bottleneck()
        .expect("the Poisson code has bottlenecks");
    println!(
        "found {} bottlenecks using {} instrumented pairs; all found by t = {}",
        base.report.bottleneck_count(),
        base.report.pairs_tested,
        t_base
    );
    println!("\ntop bottlenecks:");
    for b in base.report.bottlenecks().iter().take(5) {
        println!(
            "  {:>6.1}%  {}  {}",
            b.last_value * 100.0,
            b.hypothesis,
            b.focus
        );
    }

    // 2. Harvest search directives from the run: priorities for every
    //    previously true/false pair, plus the safe prunes (redundant
    //    machine hierarchy, trivial functions, SyncObject outside the
    //    sync hypotheses).
    let directives = history::extract(
        &base.record,
        &ExtractionOptions::priorities_and_safe_prunes(),
    );
    println!(
        "\nharvested {} directives ({} prunes, {} priorities)",
        directives.len(),
        directives.prunes.len(),
        directives.priorities.len()
    );

    // 3. The directed re-diagnosis.
    println!("\n== directed diagnosis (with historical directives) ==");
    let directed = session
        .diagnose(
            &workload,
            &config.clone().with_directives(directives),
            "directed",
        )
        .unwrap();
    let truth = base.report.bottleneck_set();
    let t_directed = directed
        .report
        .time_to_find(&truth, 1.0)
        .or_else(|| directed.report.time_of_last_bottleneck())
        .expect("directed run finds bottlenecks");
    println!(
        "found {} bottlenecks using {} instrumented pairs; all found by t = {}",
        directed.report.bottleneck_count(),
        directed.report.pairs_tested,
        t_directed
    );
    let reduction = 100.0 * (1.0 - t_directed.as_secs_f64() / t_base.as_secs_f64());
    println!("\ndiagnosis time: {t_base} -> {t_directed}  ({reduction:.1}% reduction)");
}
