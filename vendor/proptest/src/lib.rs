//! A minimal, dependency-free, offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no network access, so the
//! real `proptest` cannot be resolved from a registry. This shim
//! implements exactly the subset of the proptest 1.x API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * `prop_oneof!` and [`strategy::Just`],
//! * [`strategy::Strategy`] with `prop_map` and `boxed`,
//! * integer/float range strategies and a small regex-class string
//!   strategy (character classes, `.`, and `{m,n}` repetition),
//! * `prop::collection::vec` and `prop::option::of`.
//!
//! Generation is driven by a deterministic xorshift RNG seeded from the
//! test's module path and name, so failures are reproducible run to run.
//! There is **no shrinking**: a failing case panics with the generated
//! values visible in the assertion message.

pub mod test_runner {
    //! Runner configuration (`ProptestConfig` in the prelude).

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 32 }
        }
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }
}

/// Deterministic xorshift64* RNG driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from a seed (zero is remapped).
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo))
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// FNV-1a hash used to derive per-test RNG seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::TestRng;

    /// A source of generated values.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_u64(self.start as u64, self.end as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    (lo + rng.below(hi - lo + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.range_f64(self.start, self.end)
        }
    }

    /// String literals act as regex-subset strategies generating matching
    /// strings (see [`crate::string`]).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Generates `Option<T>` (about one `None` in three).
    pub struct OptionStrategy<S>(S);

    /// A strategy producing `None` or `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(3) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod string {
    //! Generation of strings matching a small regex subset.
    //!
    //! Supported syntax: literal characters, `.` (printable ASCII),
    //! character classes `[a-zA-Z_.]` (ranges, literals, trailing `-`),
    //! and repetition `{m}`, `{m,n}`, `?`, `*`, `+` (the unbounded forms
    //! are capped at 8).

    use crate::TestRng;

    #[derive(Debug, Clone)]
    enum CharSet {
        Any,
        Ranges(Vec<(char, char)>),
    }

    impl CharSet {
        fn pick(&self, rng: &mut TestRng) -> char {
            match self {
                CharSet::Any => char::from_u32(rng.range_u64(0x20, 0x7F) as u32).unwrap(),
                CharSet::Ranges(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                        .sum();
                    let mut k = rng.below(total);
                    for (a, b) in ranges {
                        let span = (*b as u64) - (*a as u64) + 1;
                        if k < span {
                            return char::from_u32(*a as u32 + k as u32).unwrap();
                        }
                        k -= span;
                    }
                    unreachable!("pick index within total span")
                }
            }
        }
    }

    struct Element {
        set: CharSet,
        min: usize,
        max: usize,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> CharSet {
        let mut ranges = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated character class");
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    break;
                }
                '-' => {
                    // A dash is a range operator only between two chars.
                    match (pending.take(), chars.peek()) {
                        (Some(lo), Some(&hi)) if hi != ']' => {
                            chars.next();
                            assert!(lo <= hi, "reversed class range");
                            ranges.push((lo, hi));
                        }
                        (p, _) => {
                            if let Some(p) = p {
                                ranges.push((p, p));
                            }
                            ranges.push(('-', '-'));
                        }
                    }
                }
                c => {
                    if let Some(p) = pending.replace(c) {
                        ranges.push((p, p));
                    }
                }
            }
        }
        assert!(!ranges.is_empty(), "empty character class");
        CharSet::Ranges(ranges)
    }

    fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let mut out = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars),
                '.' => CharSet::Any,
                '\\' => {
                    let esc = chars.next().expect("dangling escape");
                    CharSet::Ranges(vec![(esc, esc)])
                }
                c => {
                    assert!(
                        !"(){}|^$?*+".contains(c),
                        "unsupported regex feature {c:?} in {pattern:?}"
                    );
                    CharSet::Ranges(vec![(c, c)])
                }
            };
            let (min, max) = parse_repeat(&mut chars);
            out.push(Element { set, min, max });
        }
        out
    }

    /// Generates one string matching `pattern`.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for el in parse(pattern) {
            let n = el.min + rng.below((el.max - el.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(el.set.pick(rng));
            }
        }
        out
    }
}

/// Runs each contained `#[test]` function over many generated cases.
///
/// Supports the `#![proptest_config(ProptestConfig::with_cases(N))]`
/// header and `name in strategy` argument bindings. The body runs once per
/// case; assertion macros panic (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..(__config.cases as u64) {
                    let mut __rng = $crate::TestRng::new(
                        __seed ^ (__case + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniformly picks one of several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..200 {
            let s = crate::string::generate_matching("[A-Za-z][A-Za-z0-9_.:-]{0,11}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12, "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || "_.:-".contains(c)));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..500 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (2usize..=4).generate(&mut rng);
            assert!((2..=4).contains(&w));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(x in 0u32..10, v in prop::collection::vec(0u8..3, 1..5)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 3));
        }

        #[test]
        fn oneof_and_option(level in prop_oneof![Just(1u8), Just(2u8)],
                            opt in prop::option::of(0u16..4)) {
            prop_assert!(level == 1 || level == 2);
            if let Some(o) = opt {
                prop_assert!(o < 4);
            }
        }
    }
}
