//! A minimal, dependency-free, offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use: `criterion_group!` / `criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `measurement_time` /
//! `bench_function` / `finish`, and [`Bencher::iter`]. Each benchmark is
//! timed with plain wall-clock sampling and reported as a text line
//! (`group/name  mean ...  min ...  samples N`); there is no statistical
//! analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement markers (wall-clock only in this shim).

    /// Wall-clock time measurement.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
    // The measurement type is phantom in this shim (wall clock only).
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets how many samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        // One warm-up sample, discarded.
        f(&mut b);
        let started = Instant::now();
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.reset();
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        if samples.is_empty() {
            println!("{label:<48} (no samples)");
        } else {
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            println!(
                "{label:<48} mean {:>12}  min {:>12}  samples {}",
                format_time(mean),
                format_time(min),
                samples.len()
            );
        }
        self
    }

    /// Ends the group (report lines were already printed).
    pub fn finish(self) {}
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Times closures for one sample.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn reset(&mut self) {
        self.elapsed = Duration::ZERO;
        self.iters = 0;
    }

    /// Runs the routine once and accumulates its wall-clock time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Bundles benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut calls = 0usize;
        g.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| 1 + 1)
        });
        g.finish();
        // Warm-up + up to 3 samples.
        assert!((2..=4).contains(&calls), "calls = {calls}");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with('s'));
    }
}
