//! Property-based tests for resource names, hierarchies and foci.

use histpc_resources::{Focus, ResourceHierarchy, ResourceName, ResourceSpace};
use proptest::prelude::*;

/// A strategy for valid path segments (no reserved chars, non-empty).
fn segment() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.:-]{0,11}".prop_map(|s| s)
}

/// A strategy for valid resource names with 1..=5 segments.
fn resource_name() -> impl Strategy<Value = ResourceName> {
    prop::collection::vec(segment(), 1..=5)
        .prop_map(|segs| ResourceName::new(segs).expect("segments are valid"))
}

proptest! {
    #[test]
    fn name_parse_format_roundtrip(name in resource_name()) {
        let text = name.to_string();
        let parsed = ResourceName::parse(&text).unwrap();
        prop_assert_eq!(parsed, name);
    }

    #[test]
    fn name_parent_is_strict_ancestor(name in resource_name()) {
        if let Some(p) = name.parent() {
            prop_assert!(p.is_ancestor_of(&name));
            prop_assert!(p.is_prefix_of(&name));
            prop_assert!(!name.is_prefix_of(&p));
            prop_assert_eq!(p.depth() + 1, name.depth());
        } else {
            prop_assert!(name.is_root());
        }
    }

    #[test]
    fn name_prefix_is_reflexive_and_antisymmetric(a in resource_name(), b in resource_name()) {
        prop_assert!(a.is_prefix_of(&a));
        if a.is_prefix_of(&b) && b.is_prefix_of(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn rewrite_prefix_preserves_suffix(name in resource_name(), to in resource_name()) {
        // Rewriting any ancestor prefix keeps the tail segments intact.
        if let Some(parent) = name.parent() {
            let rewritten = name.rewrite_prefix(&parent, &to).unwrap();
            prop_assert_eq!(rewritten.label(), name.label());
            prop_assert!(to.is_prefix_of(&rewritten));
        }
    }

    #[test]
    fn hierarchy_lookup_inverts_name_of(paths in prop::collection::vec(
        prop::collection::vec(segment(), 1..=4), 1..12)) {
        let mut h = ResourceHierarchy::new("Code").unwrap();
        for p in &paths {
            h.add_path(p).unwrap();
        }
        for name in h.all_names() {
            let id = h.lookup(&name).unwrap();
            prop_assert_eq!(h.name_of(id), name);
        }
    }

    #[test]
    fn hierarchy_children_are_direct_descendants(paths in prop::collection::vec(
        prop::collection::vec(segment(), 1..=4), 1..12)) {
        let mut h = ResourceHierarchy::new("Code").unwrap();
        for p in &paths {
            h.add_path(p).unwrap();
        }
        for name in h.all_names() {
            for child in h.children_of(&name) {
                prop_assert!(name.is_ancestor_of(&child));
                prop_assert_eq!(child.parent().unwrap(), name.clone());
            }
        }
    }

    #[test]
    fn focus_parse_format_roundtrip(sels in prop::collection::vec(
        prop::collection::vec(segment(), 1..=4), 1..4)) {
        // Give each selection a distinct hierarchy name to satisfy focus rules.
        let names: Vec<ResourceName> = sels
            .iter()
            .enumerate()
            .map(|(i, tail)| {
                let mut segs = vec![format!("H{i}")];
                segs.extend(tail.iter().cloned());
                ResourceName::new(segs).unwrap()
            })
            .collect();
        let f = Focus::new(names).unwrap();
        let parsed = Focus::parse(&f.to_string()).unwrap();
        prop_assert_eq!(parsed, f);
    }

    #[test]
    fn refinement_yields_strict_descendants(paths in prop::collection::vec(
        prop::collection::vec(segment(), 1..=3), 1..10)) {
        let mut s = ResourceSpace::new();
        s.add_hierarchy("Code").unwrap();
        s.add_hierarchy("Process").unwrap();
        for (i, p) in paths.iter().enumerate() {
            let mut segs = vec![if i % 2 == 0 { "Code" } else { "Process" }.to_string()];
            segs.extend(p.iter().cloned());
            s.add_resource(&ResourceName::new(segs).unwrap()).unwrap();
        }
        // Walk two levels of refinement from the whole program and check
        // the partial order at every step.
        let root = s.whole_program();
        for child in s.refine(&root) {
            prop_assert!(root.strictly_subsumes(&child));
            prop_assert!(s.validates(&child));
            for grand in s.refine(&child) {
                prop_assert!(child.strictly_subsumes(&grand));
                prop_assert!(root.strictly_subsumes(&grand));
                prop_assert_eq!(grand.depth(), child.depth() + 1);
            }
        }
    }

    #[test]
    fn subsumption_is_transitive(tail in prop::collection::vec(segment(), 3..=3)) {
        let s0 = ResourceName::new(["Code".to_string()]).unwrap();
        let s1 = s0.child(&tail[0]).unwrap();
        let s2 = s1.child(&tail[1]).unwrap();
        let whole = Focus::whole_program(["Code"]);
        let f1 = whole.with_selection(s1);
        let f2 = whole.with_selection(s2);
        prop_assert!(whole.subsumes(&f1));
        prop_assert!(f1.subsumes(&f2));
        prop_assert!(whole.subsumes(&f2));
    }
}
