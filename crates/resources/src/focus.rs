//! Foci: one selection per resource hierarchy.
//!
//! A focus constrains a performance measurement to a part of the program
//! (paper §2). Selecting the root node of a hierarchy represents the
//! unconstrained view; selecting any other node narrows the view to the
//! leaves below it. The textual form mirrors the paper:
//! `</Code/testutil.C/verifyA,/Machine,/Process/Tester:2>`.

use crate::error::ResourceError;
use crate::name::ResourceName;
use std::collections::BTreeMap;
use std::fmt;

/// A focus: for each resource hierarchy, one selected resource.
///
/// Stored as a map from hierarchy name to selection, ordered by hierarchy
/// name so that equal foci have identical textual forms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Focus {
    selections: BTreeMap<String, ResourceName>,
}

impl Focus {
    /// Builds a focus from a list of selections, one per hierarchy.
    /// Rejects duplicate hierarchies.
    pub fn new<I>(selections: I) -> Result<Focus, ResourceError>
    where
        I: IntoIterator<Item = ResourceName>,
    {
        let mut map = BTreeMap::new();
        for sel in selections {
            let h = sel.hierarchy().to_string();
            if map.insert(h.clone(), sel).is_some() {
                return Err(ResourceError::ParseFocus {
                    input: h,
                    reason: "duplicate hierarchy in focus",
                });
            }
        }
        Ok(Focus { selections: map })
    }

    /// The whole-program focus over the given hierarchies: every selection
    /// is a hierarchy root.
    pub fn whole_program<'a, I>(hierarchies: I) -> Focus
    where
        I: IntoIterator<Item = &'a str>,
    {
        let selections = hierarchies
            .into_iter()
            .map(|h| ResourceName::root(h).expect("hierarchy names are valid"));
        Focus::new(selections).expect("hierarchy names are unique")
    }

    /// Parses the canonical `</a/b,/c,/d/e>` form. Surrounding whitespace
    /// around the focus and around each name is ignored.
    pub fn parse(text: &str) -> Result<Focus, ResourceError> {
        let t = text.trim();
        let inner = t
            .strip_prefix('<')
            .and_then(|s| s.strip_suffix('>'))
            .ok_or(ResourceError::ParseFocus {
                input: text.to_string(),
                reason: "focus must be wrapped in '<' and '>'",
            })?;
        if inner.trim().is_empty() {
            return Err(ResourceError::ParseFocus {
                input: text.to_string(),
                reason: "focus needs at least one selection",
            });
        }
        let names = inner
            .split(',')
            .map(ResourceName::parse)
            .collect::<Result<Vec<_>, _>>()?;
        Focus::new(names)
    }

    /// The hierarchies this focus spans, in canonical (sorted) order.
    pub fn hierarchies(&self) -> impl Iterator<Item = &str> {
        self.selections.keys().map(String::as_str)
    }

    /// The selection for hierarchy `h`, if the focus spans it.
    pub fn selection(&self, h: &str) -> Option<&ResourceName> {
        self.selections.get(h)
    }

    /// All selections in canonical order.
    pub fn selections(&self) -> impl Iterator<Item = &ResourceName> {
        self.selections.values()
    }

    /// Number of hierarchies spanned.
    pub fn arity(&self) -> usize {
        self.selections.len()
    }

    /// True if every selection is a hierarchy root (the whole program).
    pub fn is_whole_program(&self) -> bool {
        self.selections.values().all(ResourceName::is_root)
    }

    /// Sum of selection depths; 0 for the whole-program focus. Used to
    /// order foci from general to specific.
    pub fn depth(&self) -> usize {
        self.selections.values().map(ResourceName::depth).sum()
    }

    /// Returns a copy with hierarchy `h`'s selection replaced by `sel`.
    pub fn with_selection(&self, sel: ResourceName) -> Focus {
        let mut selections = self.selections.clone();
        selections.insert(sel.hierarchy().to_string(), sel);
        Focus { selections }
    }

    /// True if `self` constrains the program no more than `other` does:
    /// same hierarchies, and each of `self`'s selections is a prefix of
    /// (equal to or an ancestor of) `other`'s.
    pub fn subsumes(&self, other: &Focus) -> bool {
        self.selections.len() == other.selections.len()
            && self
                .selections
                .iter()
                .all(|(h, sel)| other.selections.get(h).is_some_and(|o| sel.is_prefix_of(o)))
    }

    /// True if `self` strictly subsumes `other` (subsumes and differs).
    pub fn strictly_subsumes(&self, other: &Focus) -> bool {
        self != other && self.subsumes(other)
    }

    /// True if any selection of this focus lies at or below `resource`.
    ///
    /// This is the matching rule for pruning directives: pruning
    /// `/SyncObject` removes every focus whose SyncObject selection is the
    /// root or any descendant... more precisely a focus "touches" a pruned
    /// resource when its selection in that hierarchy is equal to or below
    /// the pruned subtree root.
    pub fn touches(&self, resource: &ResourceName) -> bool {
        self.selections
            .get(resource.hierarchy())
            .is_some_and(|sel| resource.is_prefix_of(sel))
    }

    /// Rewrites every selection through a prefix mapping, leaving
    /// selections that do not match `from` unchanged.
    pub fn rewrite_prefix(&self, from: &ResourceName, to: &ResourceName) -> Focus {
        let selections = self
            .selections
            .iter()
            .map(|(h, sel)| {
                let new = sel.rewrite_prefix(from, to).unwrap_or_else(|| sel.clone());
                (h.clone(), new)
            })
            .collect();
        Focus { selections }
    }
}

impl fmt::Display for Focus {
    /// Formats as the canonical `</a/b,/c>` form, hierarchies sorted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, sel) in self.selections.values().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{sel}")?;
        }
        write!(f, ">")
    }
}

impl std::str::FromStr for Focus {
    type Err = ResourceError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Focus::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).unwrap()
    }

    fn focus(s: &str) -> Focus {
        Focus::parse(s).unwrap()
    }

    #[test]
    fn parse_display_roundtrip_canonicalizes_order() {
        let f = focus("</Process/Tester:2,/Code/testutil.C/verifyA,/Machine>");
        // Canonical order is sorted by hierarchy name.
        assert_eq!(
            f.to_string(),
            "</Code/testutil.C/verifyA,/Machine,/Process/Tester:2>"
        );
        assert_eq!(Focus::parse(&f.to_string()).unwrap(), f);
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "</Code",
            "/Code,/Machine",
            "<>",
            "< >",
            "</Code,/Code/a.c>",
        ] {
            assert!(Focus::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn whole_program_is_all_roots() {
        let f = Focus::whole_program(["Code", "Machine", "Process"]);
        assert!(f.is_whole_program());
        assert_eq!(f.depth(), 0);
        assert_eq!(f.to_string(), "</Code,/Machine,/Process>");
    }

    #[test]
    fn with_selection_replaces_one_hierarchy() {
        let f = Focus::whole_program(["Code", "Machine", "Process"]);
        let g = f.with_selection(n("/Code/a.c"));
        assert_eq!(g.selection("Code"), Some(&n("/Code/a.c")));
        assert_eq!(g.selection("Machine"), Some(&n("/Machine")));
        assert_eq!(g.depth(), 1);
        assert!(!g.is_whole_program());
    }

    #[test]
    fn subsumption_partial_order() {
        let whole = Focus::whole_program(["Code", "Process"]);
        let module = whole.with_selection(n("/Code/a.c"));
        let func = whole.with_selection(n("/Code/a.c/f"));
        let proc_ = whole.with_selection(n("/Process/p1"));

        assert!(whole.subsumes(&module));
        assert!(module.subsumes(&func));
        assert!(whole.subsumes(&func)); // transitive
        assert!(!func.subsumes(&module));
        assert!(!module.subsumes(&proc_)); // incomparable
        assert!(!proc_.subsumes(&module));
        assert!(module.subsumes(&module));
        assert!(!module.strictly_subsumes(&module));
        assert!(whole.strictly_subsumes(&module));
    }

    #[test]
    fn touches_matches_subtrees() {
        let f = focus("</Code/a.c/f,/Machine,/SyncObject/Message/3-0>");
        assert!(f.touches(&n("/Code/a.c")));
        assert!(f.touches(&n("/Code/a.c/f")));
        assert!(f.touches(&n("/Code")));
        assert!(!f.touches(&n("/Code/b.c")));
        assert!(f.touches(&n("/SyncObject/Message")));
        // The Machine selection is the root; only the root itself matches.
        assert!(f.touches(&n("/Machine")));
        assert!(!f.touches(&n("/Machine/node7")));
        // Hierarchy not in the focus: no match.
        assert!(!f.touches(&n("/Process/p1")));
    }

    #[test]
    fn rewrite_prefix_rewrites_matching_selection_only() {
        let f = focus("</Code/oned.f/main,/Machine/node1,/Process/p1>");
        let g = f.rewrite_prefix(&n("/Code/oned.f"), &n("/Code/onednb.f"));
        assert_eq!(
            g.to_string(),
            "</Code/onednb.f/main,/Machine/node1,/Process/p1>"
        );
        // Non-matching mapping leaves the focus untouched.
        let h = f.rewrite_prefix(&n("/Code/sweep.f"), &n("/Code/nbsweep.f"));
        assert_eq!(h, f);
    }

    #[test]
    fn arity_and_hierarchies() {
        let f = focus("</Code,/Machine,/Process,/SyncObject>");
        assert_eq!(f.arity(), 4);
        let hs: Vec<&str> = f.hierarchies().collect();
        assert_eq!(hs, vec!["Code", "Machine", "Process", "SyncObject"]);
    }
}
