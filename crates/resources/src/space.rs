//! The resource space: the full set of hierarchies describing one program.

use crate::error::ResourceError;
use crate::focus::Focus;
use crate::hierarchy::ResourceHierarchy;
use crate::name::ResourceName;

/// A collection of resource hierarchies describing one program execution,
/// e.g. `{Code, Machine, Process, SyncObject}`.
///
/// Each group of resources provides a distinct view of the application
/// (paper §2). The space answers refinement queries for the Performance
/// Consultant and supports dynamic resource discovery: new resources (for
/// example, a message tag seen for the first time) can be added while a
/// search is running.
#[derive(Debug, Clone, Default)]
pub struct ResourceSpace {
    hierarchies: Vec<ResourceHierarchy>,
}

impl ResourceSpace {
    /// An empty space with no hierarchies.
    pub fn new() -> ResourceSpace {
        ResourceSpace::default()
    }

    /// The standard Paradyn-style space: Code, Machine, Process, SyncObject.
    pub fn standard() -> ResourceSpace {
        let mut s = ResourceSpace::new();
        for h in [
            crate::CODE,
            crate::MACHINE,
            crate::PROCESS,
            crate::SYNC_OBJECT,
        ] {
            s.add_hierarchy(h).expect("standard names are valid");
        }
        s
    }

    /// Adds an empty hierarchy. Errors if one with the same name exists.
    pub fn add_hierarchy(&mut self, name: &str) -> Result<(), ResourceError> {
        if self.hierarchy(name).is_some() {
            return Err(ResourceError::Incompatible(format!(
                "hierarchy {name} already exists"
            )));
        }
        self.hierarchies.push(ResourceHierarchy::new(name)?);
        Ok(())
    }

    /// The hierarchy named `name`, if present.
    pub fn hierarchy(&self, name: &str) -> Option<&ResourceHierarchy> {
        self.hierarchies.iter().find(|h| h.name() == name)
    }

    /// Mutable access to the hierarchy named `name`.
    pub fn hierarchy_mut(&mut self, name: &str) -> Option<&mut ResourceHierarchy> {
        self.hierarchies.iter_mut().find(|h| h.name() == name)
    }

    /// All hierarchies, in insertion order.
    pub fn hierarchies(&self) -> &[ResourceHierarchy] {
        &self.hierarchies
    }

    /// Names of all hierarchies, in insertion order.
    pub fn hierarchy_names(&self) -> Vec<&str> {
        self.hierarchies.iter().map(|h| h.name()).collect()
    }

    /// Adds a resource by full name, creating its hierarchy if necessary.
    ///
    /// This is the dynamic-discovery entry point: the instrumentation layer
    /// calls it when it observes a resource (such as a message tag) for the
    /// first time.
    pub fn add_resource(&mut self, name: &ResourceName) -> Result<(), ResourceError> {
        if self.hierarchy(name.hierarchy()).is_none() {
            self.add_hierarchy(name.hierarchy())?;
        }
        self.hierarchy_mut(name.hierarchy())
            .expect("just ensured present")
            .add_name(name)?;
        Ok(())
    }

    /// True if the space contains `name` in the appropriate hierarchy.
    pub fn contains(&self, name: &ResourceName) -> bool {
        self.hierarchy(name.hierarchy())
            .is_some_and(|h| h.contains(name))
    }

    /// Total number of resources across all hierarchies (roots included).
    pub fn len(&self) -> usize {
        self.hierarchies.iter().map(ResourceHierarchy::len).sum()
    }

    /// True if the space has no hierarchies.
    pub fn is_empty(&self) -> bool {
        self.hierarchies.is_empty()
    }

    /// The whole-program focus over every hierarchy in the space.
    pub fn whole_program(&self) -> Focus {
        Focus::whole_program(self.hierarchies.iter().map(|h| h.name()))
    }

    /// All child foci of `focus`: for each hierarchy, each way of moving the
    /// selection one edge down (paper §2 "refinement").
    ///
    /// Returned in hierarchy order then child insertion order, which keeps
    /// search expansion deterministic.
    pub fn refine(&self, focus: &Focus) -> Vec<Focus> {
        let mut out = Vec::new();
        for h in &self.hierarchies {
            let Some(sel) = focus.selection(h.name()) else {
                continue;
            };
            for child in h.children_of(sel) {
                out.push(focus.with_selection(child));
            }
        }
        out
    }

    /// True if `focus` is valid in this space: spans exactly the space's
    /// hierarchies and every selection names an existing resource.
    pub fn validates(&self, focus: &Focus) -> bool {
        focus.arity() == self.hierarchies.len() && focus.selections().all(|sel| self.contains(sel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).unwrap()
    }

    fn sample_space() -> ResourceSpace {
        // The "Tester" program of the paper's fig. 1.
        let mut s = ResourceSpace::new();
        s.add_hierarchy("Code").unwrap();
        s.add_hierarchy("Machine").unwrap();
        s.add_hierarchy("Process").unwrap();
        for r in [
            "/Code/testutil.C/printstatus",
            "/Code/testutil.C/verifyA",
            "/Code/testutil.C/verifyB",
            "/Code/main.c/main",
            "/Code/vect.c/vect::addEl",
            "/Code/vect.c/vect::findEl",
            "/Code/vect.c/vect::print",
            "/Machine/CPU_1",
            "/Machine/CPU_2",
            "/Machine/CPU_3",
            "/Machine/CPU_4",
            "/Process/Tester:1",
            "/Process/Tester:2",
            "/Process/Tester:3",
            "/Process/Tester:4",
        ] {
            s.add_resource(&n(r)).unwrap();
        }
        s
    }

    #[test]
    fn standard_space_has_four_hierarchies() {
        let s = ResourceSpace::standard();
        assert_eq!(
            s.hierarchy_names(),
            vec!["Code", "Machine", "Process", "SyncObject"]
        );
        assert_eq!(s.whole_program().arity(), 4);
    }

    #[test]
    fn duplicate_hierarchy_rejected() {
        let mut s = ResourceSpace::new();
        s.add_hierarchy("Code").unwrap();
        assert!(s.add_hierarchy("Code").is_err());
    }

    #[test]
    fn add_resource_creates_hierarchy_on_demand() {
        let mut s = ResourceSpace::new();
        s.add_resource(&n("/SyncObject/Message/3-0")).unwrap();
        assert!(s.contains(&n("/SyncObject/Message/3-0")));
        assert!(s.contains(&n("/SyncObject/Message")));
        assert!(s.contains(&n("/SyncObject")));
    }

    #[test]
    fn refine_whole_program_yields_top_level_resources() {
        let s = sample_space();
        let children = s.refine(&s.whole_program());
        // 3 modules + 4 CPUs + 4 processes = 11 child foci.
        assert_eq!(children.len(), 11);
        assert!(children
            .iter()
            .all(|c| s.whole_program().strictly_subsumes(c)));
        assert!(children.iter().all(|c| c.depth() == 1));
        assert!(children.iter().all(|c| s.validates(c)));
    }

    #[test]
    fn refine_descends_one_edge_per_child() {
        let s = sample_space();
        let f = s
            .whole_program()
            .with_selection(n("/Code/testutil.C"))
            .with_selection(n("/Process/Tester:2"));
        let children = s.refine(&f);
        // testutil.C has 3 functions; Machine root has 4 CPUs; Tester:2 is
        // a leaf. 3 + 4 + 0 = 7.
        assert_eq!(children.len(), 7);
        for c in &children {
            assert_eq!(c.depth(), f.depth() + 1);
        }
    }

    #[test]
    fn refine_leaf_focus_is_empty() {
        let s = sample_space();
        let f = s
            .whole_program()
            .with_selection(n("/Code/main.c/main"))
            .with_selection(n("/Machine/CPU_1"))
            .with_selection(n("/Process/Tester:1"));
        assert!(s.refine(&f).is_empty());
    }

    #[test]
    fn validates_checks_arity_and_existence() {
        let s = sample_space();
        assert!(s.validates(&s.whole_program()));
        let bad_arity = Focus::whole_program(["Code"]);
        assert!(!s.validates(&bad_arity));
        let missing = s.whole_program().with_selection(n("/Code/nope.c"));
        assert!(!s.validates(&missing));
    }

    #[test]
    fn len_counts_all_nodes() {
        let s = sample_space();
        // Code: root + 3 modules + 7 functions = 11; Machine: 5; Process: 5.
        assert_eq!(s.len(), 21);
    }
}
