//! Shared diagnostic primitives for artifact parsers and linters.
//!
//! Directive files, mapping files, and the cross-artifact checks in
//! `histpc-lint` all report problems through one [`Diagnostic`] type: a
//! stable code (`HL001`, `HL002`, ...), a severity, the file and 1-based
//! line/column span the problem was found at, a human-readable message, and
//! an optional fix suggestion. Keeping the type here — in the lowest crate
//! of the workspace — lets every parser return precise spans without
//! depending on the lint crate itself.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The artifact is unusable or will silently misbehave; tools refuse it.
    Error,
    /// The artifact is usable but almost certainly not what the author meant.
    Warning,
    /// Supplementary information attached to another diagnostic.
    Note,
}

impl Severity {
    /// Lower-case label used in rendered output (`error`, `warning`, `note`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A 1-based source location: a line plus a half-open column range on it.
///
/// Columns count characters (not bytes), matching what a caret rendered
/// under the source line should point at. `col_end` is exclusive; a span
/// with `col_end == col_start` marks a position rather than a range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based line number within the file.
    pub line: usize,
    /// 1-based column of the first spanned character.
    pub col_start: usize,
    /// Exclusive end column (1-based).
    pub col_end: usize,
}

impl Span {
    /// Span covering `[col_start, col_end)` on `line` (all 1-based).
    pub fn new(line: usize, col_start: usize, col_end: usize) -> Self {
        Span {
            line,
            col_start,
            col_end,
        }
    }

    /// Span covering a whole line's content (columns `1..=len` in chars).
    pub fn whole_line(line: usize, text: &str) -> Self {
        let len = text.chars().count();
        Span {
            line,
            col_start: 1,
            col_end: len.max(1) + 1,
        }
    }

    /// Number of columns spanned (at least 1 for rendering purposes).
    pub fn width(&self) -> usize {
        self.col_end.saturating_sub(self.col_start).max(1)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col_start)
    }
}

/// File name used when an artifact was parsed from an in-memory string.
pub const MEMORY_FILE: &str = "<memory>";

/// A single problem found in an artifact, with a stable machine-readable
/// code and a precise source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"HL002"`. Codes are never reused or renumbered.
    pub code: &'static str,
    /// How serious the problem is.
    pub severity: Severity,
    /// File the artifact came from; [`MEMORY_FILE`] for in-memory input.
    pub file: String,
    /// Where in the file, when known.
    pub span: Option<Span>,
    /// One-line human-readable description.
    pub message: String,
    /// Optional fix suggestion rendered as a `help:` line.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// New error-severity diagnostic with no location attached yet.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            file: MEMORY_FILE.to_string(),
            span: None,
            message: message.into(),
            suggestion: None,
        }
    }

    /// New warning-severity diagnostic with no location attached yet.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// New note-severity diagnostic with no location attached yet.
    pub fn note(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attach the file the artifact came from.
    pub fn with_file(mut self, file: impl Into<String>) -> Self {
        self.file = file.into();
        self
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach a fix suggestion.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// True if this diagnostic has [`Severity::Error`].
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Sort key: file, then line, then column, then code.
    pub fn sort_key(&self) -> (String, usize, usize, &'static str) {
        let (line, col) = self.span.map_or((0, 0), |s| (s.line, s.col_start));
        (self.file.clone(), line, col, self.code)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        match self.span {
            Some(span) => write!(f, " ({}:{})", self.file, span),
            None => write!(f, " ({})", self.file),
        }
    }
}

impl std::error::Error for Diagnostic {}

/// A whitespace-separated token with its 1-based column span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text.
    pub text: &'a str,
    /// 1-based column of the first character.
    pub col_start: usize,
    /// Exclusive end column.
    pub col_end: usize,
}

impl<'a> Token<'a> {
    /// Span of this token on the given 1-based line.
    pub fn span(&self, line: usize) -> Span {
        Span::new(line, self.col_start, self.col_end)
    }
}

/// Split a line into whitespace-separated tokens, tracking 1-based
/// character columns so parsers can attach caret-accurate spans.
pub fn tokenize(line: &str) -> Vec<Token<'_>> {
    let mut tokens = Vec::new();
    let mut col = 1usize; // 1-based column of the char at byte `start`
    let mut start: Option<(usize, usize)> = None; // (byte offset, start col)
    for (byte, ch) in line.char_indices() {
        if ch.is_whitespace() {
            if let Some((s, sc)) = start.take() {
                tokens.push(Token {
                    text: &line[s..byte],
                    col_start: sc,
                    col_end: col,
                });
            }
        } else if start.is_none() {
            start = Some((byte, col));
        }
        col += 1;
    }
    if let Some((s, sc)) = start {
        tokens.push(Token {
            text: &line[s..],
            col_start: sc,
            col_end: col,
        });
    }
    tokens
}

/// Closest candidate to `input` by edit distance, for "did you mean"
/// suggestions. Only returns a candidate whose distance is small relative
/// to its length (at most half), so wildly different inputs get no
/// suggestion.
pub fn did_you_mean<'a, I>(input: &str, candidates: I) -> Option<&'a str>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        let d = edit_distance(input, cand);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, cand));
        }
    }
    best.and_then(|(d, cand)| {
        let limit = (cand.chars().count().max(input.chars().count())).div_ceil(2);
        (cand != input && d <= limit).then_some(cand)
    })
}

/// Levenshtein distance over characters, case-insensitive.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(|c| c.to_lowercase()).collect();
    let b: Vec<char> = b.chars().flat_map(|c| c.to_lowercase()).collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn did_you_mean_close_and_far() {
        let cands = ["CPUbound", "ExcessiveSyncWaitingTime", "TopLevelHypothesis"];
        assert_eq!(did_you_mean("CPUBound", cands), Some("CPUbound"));
        assert_eq!(did_you_mean("cpubound", cands), Some("CPUbound"));
        assert_eq!(did_you_mean("Zebra", cands), None);
        // An exact match needs no suggestion.
        assert_eq!(did_you_mean("CPUbound", cands), None);
    }

    #[test]
    fn tokenize_tracks_columns() {
        let toks = tokenize("  prune  /SyncObject extra");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].text, "prune");
        assert_eq!((toks[0].col_start, toks[0].col_end), (3, 8));
        assert_eq!(toks[1].text, "/SyncObject");
        assert_eq!((toks[1].col_start, toks[1].col_end), (10, 21));
        assert_eq!(toks[2].text, "extra");
        assert_eq!((toks[2].col_start, toks[2].col_end), (22, 27));
    }

    #[test]
    fn tokenize_empty_and_blank() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t ").is_empty());
    }

    #[test]
    fn diagnostic_display_and_builders() {
        let d = Diagnostic::warning("HL005", "pair prune shadowed")
            .with_file("dirs.txt")
            .with_span(Span::new(4, 7, 12))
            .with_suggestion("remove this directive");
        assert!(!d.is_error());
        assert_eq!(
            d.to_string(),
            "warning[HL005]: pair prune shadowed (dirs.txt:4:7)"
        );
        assert_eq!(d.suggestion.as_deref(), Some("remove this directive"));
    }

    #[test]
    fn span_whole_line_counts_chars() {
        let s = Span::whole_line(2, "abc");
        assert_eq!((s.col_start, s.col_end), (1, 4));
        assert_eq!(Span::whole_line(1, "").width(), 1);
    }
}
