//! Error type shared by the resource-naming layer.

use std::fmt;

/// Errors produced while parsing or manipulating resource names, hierarchies
/// and foci.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// A textual resource name could not be parsed.
    ParseName {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A textual focus could not be parsed.
    ParseFocus {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A resource name referred to a hierarchy that does not exist.
    UnknownHierarchy(String),
    /// A resource name referred to a node that does not exist in its
    /// hierarchy.
    UnknownResource(String),
    /// Two foci or hierarchies that were expected to be compatible are not.
    Incompatible(String),
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::ParseName { input, reason } => {
                write!(f, "cannot parse resource name {input:?}: {reason}")
            }
            ResourceError::ParseFocus { input, reason } => {
                write!(f, "cannot parse focus {input:?}: {reason}")
            }
            ResourceError::UnknownHierarchy(h) => write!(f, "unknown resource hierarchy {h:?}"),
            ResourceError::UnknownResource(r) => write!(f, "unknown resource {r:?}"),
            ResourceError::Incompatible(msg) => write!(f, "incompatible resources: {msg}"),
        }
    }
}

impl std::error::Error for ResourceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ResourceError::ParseName {
            input: "Code/x".to_string(),
            reason: "must start with '/'",
        };
        let msg = e.to_string();
        assert!(msg.contains("Code/x"));
        assert!(msg.contains("must start with '/'"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ResourceError::UnknownHierarchy("X".into()));
        assert!(e.to_string().contains('X'));
    }
}
