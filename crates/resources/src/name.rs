//! Resource names: `/Hierarchy/label/label/...`.
//!
//! A resource name is formed by concatenating the labels along the unique
//! path within a resource hierarchy from the root to the node representing
//! the resource (paper §2). The first segment is the hierarchy name itself
//! (`Code`, `Machine`, `Process`, `SyncObject`, ...). The bare name
//! `/Code` denotes the hierarchy root, i.e. the unconstrained view.

use crate::error::ResourceError;
use std::fmt;

/// A parsed, canonical resource name.
///
/// Internally a non-empty list of path segments; `segments[0]` is the
/// hierarchy name. Names are ordered lexicographically by segment, which
/// gives a stable, human-friendly order for reports and directive files.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceName {
    segments: Vec<String>,
}

impl ResourceName {
    /// Builds a name from path segments. The first segment is the hierarchy
    /// name. Returns an error if `segments` is empty or any segment is empty
    /// or contains `/`, `,`, `<`, `>`, or whitespace.
    pub fn new<I, S>(segments: I) -> Result<Self, ResourceError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let segments: Vec<String> = segments.into_iter().map(Into::into).collect();
        if segments.is_empty() {
            return Err(ResourceError::ParseName {
                input: String::new(),
                reason: "a resource name needs at least a hierarchy segment",
            });
        }
        for s in &segments {
            if s.is_empty() {
                return Err(ResourceError::ParseName {
                    input: segments.join("/"),
                    reason: "empty path segment",
                });
            }
            if s.chars().any(|c| "/,<>".contains(c) || c.is_whitespace()) {
                return Err(ResourceError::ParseName {
                    input: segments.join("/"),
                    reason: "segment contains a reserved character",
                });
            }
        }
        Ok(ResourceName { segments })
    }

    /// Builds the root name of a hierarchy, e.g. `/Code`.
    pub fn root(hierarchy: &str) -> Result<Self, ResourceError> {
        ResourceName::new([hierarchy])
    }

    /// Parses the canonical textual form `/Code/testutil.C/verifyA`.
    pub fn parse(text: &str) -> Result<Self, ResourceError> {
        let text = text.trim();
        let Some(rest) = text.strip_prefix('/') else {
            return Err(ResourceError::ParseName {
                input: text.to_string(),
                reason: "must start with '/'",
            });
        };
        if rest.is_empty() {
            return Err(ResourceError::ParseName {
                input: text.to_string(),
                reason: "missing hierarchy name",
            });
        }
        ResourceName::new(rest.split('/'))
    }

    /// The hierarchy this resource belongs to (first path segment).
    pub fn hierarchy(&self) -> &str {
        &self.segments[0]
    }

    /// All path segments, starting with the hierarchy name.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// The final path segment (the resource's own label).
    pub fn label(&self) -> &str {
        self.segments.last().expect("names are non-empty")
    }

    /// Depth below the hierarchy root: `/Code` has depth 0, `/Code/a.c` 1.
    pub fn depth(&self) -> usize {
        self.segments.len() - 1
    }

    /// True if this is a hierarchy root (`/Code`), i.e. the unconstrained
    /// whole-program view of that hierarchy.
    pub fn is_root(&self) -> bool {
        self.segments.len() == 1
    }

    /// The parent resource, or `None` for a hierarchy root.
    pub fn parent(&self) -> Option<ResourceName> {
        if self.is_root() {
            None
        } else {
            Some(ResourceName {
                segments: self.segments[..self.segments.len() - 1].to_vec(),
            })
        }
    }

    /// Appends one label, producing a child name.
    pub fn child(&self, label: &str) -> Result<ResourceName, ResourceError> {
        let mut segments = self.segments.clone();
        segments.push(label.to_string());
        ResourceName::new(segments)
    }

    /// True if `self` is `other` or an ancestor of `other`
    /// (same hierarchy, and `self`'s path is a prefix of `other`'s).
    pub fn is_prefix_of(&self, other: &ResourceName) -> bool {
        other.segments.len() >= self.segments.len()
            && other.segments[..self.segments.len()] == self.segments[..]
    }

    /// True if `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &ResourceName) -> bool {
        self.is_prefix_of(other) && self.segments.len() < other.segments.len()
    }

    /// Rewrites this name by replacing prefix `from` with `to`, if `from`
    /// is a prefix of `self`. Returns `None` when the prefix does not apply.
    ///
    /// This is the primitive behind the paper's §3.2 mapping directives
    /// (`map resourceName1 resourceName2`): mapping `/Code/oned.f` to
    /// `/Code/onednb.f` rewrites `/Code/oned.f/main` to `/Code/onednb.f/main`.
    pub fn rewrite_prefix(&self, from: &ResourceName, to: &ResourceName) -> Option<ResourceName> {
        if !from.is_prefix_of(self) {
            return None;
        }
        let mut segments = to.segments.clone();
        segments.extend_from_slice(&self.segments[from.segments.len()..]);
        Some(ResourceName { segments })
    }
}

impl fmt::Display for ResourceName {
    /// Formats as the canonical `/seg/seg/...` form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.segments {
            write!(f, "/{s}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for ResourceName {
    type Err = ResourceError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ResourceName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["/Code", "/Code/testutil.C/verifyA", "/Process/Tester:2"] {
            assert_eq!(n(s).to_string(), s);
        }
    }

    #[test]
    fn parse_trims_whitespace() {
        assert_eq!(n("  /Code/a.c \n").to_string(), "/Code/a.c");
    }

    #[test]
    fn parse_rejects_bad_input() {
        for s in ["", "Code/x", "/", "/Code//x", "/Code/a b"] {
            assert!(ResourceName::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn hierarchy_and_label() {
        let r = n("/Code/testutil.C/verifyA");
        assert_eq!(r.hierarchy(), "Code");
        assert_eq!(r.label(), "verifyA");
        assert_eq!(r.depth(), 2);
        assert!(!r.is_root());
        assert!(n("/Code").is_root());
    }

    #[test]
    fn parent_chain_terminates_at_root() {
        let mut cur = Some(n("/Code/a.c/f"));
        let mut seen = vec![];
        while let Some(r) = cur {
            seen.push(r.to_string());
            cur = r.parent();
        }
        assert_eq!(seen, vec!["/Code/a.c/f", "/Code/a.c", "/Code"]);
    }

    #[test]
    fn prefix_and_ancestor() {
        let root = n("/Code");
        let module = n("/Code/a.c");
        let func = n("/Code/a.c/f");
        assert!(root.is_prefix_of(&func));
        assert!(root.is_ancestor_of(&func));
        assert!(module.is_prefix_of(&module));
        assert!(!module.is_ancestor_of(&module));
        assert!(!func.is_prefix_of(&module));
        // Different hierarchy never matches.
        assert!(!n("/Process").is_prefix_of(&func));
        // Sibling labels that share a string prefix are not path prefixes.
        assert!(!n("/Code/a").is_prefix_of(&n("/Code/a.c")));
    }

    #[test]
    fn child_extends_path() {
        assert_eq!(n("/Code/a.c").child("f").unwrap(), n("/Code/a.c/f"));
        assert!(n("/Code").child("has space").is_err());
    }

    #[test]
    fn rewrite_prefix_maps_names() {
        // The paper's fig. 3 mapping: /Code/oned.f -> /Code/onednb.f.
        let from = n("/Code/oned.f");
        let to = n("/Code/onednb.f");
        assert_eq!(
            n("/Code/oned.f/main").rewrite_prefix(&from, &to).unwrap(),
            n("/Code/onednb.f/main")
        );
        // Exact match rewrites to the target itself.
        assert_eq!(n("/Code/oned.f").rewrite_prefix(&from, &to).unwrap(), to);
        // Non-matching prefix leaves the name alone.
        assert!(n("/Code/sweep.f/sweep1d")
            .rewrite_prefix(&from, &to)
            .is_none());
    }

    #[test]
    fn ordering_is_stable_by_segments() {
        let mut v = [n("/Process/p2"), n("/Code/b.c"), n("/Code/a.c/f")];
        v.sort();
        assert_eq!(
            v.iter().map(|r| r.to_string()).collect::<Vec<_>>(),
            vec!["/Code/a.c/f", "/Code/b.c", "/Process/p2"]
        );
    }
}
