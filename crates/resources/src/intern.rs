//! Interned resource names and foci.
//!
//! Resource names are short segment lists and foci are small maps of
//! them — cheap to build, but expensive to hash, compare and clone on
//! every Search History Graph lookup or sample-routing decision. The
//! [`Interner`] assigns each distinct [`ResourceName`] / [`Focus`] a
//! dense, copyable id ([`NameId`] / [`FocusId`]) so hot structures can
//! key on a `u32` and keep the string form only for report and record
//! boundaries.
//!
//! Ids are only meaningful relative to the interner that produced them;
//! an id is never invalidated (the interner grows monotonically). For
//! cross-interner (and cross-process) identity — e.g. the corpus fact
//! tables built by `histpc-lint` — the interner also exposes
//! *content-based* hashes: [`Interner::name_hash`] is the FNV-1a 64 of
//! a name's display form (cached per id so a corpus hashes each
//! distinct name once), and [`Interner::set_signature`] combines member
//! hashes order-independently into a signature of a resource-name set.

use crate::focus::Focus;
use crate::name::ResourceName;
use std::collections::HashMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 of a byte string. Matches the framing checksum used by
/// `histpc-history` so signatures stay stable across crates.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Dense, copyable id of an interned [`ResourceName`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub u32);

/// Dense, copyable id of an interned [`Focus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FocusId(pub u32);

/// A monotonically growing two-way table of resource names and foci.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<ResourceName>,
    name_ids: HashMap<ResourceName, NameId>,
    foci: Vec<Focus>,
    focus_ids: HashMap<Focus, FocusId>,
    /// Content hash per interned name, filled lazily (0 = not yet
    /// computed; FNV-1a of a non-empty display form is never 0 in
    /// practice, and a collision with 0 only costs a re-hash).
    name_hashes: Vec<u64>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns a resource name, returning its id (inserting on first
    /// sight).
    pub fn intern_name(&mut self, name: &ResourceName) -> NameId {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.clone());
        self.name_ids.insert(name.clone(), id);
        id
    }

    /// The id of an already-interned name, without inserting.
    pub fn lookup_name(&self, name: &ResourceName) -> Option<NameId> {
        self.name_ids.get(name).copied()
    }

    /// The name behind an id. Panics on an id from another interner.
    pub fn resolve_name(&self, id: NameId) -> &ResourceName {
        &self.names[id.0 as usize]
    }

    /// Interns a focus, returning its id (inserting on first sight).
    pub fn intern_focus(&mut self, focus: &Focus) -> FocusId {
        if let Some(&id) = self.focus_ids.get(focus) {
            return id;
        }
        let id = FocusId(self.foci.len() as u32);
        self.foci.push(focus.clone());
        self.focus_ids.insert(focus.clone(), id);
        id
    }

    /// The id of an already-interned focus, without inserting or
    /// cloning the key.
    pub fn lookup_focus(&self, focus: &Focus) -> Option<FocusId> {
        self.focus_ids.get(focus).copied()
    }

    /// The focus behind an id. Panics on an id from another interner.
    pub fn resolve_focus(&self, id: FocusId) -> &Focus {
        &self.foci[id.0 as usize]
    }

    /// Content-based hash of a resource name: the FNV-1a 64 of its
    /// display form, cached per interned id. Unlike [`NameId`] (dense,
    /// first-sight-ordered, interner-local) this hash is stable across
    /// interners, processes, and runs — it depends only on the name's
    /// text.
    pub fn name_hash(&mut self, name: &ResourceName) -> u64 {
        let id = self.intern_name(name);
        let idx = id.0 as usize;
        if self.name_hashes.len() <= idx {
            self.name_hashes.resize(idx + 1, 0);
        }
        if self.name_hashes[idx] == 0 {
            self.name_hashes[idx] = fnv64(name.to_string().as_bytes());
        }
        self.name_hashes[idx]
    }

    /// Order-independent content signature of a set of resource names:
    /// each member's [`name_hash`](Interner::name_hash) folded in with
    /// a symmetric combiner (XOR plus a multiplied sum, so both member
    /// identity and multiset size contribute). Two records with the
    /// same resource set produce the same signature regardless of
    /// listing order or which interner computed it.
    pub fn set_signature(&mut self, names: &[ResourceName]) -> u64 {
        let mut xor = 0u64;
        let mut sum = 0u64;
        for name in names {
            let h = self.name_hash(name);
            xor ^= h;
            sum = sum.wrapping_add(h.wrapping_mul(FNV_PRIME));
        }
        xor ^ sum.rotate_left(32)
    }

    /// Number of distinct names interned.
    pub fn name_count(&self) -> usize {
        self.names.len()
    }

    /// Number of distinct foci interned.
    pub fn focus_count(&self) -> usize {
        self.foci.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).unwrap()
    }

    #[test]
    fn names_intern_to_stable_ids() {
        let mut i = Interner::new();
        let a = i.intern_name(&n("/Code/a.c"));
        let b = i.intern_name(&n("/Code/b.c"));
        assert_ne!(a, b);
        assert_eq!(i.intern_name(&n("/Code/a.c")), a);
        assert_eq!(i.resolve_name(a), &n("/Code/a.c"));
        assert_eq!(i.lookup_name(&n("/Code/b.c")), Some(b));
        assert_eq!(i.lookup_name(&n("/Code/c.c")), None);
        assert_eq!(i.name_count(), 2);
    }

    #[test]
    fn foci_intern_to_stable_ids() {
        let mut i = Interner::new();
        let wp = Focus::whole_program(["Code", "Process"]);
        let narrowed = wp.with_selection(n("/Code/a.c"));
        let a = i.intern_focus(&wp);
        let b = i.intern_focus(&narrowed);
        assert_ne!(a, b);
        assert_eq!(i.intern_focus(&wp), a);
        assert_eq!(i.resolve_focus(b), &narrowed);
        assert_eq!(i.lookup_focus(&wp), Some(a));
        assert_eq!(i.lookup_focus(&wp.with_selection(n("/Code/b.c"))), None);
        assert_eq!(i.focus_count(), 2);
    }

    #[test]
    fn name_hashes_are_content_based_and_interner_independent() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        // Different first-sight order => different ids, same hashes.
        a.intern_name(&n("/Code/a.c"));
        let ha = a.name_hash(&n("/Code/b.c"));
        let hb = b.name_hash(&n("/Code/b.c"));
        assert_eq!(ha, hb);
        assert_ne!(a.name_hash(&n("/Code/a.c")), ha);
        // Cached path returns the same value.
        assert_eq!(a.name_hash(&n("/Code/b.c")), ha);
    }

    #[test]
    fn set_signature_is_order_independent() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        let fwd = [n("/Code"), n("/Machine"), n("/Code/a.c")];
        let rev = [n("/Code/a.c"), n("/Machine"), n("/Code")];
        assert_eq!(a.set_signature(&fwd), b.set_signature(&rev));
        assert_ne!(a.set_signature(&fwd), a.set_signature(&fwd[..2]));
        assert_eq!(a.set_signature(&[]), 0);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_sight() {
        let mut i = Interner::new();
        let ids: Vec<NameId> = ["/Code", "/Machine", "/Process"]
            .iter()
            .map(|s| i.intern_name(&n(s)))
            .collect();
        assert_eq!(ids, vec![NameId(0), NameId(1), NameId(2)]);
    }
}
