//! Interned resource names and foci.
//!
//! Resource names are short segment lists and foci are small maps of
//! them — cheap to build, but expensive to hash, compare and clone on
//! every Search History Graph lookup or sample-routing decision. The
//! [`Interner`] assigns each distinct [`ResourceName`] / [`Focus`] a
//! dense, copyable id ([`NameId`] / [`FocusId`]) so hot structures can
//! key on a `u32` and keep the string form only for report and record
//! boundaries.
//!
//! Ids are only meaningful relative to the interner that produced them;
//! an id is never invalidated (the interner grows monotonically).

use crate::focus::Focus;
use crate::name::ResourceName;
use std::collections::HashMap;

/// Dense, copyable id of an interned [`ResourceName`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub u32);

/// Dense, copyable id of an interned [`Focus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FocusId(pub u32);

/// A monotonically growing two-way table of resource names and foci.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<ResourceName>,
    name_ids: HashMap<ResourceName, NameId>,
    foci: Vec<Focus>,
    focus_ids: HashMap<Focus, FocusId>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns a resource name, returning its id (inserting on first
    /// sight).
    pub fn intern_name(&mut self, name: &ResourceName) -> NameId {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.clone());
        self.name_ids.insert(name.clone(), id);
        id
    }

    /// The id of an already-interned name, without inserting.
    pub fn lookup_name(&self, name: &ResourceName) -> Option<NameId> {
        self.name_ids.get(name).copied()
    }

    /// The name behind an id. Panics on an id from another interner.
    pub fn resolve_name(&self, id: NameId) -> &ResourceName {
        &self.names[id.0 as usize]
    }

    /// Interns a focus, returning its id (inserting on first sight).
    pub fn intern_focus(&mut self, focus: &Focus) -> FocusId {
        if let Some(&id) = self.focus_ids.get(focus) {
            return id;
        }
        let id = FocusId(self.foci.len() as u32);
        self.foci.push(focus.clone());
        self.focus_ids.insert(focus.clone(), id);
        id
    }

    /// The id of an already-interned focus, without inserting or
    /// cloning the key.
    pub fn lookup_focus(&self, focus: &Focus) -> Option<FocusId> {
        self.focus_ids.get(focus).copied()
    }

    /// The focus behind an id. Panics on an id from another interner.
    pub fn resolve_focus(&self, id: FocusId) -> &Focus {
        &self.foci[id.0 as usize]
    }

    /// Number of distinct names interned.
    pub fn name_count(&self) -> usize {
        self.names.len()
    }

    /// Number of distinct foci interned.
    pub fn focus_count(&self) -> usize {
        self.foci.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).unwrap()
    }

    #[test]
    fn names_intern_to_stable_ids() {
        let mut i = Interner::new();
        let a = i.intern_name(&n("/Code/a.c"));
        let b = i.intern_name(&n("/Code/b.c"));
        assert_ne!(a, b);
        assert_eq!(i.intern_name(&n("/Code/a.c")), a);
        assert_eq!(i.resolve_name(a), &n("/Code/a.c"));
        assert_eq!(i.lookup_name(&n("/Code/b.c")), Some(b));
        assert_eq!(i.lookup_name(&n("/Code/c.c")), None);
        assert_eq!(i.name_count(), 2);
    }

    #[test]
    fn foci_intern_to_stable_ids() {
        let mut i = Interner::new();
        let wp = Focus::whole_program(["Code", "Process"]);
        let narrowed = wp.with_selection(n("/Code/a.c"));
        let a = i.intern_focus(&wp);
        let b = i.intern_focus(&narrowed);
        assert_ne!(a, b);
        assert_eq!(i.intern_focus(&wp), a);
        assert_eq!(i.resolve_focus(b), &narrowed);
        assert_eq!(i.lookup_focus(&wp), Some(a));
        assert_eq!(i.lookup_focus(&wp.with_selection(n("/Code/b.c"))), None);
        assert_eq!(i.focus_count(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_sight() {
        let mut i = Interner::new();
        let ids: Vec<NameId> = ["/Code", "/Machine", "/Process"]
            .iter()
            .map(|s| i.intern_name(&n(s)))
            .collect();
        assert_eq!(ids, vec![NameId(0), NameId(1), NameId(2)]);
    }
}
