//! Resource hierarchies: trees of program resources.
//!
//! Each hierarchy (Code, Machine, Process, SyncObject, ...) is a tree whose
//! root node is labelled with the hierarchy's name. Levels further from the
//! root give a finer-grained description of the program (paper §2, fig. 1).
//!
//! Hierarchies also support the **execution tagging** shown in the paper's
//! fig. 3: when structural data from several executions is merged, each node
//! carries the set of executions it appeared in, so resources unique to one
//! execution (mapping candidates) can be identified.

use crate::error::ResourceError;
use crate::name::ResourceName;
use std::collections::HashMap;
use std::fmt;

/// Index of a node within one `ResourceHierarchy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node of every hierarchy.
    pub const ROOT: NodeId = NodeId(0);

    /// The raw index (stable for the lifetime of the hierarchy).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A compact set of execution identifiers (0..64) used to tag merged
/// hierarchies, as in the paper's fig. 3 where resources are labelled
/// 1 (only version A), 2 (only version B) or 3 (both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ExecTagSet(u64);

impl ExecTagSet {
    /// The empty tag set.
    pub const EMPTY: ExecTagSet = ExecTagSet(0);

    /// A set containing the single execution `id` (must be < 64).
    pub fn single(id: u8) -> ExecTagSet {
        assert!(id < 64, "execution tags are limited to 64 executions");
        ExecTagSet(1 << id)
    }

    /// Inserts execution `id` into the set.
    pub fn insert(&mut self, id: u8) {
        *self = self.union(ExecTagSet::single(id));
    }

    /// Set union.
    pub fn union(self, other: ExecTagSet) -> ExecTagSet {
        ExecTagSet(self.0 | other.0)
    }

    /// True if execution `id` is in the set.
    pub fn contains(self, id: u8) -> bool {
        id < 64 && self.0 & (1 << id) != 0
    }

    /// True if no executions are tagged.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of executions in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the execution ids in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0u8..64).filter(move |&i| self.contains(i))
    }
}

impl fmt::Display for ExecTagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<String> = self.iter().map(|i| i.to_string()).collect();
        write!(f, "{{{}}}", ids.join(","))
    }
}

#[derive(Debug, Clone)]
struct Node {
    label: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    tags: ExecTagSet,
}

/// A single resource hierarchy: a labelled tree rooted at the hierarchy
/// name, with O(1) lookup from resource name to node.
#[derive(Debug, Clone)]
pub struct ResourceHierarchy {
    nodes: Vec<Node>,
    /// Maps the path segments *below* the root (possibly empty) to a node.
    index: HashMap<Vec<String>, NodeId>,
}

impl ResourceHierarchy {
    /// Creates a hierarchy containing only its root node.
    pub fn new(name: &str) -> Result<ResourceHierarchy, ResourceError> {
        // Validate the name through ResourceName's segment rules.
        ResourceName::root(name)?;
        let root = Node {
            label: name.to_string(),
            parent: None,
            children: Vec::new(),
            tags: ExecTagSet::EMPTY,
        };
        let mut index = HashMap::new();
        index.insert(Vec::new(), NodeId::ROOT);
        Ok(ResourceHierarchy {
            nodes: vec![root],
            index,
        })
    }

    /// The hierarchy's name (the root node's label).
    pub fn name(&self) -> &str {
        &self.nodes[0].label
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the hierarchy holds only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The root resource name, e.g. `/Code`.
    pub fn root_name(&self) -> ResourceName {
        ResourceName::root(self.name()).expect("hierarchy names are valid")
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Inserts a resource by its path below the root (`["a.c", "f"]` for
    /// `/Code/a.c/f`), creating intermediate nodes as needed. Returns the
    /// node id; inserting an existing path is a no-op returning its id.
    pub fn add_path<S: AsRef<str>>(&mut self, path: &[S]) -> Result<NodeId, ResourceError> {
        let mut cur = NodeId::ROOT;
        let mut key: Vec<String> = Vec::with_capacity(path.len());
        for seg in path {
            let seg = seg.as_ref();
            key.push(seg.to_string());
            if let Some(&id) = self.index.get(&key) {
                cur = id;
                continue;
            }
            // Validate the segment via the name rules before inserting.
            ResourceName::new([seg])?;
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node {
                label: seg.to_string(),
                parent: Some(cur),
                children: Vec::new(),
                tags: ExecTagSet::EMPTY,
            });
            self.nodes[cur.index()].children.push(id);
            self.index.insert(key.clone(), id);
            cur = id;
        }
        Ok(cur)
    }

    /// Inserts a resource by full name; the name's hierarchy segment must
    /// match this hierarchy.
    pub fn add_name(&mut self, name: &ResourceName) -> Result<NodeId, ResourceError> {
        if name.hierarchy() != self.name() {
            return Err(ResourceError::Incompatible(format!(
                "cannot add {name} to hierarchy {}",
                self.name()
            )));
        }
        self.add_path(&name.segments()[1..])
    }

    /// Looks up a resource by full name.
    pub fn lookup(&self, name: &ResourceName) -> Option<NodeId> {
        if name.hierarchy() != self.name() {
            return None;
        }
        self.index.get(&name.segments()[1..]).copied()
    }

    /// True if the hierarchy contains `name`.
    pub fn contains(&self, name: &ResourceName) -> bool {
        self.lookup(name).is_some()
    }

    /// The full resource name of a node.
    pub fn name_of(&self, id: NodeId) -> ResourceName {
        let mut labels = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let node = self.node(c);
            labels.push(node.label.clone());
            cur = node.parent;
        }
        labels.reverse();
        ResourceName::new(labels).expect("stored labels are valid")
    }

    /// Child resource names of `name`, in insertion order.
    ///
    /// This implements focus refinement along one hierarchy (paper §2):
    /// a child focus is obtained by moving down a single edge.
    pub fn children_of(&self, name: &ResourceName) -> Vec<ResourceName> {
        match self.lookup(name) {
            None => Vec::new(),
            Some(id) => self
                .node(id)
                .children
                .iter()
                .map(|&c| self.name_of(c))
                .collect(),
        }
    }

    /// All resource names in the hierarchy, preorder, including the root.
    pub fn all_names(&self) -> Vec<ResourceName> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.walk(NodeId::ROOT, &mut out);
        out
    }

    fn walk(&self, id: NodeId, out: &mut Vec<ResourceName>) {
        out.push(self.name_of(id));
        for &c in &self.node(id).children {
            self.walk(c, out);
        }
    }

    /// Leaf resource names (nodes without children). For a fresh hierarchy
    /// this is just the root.
    pub fn leaves(&self) -> Vec<ResourceName> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.children.is_empty())
            .map(|(i, _)| self.name_of(NodeId(i as u32)))
            .collect()
    }

    /// Tags `name` (and, transitively, nothing else) with execution `exec`.
    pub fn tag(&mut self, name: &ResourceName, exec: u8) -> Result<(), ResourceError> {
        match self.lookup(name) {
            Some(id) => {
                self.nodes[id.index()].tags.insert(exec);
                Ok(())
            }
            None => Err(ResourceError::UnknownResource(name.to_string())),
        }
    }

    /// The execution-tag set of `name`.
    pub fn tags_of(&self, name: &ResourceName) -> Option<ExecTagSet> {
        self.lookup(name).map(|id| self.node(id).tags)
    }

    /// Merges `other` into `self`, tagging every resource of `self` with
    /// `self_exec` and every resource of `other` with `other_exec`.
    ///
    /// This produces the paper's fig. 3 "execution map": resources present
    /// in both executions end up with both tags; resources unique to one
    /// execution (mapping candidates) carry a single tag.
    pub fn merge_tagged(
        &mut self,
        other: &ResourceHierarchy,
        self_exec: u8,
        other_exec: u8,
    ) -> Result<(), ResourceError> {
        if self.name() != other.name() {
            return Err(ResourceError::Incompatible(format!(
                "cannot merge hierarchy {} into {}",
                other.name(),
                self.name()
            )));
        }
        for i in 0..self.nodes.len() {
            self.nodes[i].tags.insert(self_exec);
        }
        for name in other.all_names() {
            let id = if name.is_root() {
                NodeId::ROOT
            } else {
                self.add_name(&name)?
            };
            self.nodes[id.index()].tags.insert(other_exec);
        }
        Ok(())
    }

    /// Renders the hierarchy as an indented tree, optionally with execution
    /// tags, as in the paper's figures 1 and 3.
    pub fn render(&self, with_tags: bool) -> String {
        let mut out = String::new();
        self.render_node(NodeId::ROOT, 0, with_tags, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, depth: usize, with_tags: bool, out: &mut String) {
        let node = self.node(id);
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&node.label);
        if with_tags && !node.tags.is_empty() {
            out.push_str(&format!("  [{}]", node.tags));
        }
        out.push('\n');
        for &c in &node.children {
            self.render_node(c, depth + 1, with_tags, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).unwrap()
    }

    fn sample_code() -> ResourceHierarchy {
        let mut h = ResourceHierarchy::new("Code").unwrap();
        h.add_path(&["testutil.C", "printstatus"]).unwrap();
        h.add_path(&["testutil.C", "verifyA"]).unwrap();
        h.add_path(&["testutil.C", "verifyB"]).unwrap();
        h.add_path(&["main.c", "main"]).unwrap();
        h
    }

    #[test]
    fn new_hierarchy_has_only_root() {
        let h = ResourceHierarchy::new("Code").unwrap();
        assert_eq!(h.len(), 1);
        assert!(h.is_empty());
        assert_eq!(h.root_name(), n("/Code"));
        assert_eq!(h.leaves(), vec![n("/Code")]);
    }

    #[test]
    fn add_and_lookup() {
        let h = sample_code();
        assert!(h.contains(&n("/Code/testutil.C/verifyA")));
        assert!(h.contains(&n("/Code/testutil.C")));
        assert!(!h.contains(&n("/Code/missing.c")));
        assert!(!h.contains(&n("/Process/testutil.C")));
        assert_eq!(h.len(), 7); // root + 2 modules + 4 functions
    }

    #[test]
    fn add_is_idempotent() {
        let mut h = sample_code();
        let before = h.len();
        let id1 = h.add_path(&["testutil.C", "verifyA"]).unwrap();
        let id2 = h.add_path(&["testutil.C", "verifyA"]).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(h.len(), before);
    }

    #[test]
    fn children_follow_insertion_order() {
        let h = sample_code();
        let kids = h.children_of(&n("/Code/testutil.C"));
        assert_eq!(
            kids,
            vec![
                n("/Code/testutil.C/printstatus"),
                n("/Code/testutil.C/verifyA"),
                n("/Code/testutil.C/verifyB"),
            ]
        );
        assert!(h.children_of(&n("/Code/main.c/main")).is_empty());
    }

    #[test]
    fn name_of_inverts_lookup() {
        let h = sample_code();
        for name in h.all_names() {
            let id = h.lookup(&name).unwrap();
            assert_eq!(h.name_of(id), name);
        }
    }

    #[test]
    fn leaves_are_functions() {
        let h = sample_code();
        let mut leaves = h.leaves();
        leaves.sort();
        assert_eq!(
            leaves,
            vec![
                n("/Code/main.c/main"),
                n("/Code/testutil.C/printstatus"),
                n("/Code/testutil.C/verifyA"),
                n("/Code/testutil.C/verifyB"),
            ]
        );
    }

    #[test]
    fn exec_tags() {
        let mut s = ExecTagSet::EMPTY;
        assert!(s.is_empty());
        s.insert(1);
        s.insert(3);
        assert!(s.contains(1) && s.contains(3) && !s.contains(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "{1,3}");
        assert_eq!(s.union(ExecTagSet::single(2)).len(), 3);
    }

    #[test]
    fn merge_tagged_builds_execution_map() {
        // Model fig. 3: version A has oned.f, version B has onednb.f,
        // both share cg.c.
        let mut a = ResourceHierarchy::new("Code").unwrap();
        a.add_path(&["oned.f", "main"]).unwrap();
        a.add_path(&["cg.c", "solve"]).unwrap();
        let mut b = ResourceHierarchy::new("Code").unwrap();
        b.add_path(&["onednb.f", "main"]).unwrap();
        b.add_path(&["cg.c", "solve"]).unwrap();

        a.merge_tagged(&b, 0, 1).unwrap();
        assert_eq!(
            a.tags_of(&n("/Code/oned.f")).unwrap(),
            ExecTagSet::single(0)
        );
        assert_eq!(
            a.tags_of(&n("/Code/onednb.f")).unwrap(),
            ExecTagSet::single(1)
        );
        let both = ExecTagSet::single(0).union(ExecTagSet::single(1));
        assert_eq!(a.tags_of(&n("/Code/cg.c")).unwrap(), both);
        assert_eq!(a.tags_of(&n("/Code/cg.c/solve")).unwrap(), both);
        assert_eq!(a.tags_of(&n("/Code")).unwrap(), both);
    }

    #[test]
    fn merge_rejects_different_hierarchies() {
        let mut a = ResourceHierarchy::new("Code").unwrap();
        let b = ResourceHierarchy::new("Process").unwrap();
        assert!(a.merge_tagged(&b, 0, 1).is_err());
    }

    #[test]
    fn render_contains_labels_and_indentation() {
        let h = sample_code();
        let text = h.render(false);
        assert!(text.contains("Code\n"));
        assert!(text.contains("  testutil.C\n"));
        assert!(text.contains("    verifyA\n"));
    }
}
