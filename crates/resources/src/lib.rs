//! Resource hierarchies, resource names, and foci.
//!
//! This crate implements the program-representation layer of the Paradyn
//! Performance Consultant as described in Karavanic & Miller (SC'99), §2:
//!
//! * A program is represented as a collection of discrete **program
//!   resources** (code modules and functions, processes, machine nodes,
//!   synchronization objects, ...).
//! * Resources are organized into trees called **resource hierarchies**
//!   (`Code`, `Machine`, `Process`, `SyncObject`). Moving down from the root
//!   of a hierarchy yields a finer-grained description of the program.
//! * A **resource name** is the concatenation of labels along the unique
//!   path from the hierarchy root to the resource, e.g.
//!   `/Code/testutil.C/verifyA`.
//! * A **focus** selects one resource from every hierarchy and constrains a
//!   performance measurement to the program parts below those selections,
//!   e.g. `</Code/testutil.C/verifyA,/Machine,/Process/Tester:2>`.
//! * **Refinement** moves a focus one edge down a single hierarchy; it is
//!   the "where" axis of the Performance Consultant's bottleneck search.
//!
//! The same types also support the paper's §3.2 resource-name **mapping**
//! between executions (see the `histpc-history` crate) and the execution
//! tagging used in the paper's Figure 3, where resources are labelled with
//! the set of executions they appear in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod error;
pub mod focus;
pub mod hierarchy;
pub mod intern;
pub mod name;
pub mod space;

pub use diag::{Diagnostic, Severity, Span};
pub use error::ResourceError;
pub use focus::Focus;
pub use hierarchy::{ExecTagSet, NodeId, ResourceHierarchy};
pub use intern::{FocusId, Interner, NameId};
pub use name::ResourceName;
pub use space::ResourceSpace;

/// Conventional name of the code (modules/functions) hierarchy.
pub const CODE: &str = "Code";
/// Conventional name of the machine (nodes/CPUs) hierarchy.
pub const MACHINE: &str = "Machine";
/// Conventional name of the process hierarchy.
pub const PROCESS: &str = "Process";
/// Conventional name of the synchronization-object hierarchy.
pub const SYNC_OBJECT: &str = "SyncObject";
