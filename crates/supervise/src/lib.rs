//! `histpc-supervise`: session supervision for long-running diagnosis.
//!
//! A diagnosis session is a long-lived tool run against a live
//! application; in the field it hangs, crashes, and contends with its
//! siblings for the shared execution store. This crate wraps any number
//! of sessions in a [`Supervisor`] that keeps each one moving to a
//! *classified* end:
//!
//! * **Watchdog** — every drive-loop tick reports a heartbeat; a
//!   monitor thread watches all heartbeats and, when one goes quiet for
//!   the stall deadline, raises that session's cancel flag so the drive
//!   loop stops at a clean checkpoint instead of spinning forever.
//! * **Auto-resume** — a session that halts (injected tool crash, stall
//!   cancellation, or a real panic) is retried from its persisted
//!   checkpoint under a bounded retry budget with capped exponential
//!   backoff; the deterministic replay machinery makes the resumed
//!   search provably continue where the crashed one stopped.
//! * **Degradation ladder** — when the retry budget exhausts, the
//!   session is re-attempted fresh down an escalating ladder of cheaper
//!   configurations: admission control tightened
//!   ([`Rung::TightenAdmission`]), then instrumentation restricted to
//!   top-level hypotheses ([`Rung::TopLevelOnly`]), and finally a
//!   history-only prognosis from the store with no instrumentation at
//!   all ([`Rung::HistoryOnly`]).
//! * **Classification** — every session ends as exactly one
//!   [`Outcome`]: `Completed`, `Recovered` (finished after resumes),
//!   `Degraded` (finished on a ladder rung), or `Abandoned`.
//!
//! The crate is deliberately free of histpc dependencies: it knows
//! nothing about workloads, stores, or search configs. Sessions plug in
//! through the [`SessionDriver`] trait (implemented by
//! `histpc::supervised` for real workload sessions), and checkpoints
//! travel as opaque text. That keeps the policy engine — budgets,
//! backoff, ladder, classification — testable with scripted mock
//! drivers, and keeps wall-clock time out of the deterministic crates:
//! only this crate's watchdog reads the real clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Heartbeat and cancellation wiring between one session attempt and
/// the watchdog. The driver is expected to hand both atomics to its
/// drive loop: the loop stores a monotonically advancing value into
/// `heartbeat` as it makes progress and polls `cancel` at safe
/// stopping points.
#[derive(Debug, Clone, Default)]
pub struct Hooks {
    /// Written by the session as it progresses (any changing value).
    pub heartbeat: Arc<AtomicU64>,
    /// Raised by the watchdog; the session should stop at a checkpoint.
    pub cancel: Arc<AtomicBool>,
}

/// Why an attempt stopped short of completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// The tool crashed (injected or real) and left a checkpoint.
    Crash,
    /// The session detected its own lack of progress and stopped.
    Stall,
    /// The watchdog (or an operator) raised the cancel flag.
    Cancelled,
}

impl std::fmt::Display for Halt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Halt::Crash => "crash",
            Halt::Stall => "stall",
            Halt::Cancelled => "cancelled",
        })
    }
}

/// What one attempt at driving a session produced.
#[derive(Debug)]
pub enum Attempt {
    /// The session finished and its artifacts are persisted.
    Done {
        /// On a resumed attempt: whether the replayed search state
        /// matched the checkpoint digest (`true` for fresh attempts).
        digest_ok: bool,
    },
    /// The session stopped at a checkpoint without finishing.
    Halted {
        /// The checkpoint to resume from, as opaque text; `None` when
        /// the halt left nothing behind (the supervisor then asks
        /// [`SessionDriver::load_checkpoint`] for a persisted one).
        checkpoint: Option<String>,
        /// Why it stopped.
        reason: Halt,
    },
    /// The shared store was locked by a sibling; retry shortly. Not
    /// counted against the retry budget.
    Contended,
    /// The attempt failed outright (store error, bad artifacts, ...).
    Failed {
        /// Human-readable cause.
        error: String,
    },
}

/// The configuration a [`SessionDriver`] is asked to attempt under —
/// the supervisor's side of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The session's own configuration, unmodified.
    Normal,
    /// Admission control enabled and tightened: lower in-flight and
    /// sample budgets shed load before it can wedge the session again.
    TightenedAdmission,
    /// Instrumentation restricted to top-level hypotheses at the
    /// whole-program focus — the cheapest search that still concludes.
    TopLevelOnly,
}

/// A rung of the degradation ladder a session ended on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Finished under [`Mode::TightenedAdmission`].
    TightenAdmission,
    /// Finished under [`Mode::TopLevelOnly`].
    TopLevelOnly,
    /// No diagnosis ran at all; a history-only prognosis from the
    /// store stands in for the report.
    HistoryOnly,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Rung::TightenAdmission => "tighten-admission",
            Rung::TopLevelOnly => "top-level-only",
            Rung::HistoryOnly => "history-only",
        })
    }
}

/// The final classification of one supervised session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Finished on the first attempt under [`Mode::Normal`].
    Completed,
    /// Finished under [`Mode::Normal`] after `retries` resumes.
    Recovered {
        /// How many checkpoint resumes it took.
        retries: u32,
    },
    /// Finished only on a degradation-ladder rung.
    Degraded {
        /// The rung it finished on.
        rung: Rung,
    },
    /// Nothing worked; the reason of the last failure.
    Abandoned {
        /// Why the session was given up on.
        reason: String,
    },
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Completed => f.write_str("completed"),
            Outcome::Recovered { retries } => write!(f, "recovered after {retries} resume(s)"),
            Outcome::Degraded { rung } => write!(f, "degraded ({rung})"),
            Outcome::Abandoned { reason } => write!(f, "abandoned: {reason}"),
        }
    }
}

/// One supervised session, as the supervisor sees it. Implementations
/// wrap a workload + config + label and run one attempt per call;
/// checkpoints are opaque text round-tripped through the store.
pub trait SessionDriver: Sync {
    /// The session's label, used to order and address reports.
    fn label(&self) -> &str;

    /// Runs one attempt under `mode`, resuming from `resume_from` when
    /// given. `hooks` must be wired into the drive loop so the
    /// watchdog can observe and cancel the attempt.
    fn attempt(&self, mode: Mode, resume_from: Option<&str>, hooks: &Hooks) -> Attempt;

    /// Loads this session's persisted checkpoint, if one exists — used
    /// to resume after a crash that returned nothing (a panic).
    fn load_checkpoint(&self) -> Option<String>;

    /// Produces the history-only prognosis for [`Rung::HistoryOnly`]:
    /// a report derived purely from stored runs. `Err` abandons the
    /// session.
    fn prognose(&self) -> Result<String, String>;
}

/// Supervision policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Checkpoint resumes allowed per session before the ladder engages.
    pub retry_budget: u32,
    /// Wall-clock watchdog deadline: a session whose heartbeat does not
    /// change for this long is cancelled at its next checkpoint. `None`
    /// disables the watchdog thread entirely.
    pub stall: Option<Duration>,
    /// First retry backoff; doubles per resume.
    pub backoff_base: Duration,
    /// Cap on the exponential backoff.
    pub backoff_cap: Duration,
    /// Store-contention retries allowed (uncounted, cheap) before the
    /// session is abandoned as unable to reach the store.
    pub contention_budget: u32,
    /// Whether the degradation ladder runs when retries exhaust; with
    /// `false` the session is abandoned instead.
    pub ladder: bool,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            retry_budget: 3,
            stall: Some(Duration::from_secs(30)),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            contention_budget: 16,
            ladder: true,
        }
    }
}

/// The classified end of one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// The session's label.
    pub label: String,
    /// How it ended.
    pub outcome: Outcome,
    /// Total attempts made, ladder rungs included.
    pub attempts: u32,
    /// Checkpoint resumes used.
    pub resumes: u32,
    /// Times the watchdog cancelled this session for stalling.
    pub watchdog_barks: u32,
    /// Human-readable trail of what happened, in order.
    pub notes: Vec<String>,
}

/// Everything the supervisor did, one entry per session, sorted by
/// label — deterministic however the threads interleaved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisionReport {
    /// Per-session classifications, sorted by label.
    pub sessions: Vec<SessionReport>,
}

impl SupervisionReport {
    /// Sessions that completed on the first normal attempt.
    pub fn completed(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Completed))
    }

    /// Sessions that finished normally after resumes.
    pub fn recovered(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Recovered { .. }))
    }

    /// Sessions that finished on a degradation-ladder rung.
    pub fn degraded(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Degraded { .. }))
    }

    /// Sessions nothing could save.
    pub fn abandoned(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Abandoned { .. }))
    }

    fn count(&self, pred: impl Fn(&Outcome) -> bool) -> usize {
        self.sessions.iter().filter(|s| pred(&s.outcome)).count()
    }

    /// Renders the report as stable text, one line per session plus a
    /// summary line.
    pub fn render(&self) -> String {
        let mut out = String::from("histpc-supervision v1\n");
        for s in &self.sessions {
            out.push_str(&format!(
                "session {}: {} [{} attempt(s), {} resume(s), {} bark(s)]\n",
                s.label, s.outcome, s.attempts, s.resumes, s.watchdog_barks
            ));
        }
        out.push_str(&format!(
            "summary: {} completed, {} recovered, {} degraded, {} abandoned\n",
            self.completed(),
            self.recovered(),
            self.degraded(),
            self.abandoned()
        ));
        out
    }
}

/// Per-session slot the watchdog polls. Arming is a generation counter
/// (odd = an attempt is live) so the watchdog can reset its notion of
/// "last progress" exactly when a new attempt starts, without sharing
/// any lock with the session thread.
#[derive(Debug, Default)]
struct WatchSlot {
    hooks: Hooks,
    generation: AtomicU64,
    barks: AtomicU32,
}

impl WatchSlot {
    fn arm(&self) {
        self.hooks.cancel.store(false, Ordering::SeqCst);
        self.generation.fetch_add(1, Ordering::SeqCst);
    }

    fn disarm(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
    }
}

/// The watchdog's per-slot memory between polls.
struct WatchState {
    generation: u64,
    last_beat: u64,
    since: Instant,
}

/// Shutdown latch for the watchdog: a condvar-paired flag, so the
/// watchdog sleeps in poll-sized slices but wakes *immediately* when
/// the last session finishes. (A plain sleep would make every
/// supervised run pay up to one full poll interval of teardown
/// latency, dwarfing the supervision overhead on short runs.)
#[derive(Default)]
struct Shutdown {
    done: Mutex<bool>,
    bell: Condvar,
}

impl Shutdown {
    fn signal(&self) {
        *self.done.lock().expect("shutdown latch poisoned") = true;
        self.bell.notify_all();
    }

    /// Sleeps up to `timeout`; returns true once shutdown is signalled.
    fn wait(&self, timeout: Duration) -> bool {
        let guard = self.done.lock().expect("shutdown latch poisoned");
        let (guard, _) = self
            .bell
            .wait_timeout_while(guard, timeout, |done| !*done)
            .expect("shutdown latch poisoned");
        *guard
    }
}

fn watchdog_loop(slots: &[Arc<WatchSlot>], stall: Duration, shutdown: &Shutdown) {
    let poll = (stall / 8).clamp(Duration::from_millis(2), Duration::from_millis(250));
    let mut states: Vec<WatchState> = slots
        .iter()
        .map(|s| WatchState {
            generation: s.generation.load(Ordering::SeqCst),
            last_beat: s.hooks.heartbeat.load(Ordering::SeqCst),
            since: Instant::now(),
        })
        .collect();
    while !shutdown.wait(poll) {
        for (slot, state) in slots.iter().zip(states.iter_mut()) {
            let generation = slot.generation.load(Ordering::SeqCst);
            let beat = slot.hooks.heartbeat.load(Ordering::SeqCst);
            if generation != state.generation || beat != state.last_beat {
                // New attempt, or progress: restart the deadline.
                state.generation = generation;
                state.last_beat = beat;
                state.since = Instant::now();
                continue;
            }
            let armed = generation % 2 == 1;
            let already_barked = slot.hooks.cancel.load(Ordering::SeqCst);
            if armed && !already_barked && state.since.elapsed() >= stall {
                slot.hooks.cancel.store(true, Ordering::SeqCst);
                slot.barks.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// Deterministic backoff: capped exponential in the attempt number,
/// with a small label-dependent jitter so sibling sessions retrying a
/// contended store do not re-collide in lockstep.
fn backoff(cfg: &SupervisorConfig, label: &str, attempt: u32) -> Duration {
    let shift = attempt.saturating_sub(1).min(16);
    let base = cfg
        .backoff_base
        .saturating_mul(1u32 << shift)
        .min(cfg.backoff_cap);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let jitter_us = (hash.rotate_left(attempt) % 1000).max(1);
    base + Duration::from_micros(jitter_us)
}

/// Drives one session to a classified end. Never panics; a driver
/// panic is treated as a tool crash and resumed from the persisted
/// checkpoint.
fn supervise_one(
    driver: &dyn SessionDriver,
    cfg: &SupervisorConfig,
    slot: &WatchSlot,
) -> SessionReport {
    let label = driver.label().to_string();
    let mut notes: Vec<String> = Vec::new();
    let mut attempts = 0u32;
    let mut resumes = 0u32;
    let mut contended = 0u32;
    let mut mode = Mode::Normal;
    let mut resume: Option<String> = None;

    let outcome = loop {
        attempts += 1;
        slot.arm();
        let result = catch_unwind(AssertUnwindSafe(|| {
            driver.attempt(mode, resume.as_deref(), &slot.hooks)
        }));
        slot.disarm();

        // Normalize a panic into a crash halt with no inline
        // checkpoint; the persisted one (if any) is loaded below.
        let attempt = match result {
            Ok(a) => a,
            Err(_) => {
                notes.push(format!("attempt {attempts}: session panicked"));
                Attempt::Halted {
                    checkpoint: None,
                    reason: Halt::Crash,
                }
            }
        };

        match attempt {
            Attempt::Done { digest_ok } => {
                if !digest_ok {
                    notes.push(format!(
                        "attempt {attempts}: resumed state diverged from the checkpoint digest"
                    ));
                }
                break match mode {
                    Mode::Normal if resumes == 0 => Outcome::Completed,
                    Mode::Normal => Outcome::Recovered { retries: resumes },
                    Mode::TightenedAdmission => Outcome::Degraded {
                        rung: Rung::TightenAdmission,
                    },
                    Mode::TopLevelOnly => Outcome::Degraded {
                        rung: Rung::TopLevelOnly,
                    },
                };
            }
            Attempt::Contended => {
                contended += 1;
                if contended > cfg.contention_budget {
                    break Outcome::Abandoned {
                        reason: format!("store still contended after {contended} attempts"),
                    };
                }
                std::thread::sleep(backoff(cfg, &label, contended));
            }
            Attempt::Halted { checkpoint, reason } => {
                notes.push(format!("attempt {attempts}: halted ({reason})"));
                if mode == Mode::Normal && resumes < cfg.retry_budget {
                    resumes += 1;
                    resume = checkpoint.or_else(|| driver.load_checkpoint());
                    std::thread::sleep(backoff(cfg, &label, resumes));
                    continue;
                }
                match escalate(cfg, mode, &mut notes) {
                    Some(next) => {
                        mode = next;
                        resume = None;
                    }
                    None => break conclude(driver, cfg, &format!("halted ({reason})"), &mut notes),
                }
            }
            Attempt::Failed { error } => {
                notes.push(format!("attempt {attempts}: failed: {error}"));
                if mode == Mode::Normal && resumes < cfg.retry_budget {
                    resumes += 1;
                    resume = driver.load_checkpoint();
                    std::thread::sleep(backoff(cfg, &label, resumes));
                    continue;
                }
                match escalate(cfg, mode, &mut notes) {
                    Some(next) => {
                        mode = next;
                        resume = None;
                    }
                    None => break conclude(driver, cfg, &error, &mut notes),
                }
            }
        }
    };

    SessionReport {
        label,
        outcome,
        attempts,
        resumes,
        watchdog_barks: slot.barks.load(Ordering::SeqCst),
        notes,
    }
}

/// The next ladder rung after `mode` fails, or `None` when the ladder
/// is exhausted (or disabled) and the session must conclude.
fn escalate(cfg: &SupervisorConfig, mode: Mode, notes: &mut Vec<String>) -> Option<Mode> {
    if !cfg.ladder {
        return None;
    }
    let next = match mode {
        Mode::Normal => Some(Mode::TightenedAdmission),
        Mode::TightenedAdmission => Some(Mode::TopLevelOnly),
        Mode::TopLevelOnly => None,
    };
    if let Some(next) = next {
        notes.push(format!(
            "escalating to {}",
            match next {
                Mode::TightenedAdmission => "tightened admission control",
                Mode::TopLevelOnly => "top-level-only instrumentation",
                Mode::Normal => unreachable!("the ladder never returns to normal"),
            }
        ));
    }
    next
}

/// Terminal step: the history-only rung when the ladder is on, a plain
/// abandonment otherwise.
fn conclude(
    driver: &dyn SessionDriver,
    cfg: &SupervisorConfig,
    last_error: &str,
    notes: &mut Vec<String>,
) -> Outcome {
    if !cfg.ladder {
        return Outcome::Abandoned {
            reason: last_error.to_string(),
        };
    }
    notes.push("escalating to history-only prognosis".to_string());
    match driver.prognose() {
        Ok(_) => Outcome::Degraded {
            rung: Rung::HistoryOnly,
        },
        Err(e) => Outcome::Abandoned {
            reason: format!("{last_error}; prognosis failed: {e}"),
        },
    }
}

/// Supervises any number of concurrent sessions over one shared store.
#[derive(Debug, Clone, Default)]
pub struct Supervisor {
    config: SupervisorConfig,
}

impl Supervisor {
    /// A supervisor with the given policy.
    pub fn new(config: SupervisorConfig) -> Supervisor {
        Supervisor { config }
    }

    /// The active policy.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Runs every driver to a classified end, one thread per session
    /// plus (when a stall deadline is configured) one watchdog thread.
    /// Returns when all sessions are classified; the report is sorted
    /// by label.
    pub fn run(&self, drivers: &[&dyn SessionDriver]) -> SupervisionReport {
        let slots: Vec<Arc<WatchSlot>> = drivers.iter().map(|_| Arc::default()).collect();
        let shutdown = Shutdown::default();
        let mut sessions: Vec<SessionReport> = std::thread::scope(|scope| {
            if let Some(stall) = self.config.stall {
                let watch_slots = slots.clone();
                let shutdown = &shutdown;
                scope.spawn(move || watchdog_loop(&watch_slots, stall, shutdown));
            }
            let handles: Vec<_> = drivers
                .iter()
                .zip(&slots)
                .map(|(driver, slot)| {
                    let cfg = &self.config;
                    scope.spawn(move || supervise_one(*driver, cfg, slot))
                })
                .collect();
            let reports = handles
                .into_iter()
                .zip(drivers)
                .map(|(h, driver)| {
                    h.join().unwrap_or_else(|_| SessionReport {
                        label: driver.label().to_string(),
                        outcome: Outcome::Abandoned {
                            reason: "supervision thread panicked".into(),
                        },
                        attempts: 0,
                        resumes: 0,
                        watchdog_barks: 0,
                        notes: Vec::new(),
                    })
                })
                .collect();
            shutdown.signal();
            reports
        });
        sessions.sort_by(|a, b| a.label.cmp(&b.label));
        SupervisionReport { sessions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// What a scripted attempt should do.
    enum Step {
        Done,
        DoneDigestBad,
        Halt(Halt),
        Panic,
        Contend,
        Fail,
        /// Spin without heartbeats until the watchdog cancels us.
        WaitForCancel,
    }

    struct Mock {
        label: String,
        steps: Mutex<Vec<Step>>,
        persisted_ckpt: Option<String>,
        prognosis: Result<String, String>,
        modes_seen: Mutex<Vec<Mode>>,
        resumes_seen: Mutex<Vec<Option<String>>>,
    }

    impl Mock {
        fn new(label: &str, steps: Vec<Step>) -> Mock {
            Mock {
                label: label.into(),
                steps: Mutex::new(steps),
                persisted_ckpt: Some("persisted".into()),
                prognosis: Ok("prognosis".into()),
                modes_seen: Mutex::new(Vec::new()),
                resumes_seen: Mutex::new(Vec::new()),
            }
        }
    }

    impl SessionDriver for Mock {
        fn label(&self) -> &str {
            &self.label
        }

        fn attempt(&self, mode: Mode, resume_from: Option<&str>, hooks: &Hooks) -> Attempt {
            self.modes_seen.lock().unwrap().push(mode);
            self.resumes_seen
                .lock()
                .unwrap()
                .push(resume_from.map(str::to_string));
            let step = {
                let mut steps = self.steps.lock().unwrap();
                if steps.is_empty() {
                    Step::Done
                } else {
                    steps.remove(0)
                }
            };
            match step {
                Step::Done => Attempt::Done { digest_ok: true },
                Step::DoneDigestBad => Attempt::Done { digest_ok: false },
                Step::Halt(reason) => Attempt::Halted {
                    checkpoint: Some(format!("ckpt-{reason}")),
                    reason,
                },
                Step::Panic => panic!("injected session panic"),
                Step::Contend => Attempt::Contended,
                Step::Fail => Attempt::Failed {
                    error: "store exploded".into(),
                },
                Step::WaitForCancel => {
                    while !hooks.cancel.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Attempt::Halted {
                        checkpoint: Some("ckpt-watchdog".into()),
                        reason: Halt::Cancelled,
                    }
                }
            }
        }

        fn load_checkpoint(&self) -> Option<String> {
            self.persisted_ckpt.clone()
        }

        fn prognose(&self) -> Result<String, String> {
            self.prognosis.clone()
        }
    }

    fn quick_config() -> SupervisorConfig {
        SupervisorConfig {
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(2),
            stall: None,
            ..SupervisorConfig::default()
        }
    }

    fn run_one(driver: &Mock, cfg: SupervisorConfig) -> SessionReport {
        let report = Supervisor::new(cfg).run(&[driver]);
        assert_eq!(report.sessions.len(), 1);
        report.sessions.into_iter().next().unwrap()
    }

    #[test]
    fn clean_session_completes_first_try() {
        let m = Mock::new("a", vec![Step::Done]);
        let r = run_one(&m, quick_config());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.resumes, 0);
    }

    #[test]
    fn crash_resumes_from_its_checkpoint_and_recovers() {
        let m = Mock::new("a", vec![Step::Halt(Halt::Crash), Step::Done]);
        let r = run_one(&m, quick_config());
        assert_eq!(r.outcome, Outcome::Recovered { retries: 1 });
        assert_eq!(r.attempts, 2);
        // The second attempt resumed from the checkpoint the halt
        // returned, not the persisted fallback.
        let resumes = m.resumes_seen.lock().unwrap();
        assert_eq!(resumes[1].as_deref(), Some("ckpt-crash"));
    }

    #[test]
    fn panic_resumes_from_the_persisted_checkpoint() {
        let m = Mock::new("a", vec![Step::Panic, Step::Done]);
        let r = run_one(&m, quick_config());
        assert_eq!(r.outcome, Outcome::Recovered { retries: 1 });
        let resumes = m.resumes_seen.lock().unwrap();
        assert_eq!(resumes[1].as_deref(), Some("persisted"));
    }

    #[test]
    fn exhausted_retries_climb_the_ladder() {
        // Four stalls burn the first attempt and the 3-resume budget;
        // the tightened-admission rung then completes.
        let m = Mock::new(
            "a",
            vec![
                Step::Halt(Halt::Stall),
                Step::Halt(Halt::Stall),
                Step::Halt(Halt::Stall),
                Step::Halt(Halt::Stall),
                Step::Done,
            ],
        );
        let r = run_one(&m, quick_config());
        assert_eq!(
            r.outcome,
            Outcome::Degraded {
                rung: Rung::TightenAdmission
            }
        );
        let modes = m.modes_seen.lock().unwrap();
        assert_eq!(modes[4], Mode::TightenedAdmission);
        // Ladder rungs start fresh, never from a stall checkpoint.
        assert_eq!(m.resumes_seen.lock().unwrap()[4], None);
    }

    #[test]
    fn full_ladder_falls_back_to_history_only() {
        let always_halt: Vec<Step> = (0..8).map(|_| Step::Halt(Halt::Stall)).collect();
        let m = Mock::new("a", always_halt);
        let r = run_one(&m, quick_config());
        assert_eq!(
            r.outcome,
            Outcome::Degraded {
                rung: Rung::HistoryOnly
            }
        );
        let modes = m.modes_seen.lock().unwrap();
        assert_eq!(modes[4], Mode::TightenedAdmission);
        assert_eq!(modes[5], Mode::TopLevelOnly);
        assert_eq!(modes.len(), 6);
    }

    #[test]
    fn failed_prognosis_abandons_with_both_causes() {
        let mut m = Mock::new("a", (0..8).map(|_| Step::Halt(Halt::Crash)).collect());
        m.prognosis = Err("no history".into());
        let r = run_one(&m, quick_config());
        match r.outcome {
            Outcome::Abandoned { reason } => {
                assert!(reason.contains("halted"), "reason: {reason}");
                assert!(reason.contains("no history"), "reason: {reason}");
            }
            other => panic!("expected abandonment, got {other:?}"),
        }
    }

    #[test]
    fn ladder_off_abandons_when_retries_exhaust() {
        let m = Mock::new("a", (0..8).map(|_| Step::Halt(Halt::Crash)).collect());
        let cfg = SupervisorConfig {
            ladder: false,
            ..quick_config()
        };
        let r = run_one(&m, cfg);
        assert!(matches!(r.outcome, Outcome::Abandoned { .. }));
        // Exactly 1 + retry_budget attempts, no rungs.
        assert_eq!(r.attempts, 4);
    }

    #[test]
    fn contention_retries_do_not_consume_the_retry_budget() {
        let m = Mock::new("a", vec![Step::Contend, Step::Contend, Step::Done]);
        let r = run_one(&m, quick_config());
        assert_eq!(r.outcome, Outcome::Completed);
        assert_eq!(r.attempts, 3);
        assert_eq!(r.resumes, 0);
    }

    #[test]
    fn endless_contention_abandons() {
        let m = Mock::new("a", (0..64).map(|_| Step::Contend).collect());
        let cfg = SupervisorConfig {
            contention_budget: 3,
            ..quick_config()
        };
        let r = run_one(&m, cfg);
        assert!(matches!(r.outcome, Outcome::Abandoned { .. }));
    }

    #[test]
    fn store_failure_consumes_retries_then_ladder() {
        let m = Mock::new("a", vec![Step::Fail, Step::Done]);
        let r = run_one(&m, quick_config());
        assert_eq!(r.outcome, Outcome::Recovered { retries: 1 });
    }

    #[test]
    fn watchdog_cancels_a_silent_session() {
        let m = Mock::new("a", vec![Step::WaitForCancel, Step::Done]);
        let cfg = SupervisorConfig {
            stall: Some(Duration::from_millis(30)),
            ..quick_config()
        };
        let r = run_one(&m, cfg);
        assert_eq!(r.outcome, Outcome::Recovered { retries: 1 });
        assert!(r.watchdog_barks >= 1, "watchdog never barked: {r:?}");
    }

    #[test]
    fn heartbeats_keep_the_watchdog_quiet() {
        struct Beater {
            label: String,
        }
        impl SessionDriver for Beater {
            fn label(&self) -> &str {
                &self.label
            }
            fn attempt(&self, _: Mode, _: Option<&str>, hooks: &Hooks) -> Attempt {
                for i in 0..20u64 {
                    hooks.heartbeat.store(i + 1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                }
                Attempt::Done { digest_ok: true }
            }
            fn load_checkpoint(&self) -> Option<String> {
                None
            }
            fn prognose(&self) -> Result<String, String> {
                Err("unused".into())
            }
        }
        let b = Beater { label: "a".into() };
        let cfg = SupervisorConfig {
            stall: Some(Duration::from_millis(40)),
            ..quick_config()
        };
        let report = Supervisor::new(cfg).run(&[&b]);
        assert_eq!(report.sessions[0].outcome, Outcome::Completed);
        assert_eq!(report.sessions[0].watchdog_barks, 0);
    }

    #[test]
    fn report_is_sorted_by_label_and_renders_stably() {
        let c = Mock::new("c", vec![Step::Done]);
        let a = Mock::new("a", vec![Step::Halt(Halt::Crash), Step::Done]);
        let b = Mock::new("b", (0..8).map(|_| Step::Halt(Halt::Stall)).collect());
        let report = Supervisor::new(quick_config()).run(&[&c, &a, &b]);
        let labels: Vec<&str> = report.sessions.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"]);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.recovered(), 1);
        assert_eq!(report.degraded(), 1);
        assert_eq!(report.abandoned(), 0);
        let text = report.render();
        assert!(text.starts_with("histpc-supervision v1\n"));
        assert!(text.contains("session a: recovered after 1 resume(s)"));
        assert!(text.contains("session b: degraded (history-only)"));
        assert!(text.contains("summary: 1 completed, 1 recovered, 1 degraded, 0 abandoned"));
    }

    #[test]
    fn digest_divergence_is_noted_not_fatal() {
        let m = Mock::new("a", vec![Step::Halt(Halt::Crash), Step::DoneDigestBad]);
        let r = run_one(&m, quick_config());
        assert_eq!(r.outcome, Outcome::Recovered { retries: 1 });
        assert!(r.notes.iter().any(|n| n.contains("diverged")));
    }
}
