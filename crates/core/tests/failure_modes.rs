//! Integration tests of the fault-injection layer and the consultant's
//! graceful degradation: lossy sample delivery, dying nodes and
//! processes, injected tool crashes, and what the history layer is
//! allowed to harvest from such runs.

use histpc::history;
use histpc::prelude::*;

fn fast_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(60),
        ..SearchConfig::default()
    }
}

fn record_text(d: &Diagnosis) -> String {
    history::format::write_record(&d.record)
}

/// Field-by-field comparison of two diagnosis reports (the struct does
/// not implement `PartialEq`; the record text covers outcomes, times,
/// and unreachable resources bit-exactly).
fn assert_reports_identical(a: &Diagnosis, b: &Diagnosis) {
    assert_eq!(record_text(a), record_text(b));
    assert_eq!(a.report.shg_rendering, b.report.shg_rendering);
    assert_eq!(a.report.quiescent, b.report.quiescent);
    assert_eq!(a.report.peak_cost.to_bits(), b.report.peak_cost.to_bits());
}

/// The serialisable fault plan survives a text round trip exactly, with
/// every fault class populated.
#[test]
fn fault_plan_round_trips_through_text() {
    let plan = FaultPlan {
        seed: 42,
        drop_rate: 0.1,
        delay_rate: 0.05,
        delay: SimDuration::from_millis(300),
        reorder_rate: 0.02,
        request_fail_rate: 0.2,
        request_defer_rate: 0.1,
        request_defer_by: SimDuration::from_millis(150),
        kills: vec![
            KillEvent {
                at: SimTime::from_micros(5_000_000),
                target: KillTarget::Node("node16".into()),
            },
            KillEvent {
                at: SimTime::from_micros(7_000_000),
                target: KillTarget::Proc(3),
            },
        ],
        tool_crash_at: Some(SimTime::from_micros(9_000_000)),
        corrupt_store: true,
        torn_write: true,
        partial_journal: true,
        sample_flood: 5.0,
        slow_collector: SimDuration::from_millis(40),
        request_storm_rate: 0.25,
        request_storm_burst: 8,
        wire_conn_drop_rate: 0.1,
        wire_torn_request_rate: 0.05,
        wire_slow_client_ms: 20,
        wire_daemon_kill_after: 2,
        poison_prune_rate: 0.25,
        poison_threshold_rate: 0.2,
        stale_mapping_rate: 0.1,
        trust_ledger_corrupt: true,
    };
    let parsed = FaultPlan::parse(&plan.to_text()).expect("plan text parses");
    assert_eq!(parsed, plan);
    assert!(!plan.is_disabled());
    assert_eq!(
        FaultPlan::parse(&FaultPlan::none().to_text()).unwrap(),
        FaultPlan::none()
    );
}

/// With no faults injected, the faulted driver is bit-identical to the
/// plain one: same record text, same SHG rendering, same cost trace.
#[test]
fn disabled_fault_layer_is_bit_identical_to_baseline() {
    let wl = PoissonWorkload::new(PoissonVersion::D).with_seed(11);
    let session = Session::new();
    let config = fast_config();
    let plain = session.diagnose(&wl, &config, "base").unwrap();
    let faulted = session
        .diagnose_faulted(&wl, &config, "base", None)
        .unwrap()
        .diagnosis
        .expect("no crash scheduled");
    assert_reports_identical(&plain, &faulted);
}

/// Killing a process mid-search yields Unknown (starved) and Unreachable
/// (dead-resource) verdicts, and extraction never prunes or prioritises
/// any of those merely-unobserved pairs.
#[test]
fn unknown_verdicts_propagate_into_extraction_unpruned() {
    let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
    let mut config = fast_config();
    config.faults.seed = 7;
    config.faults.kills.push(KillEvent {
        at: SimTime::from_micros(1_500_000),
        target: KillTarget::Proc(1),
    });
    let d = Session::new()
        .diagnose_faulted(&wl, &config, "degraded", None)
        .unwrap()
        .diagnosis
        .expect("no crash scheduled");
    let shaky: Vec<&NodeOutcome> = d
        .record
        .outcomes
        .iter()
        .filter(|o| matches!(o.outcome, Outcome::Unknown | Outcome::Unreachable))
        .collect();
    assert!(
        shaky.iter().any(|o| o.outcome == Outcome::Unreachable),
        "process kill produced no Unreachable verdicts"
    );
    assert!(
        !d.record.unreachable.is_empty(),
        "record did not register the dead resource"
    );
    let directives = history::extract(&d.record, &ExtractionOptions::all_prunes());
    for o in &shaky {
        for p in &directives.prunes {
            assert!(
                !p.matches(&o.hypothesis, &o.focus),
                "{:?}-verdict pair {} {} was pruned",
                o.outcome,
                o.hypothesis,
                o.focus
            );
        }
    }
    let priorities = history::extract(&d.record, &ExtractionOptions::priorities_only());
    for o in &shaky {
        assert!(
            !priorities
                .priorities
                .iter()
                .any(|p| p.hypothesis == o.hypothesis && p.focus == o.focus),
            "{:?}-verdict pair {} {} got a priority directive",
            o.outcome,
            o.hypothesis,
            o.focus
        );
    }
}

/// An injected tool crash leaves a checkpoint; resuming from it on the
/// same seed reproduces the uninterrupted run exactly, and the replayed
/// state matches the checkpoint digest.
#[test]
fn resume_after_crash_matches_uninterrupted_run() {
    let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
    let session = Session::new();
    let mut config = fast_config();
    config.faults.seed = 13;
    config.faults.drop_rate = 0.05;

    let uninterrupted = session
        .diagnose_faulted(&wl, &config, "full", None)
        .unwrap()
        .diagnosis
        .expect("no crash scheduled");

    config.faults.tool_crash_at = Some(SimTime::from_micros(1_200_000));
    let interrupted = session
        .diagnose_faulted(&wl, &config, "crashed", None)
        .unwrap();
    assert!(interrupted.diagnosis.is_none(), "crash did not interrupt");
    let ckpt = interrupted.checkpoint.expect("crash leaves a checkpoint");
    assert_eq!(ckpt.at, SimTime::from_micros(1_200_000));

    let resumed = session
        .diagnose_faulted(&wl, &config, "resumed", Some(&ckpt))
        .unwrap();
    assert!(
        resumed.resumed_digest_ok,
        "replayed search state diverged from the checkpoint digest"
    );
    let resumed = resumed.diagnosis.expect("resume runs to completion");
    // Labels differ; neutralise before the bit-exact comparison.
    let mut a = uninterrupted;
    let mut b = resumed;
    a.record.label = "x".into();
    b.record.label = "x".into();
    assert_reports_identical(&a, &b);
}

/// The acceptance scenario: 10% sample loss plus a node death at t = 5 s
/// injected into the version-D Poisson run. The search must complete,
/// directives harvested from the degraded record must lint clean under
/// `--deny-warnings` semantics (against the record included), and no
/// prune may cover an Unknown/Unreachable pair.
#[test]
fn degraded_version_d_run_harvests_safely() {
    let wl = PoissonWorkload::new(PoissonVersion::D);
    let mut config = fast_config();
    // The full version-D search needs well over fast_config's 60 s cap.
    config.max_time = SimDuration::from_secs(300);
    config.faults.seed = 99;
    config.faults.drop_rate = 0.10;
    config.faults.kills.push(KillEvent {
        at: SimTime::from_micros(5_000_000),
        target: KillTarget::Node("node16".into()),
    });
    let run = Session::new()
        .diagnose_faulted(&wl, &config, "degraded-d", None)
        .unwrap();
    assert!(
        run.stats.dropped > 0 && run.stats.kills_fired == 1,
        "fault plan did not engage: {:?}",
        run.stats
    );
    let d = run.diagnosis.expect("search completes despite the faults");
    assert!(d.report.quiescent, "search did not run to quiescence");
    assert!(
        d.record
            .unreachable
            .iter()
            .any(|r| r.to_string() == "/Machine/node16"),
        "dead node not recorded as unreachable"
    );
    assert!(
        d.report.bottleneck_count() > 0,
        "degraded run found nothing"
    );

    let directives = history::extract(&d.record, &ExtractionOptions::priorities_and_safe_prunes());
    assert!(!directives.is_empty());
    // The general SyncObject prunes are static domain knowledge, emitted
    // identically from a healthy run; the unobserved-pair guarantee is
    // about prunes *derived from this run's evidence*.
    let history_derived = |p: &&Prune| {
        !matches!(&p.target, PruneTarget::Resource(r)
            if r.is_root() && r.hierarchy() == "SyncObject")
    };
    for o in &d.record.outcomes {
        if matches!(o.outcome, Outcome::Unknown | Outcome::Unreachable) {
            assert!(
                !directives
                    .prunes
                    .iter()
                    .filter(history_derived)
                    .any(|p| p.matches(&o.hypothesis, &o.focus)),
                "pruned {:?}-verdict pair {} {}",
                o.outcome,
                o.hypothesis,
                o.focus
            );
        }
    }

    // `histpc lint --deny-warnings` equivalent: zero diagnostics, both
    // statically and cross-checked against the degraded record itself
    // (which exercises HL020/HL021/HL022).
    let text = directives.to_text();
    let report = histpc::lint::Linter::new()
        .directives(&text, "harvested.dirs")
        .against(&d.record)
        .run();
    assert!(
        report.is_clean(),
        "harvested directives did not lint clean:\n{}",
        report.render(
            &histpc::lint::Linter::new()
                .directives(&text, "harvested.dirs")
                .sources()
        )
    );
}

/// Overload faults (sample flood + request storm + slow collector)
/// against a tight admission configuration: the admission layer engages,
/// in-flight requests never exceed the bound, overwhelmed processes
/// conclude `Saturated`, and extraction refuses to harvest anything
/// under them.
#[test]
fn overload_saturates_and_extraction_refuses() {
    let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
    let mut config = fast_config();
    config.faults.seed = 21;
    config.faults.sample_flood = 5.0;
    // The run saturates and quiesces within a handful of ticks, so the
    // storm rate must be high enough to land a burst before the end.
    config.faults.request_storm_rate = 0.9;
    config.faults.request_storm_burst = 6;
    config.faults.slow_collector = SimDuration::from_millis(400);
    config.collector.admission = AdmissionConfig {
        enabled: true,
        max_in_flight: 6,
        sample_budget: 8,
        deadline: SimDuration::from_millis(300),
        breaker_threshold: 2,
        breaker_cooldown: SimDuration::from_secs(2),
    };
    let run = Session::new()
        .diagnose_faulted(&wl, &config, "overload", None)
        .unwrap();
    let d = run.diagnosis.expect("overload must degrade, not crash");
    let adm = &d.report.admission;
    assert!(
        run.stats.flooded > 0 && run.stats.storm_requests > 0,
        "overload faults did not engage: {:?}",
        run.stats
    );
    assert!(
        adm.peak_in_flight <= config.collector.admission.max_in_flight,
        "in-flight bound violated: peak {} > {}",
        adm.peak_in_flight,
        config.collector.admission.max_in_flight
    );
    assert!(adm.shed_samples > 0, "flood shed no samples: {adm:?}");
    assert!(adm.breaker_opens > 0, "no breaker opened: {adm:?}");
    let saturated: Vec<&NodeOutcome> = d
        .record
        .outcomes
        .iter()
        .filter(|o| o.outcome == Outcome::Saturated)
        .collect();
    assert!(
        !saturated.is_empty(),
        "overload produced no Saturated verdicts"
    );
    assert!(
        !d.record.saturated.is_empty(),
        "record did not register the saturated resources"
    );

    let directives = history::extract(&d.record, &ExtractionOptions::all_prunes());
    for o in &saturated {
        for p in &directives.prunes {
            assert!(
                !p.matches(&o.hypothesis, &o.focus),
                "Saturated pair {} {} was pruned",
                o.hypothesis,
                o.focus
            );
        }
    }
    let priorities = history::extract(&d.record, &ExtractionOptions::priorities_only());
    for o in &saturated {
        assert!(
            !priorities
                .priorities
                .iter()
                .any(|p| p.hypothesis == o.hypothesis && p.focus == o.focus),
            "Saturated pair {} {} got a priority directive",
            o.hypothesis,
            o.focus
        );
    }
    // Harvested directives lint clean against the saturated record
    // (HL026 would fire on anything naming a saturated resource).
    let text = directives.to_text();
    let report = histpc::lint::Linter::new()
        .directives(&text, "harvested.dirs")
        .against(&d.record)
        .run();
    assert!(
        report.is_clean(),
        "harvested directives did not lint clean:\n{}",
        report.render(
            &histpc::lint::Linter::new()
                .directives(&text, "harvested.dirs")
                .sources()
        )
    );
}

/// With admission enabled but no overload injected, generous bounds are
/// never hit and the run is bit-identical to one without admission
/// control at all — the zero-pressure path costs nothing.
#[test]
fn unloaded_run_with_admission_enabled_is_bit_identical() {
    let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
    let session = Session::new();
    let config = fast_config();
    let baseline = session.diagnose(&wl, &config, "r1").unwrap();
    let mut admitted_config = config.clone();
    admitted_config.collector.admission = AdmissionConfig::enabled();
    let admitted = session.diagnose(&wl, &admitted_config, "r1").unwrap();
    assert_reports_identical(&baseline, &admitted);
    assert_eq!(admitted.report.admission.shed_requests, 0);
    assert_eq!(admitted.report.admission.shed_samples, 0);
    assert_eq!(admitted.report.admission.breaker_opens, 0);
}

/// A degraded run's directives still speed up a later (healthy) run —
/// the Table-3-shaped effect survives the faults.
#[test]
fn directives_from_degraded_run_still_guide() {
    let wl = PoissonWorkload::new(PoissonVersion::D);
    let session = Session::new();
    let config = SearchConfig {
        max_time: SimDuration::from_secs(300),
        ..fast_config()
    };
    let mut degraded_config = config.clone();
    degraded_config.faults.seed = 99;
    degraded_config.faults.drop_rate = 0.10;
    let degraded = session
        .diagnose_faulted(&wl, &degraded_config, "lossy", None)
        .unwrap()
        .diagnosis
        .expect("no crash scheduled");
    let t_base = degraded
        .report
        .time_of_last_bottleneck()
        .expect("degraded base run finds bottlenecks");
    let directives = history::extract(
        &degraded.record,
        &ExtractionOptions::priorities_and_safe_prunes(),
    );
    let directed = session
        .diagnose(&wl, &config.with_directives(directives), "directed")
        .unwrap();
    let t_directed = directed
        .report
        .time_of_last_bottleneck()
        .expect("directed run finds bottlenecks");
    assert!(
        t_directed.as_micros() * 2 < t_base.as_micros(),
        "directed {t_directed} not much faster than degraded base {t_base}"
    );
}
