//! Property tests of the admission layer's two determinism contracts:
//!
//! * **Zero-pressure bit-identity** — enabling admission control with
//!   bounds the run never hits must not change a single bit of the
//!   outcome: same record text, same SHG rendering, same cost trace.
//! * **Replay determinism under shedding** — a run that does shed,
//!   saturate and re-admit must replay exactly from the same fault seed:
//!   the degraded result is a function of (workload, config, seed), not
//!   of incidental iteration order.

use histpc::history;
use histpc::instr::{Collector, SampleBatch};
use histpc::prelude::*;
use proptest::prelude::*;

fn fast_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(60),
        ..SearchConfig::default()
    }
}

fn fingerprint(d: &Diagnosis) -> (String, String, bool, u64) {
    (
        history::format::write_record(&d.record),
        d.report.shg_rendering.clone(),
        d.report.quiescent,
        d.report.peak_cost.to_bits(),
    )
}

proptest! {
    // Each case runs full diagnoses; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Admission enabled with default (generous) bounds on an unloaded
    /// run: never triggered, and bit-identical to the baseline without
    /// admission control, across workload shapes.
    #[test]
    fn untriggered_admission_is_bit_identical(
        nodes in 1usize..3,
        procs_per_node in 1usize..3,
        hotspot_weight in 0.5f64..3.0,
    ) {
        let wl = SyntheticWorkload::balanced(nodes, procs_per_node, 0.1)
            .with_hotspot(0, 0, hotspot_weight);
        let session = Session::new();
        let config = fast_config();
        let baseline = session.diagnose(&wl, &config, "base").unwrap();
        let mut admitted_config = config;
        admitted_config.collector.admission = AdmissionConfig::enabled();
        let admitted = session.diagnose(&wl, &admitted_config, "base").unwrap();
        prop_assert_eq!(fingerprint(&baseline), fingerprint(&admitted));
        prop_assert_eq!(admitted.report.admission.shed_requests, 0);
        prop_assert_eq!(admitted.report.admission.shed_samples, 0);
        prop_assert_eq!(admitted.report.admission.breaker_opens, 0);
        prop_assert_eq!(admitted.report.admission.saturated_refusals, 0);
    }

    /// A shed-then-readmit run (overload faults against tight bounds)
    /// replays bit-identically from the same fault seed — including the
    /// admission statistics, so every shed, trip and readmission happened
    /// at the same point both times.
    #[test]
    fn shedding_run_replays_deterministically(
        fault_seed in 0u64..1000,
        flood in 3.0f64..8.0,
        storm_rate in 0.2f64..0.8,
    ) {
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        let mut config = fast_config();
        config.faults.seed = fault_seed;
        config.faults.sample_flood = flood;
        config.faults.request_storm_rate = storm_rate;
        config.faults.request_storm_burst = 6;
        config.faults.slow_collector = SimDuration::from_millis(400);
        config.collector.admission = AdmissionConfig {
            enabled: true,
            max_in_flight: 6,
            sample_budget: 8,
            deadline: SimDuration::from_millis(300),
            breaker_threshold: 2,
            breaker_cooldown: SimDuration::from_secs(2),
        };
        let session = Session::new();
        let first = session
            .diagnose_faulted(&wl, &config, "r", None)
            .unwrap()
            .diagnosis
            .expect("overload degrades, never crashes");
        let second = session
            .diagnose_faulted(&wl, &config, "r", None)
            .unwrap()
            .diagnosis
            .expect("overload degrades, never crashes");
        prop_assert_eq!(fingerprint(&first), fingerprint(&second));
        prop_assert_eq!(first.report.admission, second.report.admission);
        // The pressure must actually have engaged, or this property
        // would silently degenerate into the zero-pressure case.
        prop_assert!(
            first.report.admission.shed_samples > 0
                || first.report.admission.shed_requests > 0,
            "overload plan never engaged: {:?}",
            first.report.admission
        );
    }

    /// Batched delivery, zero pressure, at the collector level: the same
    /// per-tick [`SampleBatch`] stream fed to an admission-enabled
    /// collector (bounds never hit) and an admission-disabled one lands
    /// in every pair's histogram bit-for-bit identically.
    #[test]
    fn zero_pressure_batches_land_bit_identically(
        procs in 1usize..4,
        funcs in 1usize..3,
        ms_each in 0.05f64..0.5,
        ticks in 2u64..8,
    ) {
        let wl = SyntheticWorkload::balanced(procs, funcs, ms_each);
        let mut engine = wl.build_engine();
        let mut plain = Collector::new(wl.app_spec(), CollectorConfig::default());
        let mut admitted = Collector::new(
            wl.app_spec(),
            CollectorConfig {
                admission: AdmissionConfig::enabled(),
                ..CollectorConfig::default()
            },
        );
        let wp = plain.space().whole_program();
        let mut ids = Vec::new();
        for metric in [Metric::CpuTime, Metric::SyncWaitTime, Metric::MsgCount] {
            let a = plain.request(metric, wp.clone(), SimTime::ZERO);
            let b = admitted.request(metric, wp.clone(), SimTime::ZERO);
            ids.push((a, b));
        }
        for step in 1..=ticks {
            engine.run_until(SimTime::from_millis(50 * step));
            let batch = SampleBatch::drain(&mut engine);
            plain.ingest(&batch);
            admitted.ingest(&batch);
        }
        for (a, b) in ids {
            prop_assert_eq!(
                plain.pair(a).total().to_bits(),
                admitted.pair(b).total().to_bits()
            );
            prop_assert_eq!(plain.pair(a).observations, admitted.pair(b).observations);
        }
        prop_assert_eq!(admitted.admission().stats().shed_samples, 0);
    }

    /// Whole-group shedding is deterministic and rank-ordered: under a
    /// budget that cannot fit every process's group, replaying the same
    /// batches yields identical histograms and stats, and the data that
    /// does land always comes from a prefix of the process ranks.
    #[test]
    fn group_shedding_is_deterministic_and_rank_ordered(
        procs in 2usize..4,
        ms_each in 0.2f64..1.0,
        budget in 10u64..200,
    ) {
        let wl = SyntheticWorkload::balanced(procs, 1, ms_each);
        let config = CollectorConfig {
            admission: AdmissionConfig {
                enabled: true,
                sample_budget: budget,
                ..AdmissionConfig::enabled()
            },
            ..CollectorConfig::default()
        };
        let run = || {
            let mut engine = wl.build_engine();
            let mut c = Collector::new(wl.app_spec(), config.clone());
            let wp = c.space().whole_program();
            let id = c.request(Metric::CpuTime, wp, SimTime::ZERO);
            for step in 1..=6u64 {
                engine.run_until(SimTime::from_millis(100 * step));
                let batch = SampleBatch::drain(&mut engine);
                c.admission_mut().note_phantom_samples(1_000);
                c.ingest(&batch);
            }
            let freshness: Vec<SimTime> =
                (0..procs).map(|p| c.last_data_at(histpc::sim::ProcId(p as u16))).collect();
            (
                c.pair(id).total().to_bits(),
                c.pair(id).observations,
                *c.admission().stats(),
                freshness,
            )
        };
        let first = run();
        let second = run();
        prop_assert_eq!(&first, &second);
        // Rank order: if any process received data, every lower rank
        // received data at least as fresh (groups shed highest-first).
        let freshness = &first.3;
        for w in freshness.windows(2) {
            prop_assert!(w[0] >= w[1], "freshness not rank-ordered: {freshness:?}");
        }
    }
}
