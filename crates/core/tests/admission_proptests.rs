//! Property tests of the admission layer's two determinism contracts:
//!
//! * **Zero-pressure bit-identity** — enabling admission control with
//!   bounds the run never hits must not change a single bit of the
//!   outcome: same record text, same SHG rendering, same cost trace.
//! * **Replay determinism under shedding** — a run that does shed,
//!   saturate and re-admit must replay exactly from the same fault seed:
//!   the degraded result is a function of (workload, config, seed), not
//!   of incidental iteration order.

use histpc::history;
use histpc::prelude::*;
use proptest::prelude::*;

fn fast_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(60),
        ..SearchConfig::default()
    }
}

fn fingerprint(d: &Diagnosis) -> (String, String, bool, u64) {
    (
        history::format::write_record(&d.record),
        d.report.shg_rendering.clone(),
        d.report.quiescent,
        d.report.peak_cost.to_bits(),
    )
}

proptest! {
    // Each case runs full diagnoses; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Admission enabled with default (generous) bounds on an unloaded
    /// run: never triggered, and bit-identical to the baseline without
    /// admission control, across workload shapes.
    #[test]
    fn untriggered_admission_is_bit_identical(
        nodes in 1usize..3,
        procs_per_node in 1usize..3,
        hotspot_weight in 0.5f64..3.0,
    ) {
        let wl = SyntheticWorkload::balanced(nodes, procs_per_node, 0.1)
            .with_hotspot(0, 0, hotspot_weight);
        let session = Session::new();
        let config = fast_config();
        let baseline = session.diagnose(&wl, &config, "base").unwrap();
        let mut admitted_config = config;
        admitted_config.collector.admission = AdmissionConfig::enabled();
        let admitted = session.diagnose(&wl, &admitted_config, "base").unwrap();
        prop_assert_eq!(fingerprint(&baseline), fingerprint(&admitted));
        prop_assert_eq!(admitted.report.admission.shed_requests, 0);
        prop_assert_eq!(admitted.report.admission.shed_samples, 0);
        prop_assert_eq!(admitted.report.admission.breaker_opens, 0);
        prop_assert_eq!(admitted.report.admission.saturated_refusals, 0);
    }

    /// A shed-then-readmit run (overload faults against tight bounds)
    /// replays bit-identically from the same fault seed — including the
    /// admission statistics, so every shed, trip and readmission happened
    /// at the same point both times.
    #[test]
    fn shedding_run_replays_deterministically(
        fault_seed in 0u64..1000,
        flood in 3.0f64..8.0,
        storm_rate in 0.2f64..0.8,
    ) {
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        let mut config = fast_config();
        config.faults.seed = fault_seed;
        config.faults.sample_flood = flood;
        config.faults.request_storm_rate = storm_rate;
        config.faults.request_storm_burst = 6;
        config.faults.slow_collector = SimDuration::from_millis(400);
        config.collector.admission = AdmissionConfig {
            enabled: true,
            max_in_flight: 6,
            sample_budget: 8,
            deadline: SimDuration::from_millis(300),
            breaker_threshold: 2,
            breaker_cooldown: SimDuration::from_secs(2),
        };
        let session = Session::new();
        let first = session
            .diagnose_faulted(&wl, &config, "r", None)
            .unwrap()
            .diagnosis
            .expect("overload degrades, never crashes");
        let second = session
            .diagnose_faulted(&wl, &config, "r", None)
            .unwrap()
            .diagnosis
            .expect("overload degrades, never crashes");
        prop_assert_eq!(fingerprint(&first), fingerprint(&second));
        prop_assert_eq!(first.report.admission, second.report.admission);
        // The pressure must actually have engaged, or this property
        // would silently degenerate into the zero-pressure case.
        prop_assert!(
            first.report.admission.shed_samples > 0
                || first.report.admission.shed_requests > 0,
            "overload plan never engaged: {:?}",
            first.report.admission
        );
    }
}
