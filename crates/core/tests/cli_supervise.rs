//! Integration: `histpc supervise` exit-code precedence end to end.
//!
//! The CLI maps a supervision report to an exit code worst-wins:
//! any abandoned session ⇒ 1, else any degraded session ⇒ 3, else 0.
//! These tests drive real supervised runs into each band — including
//! the mixed abandoned+degraded report, which must exit 1, never 3 —
//! and check that `histpc ls` surfaces orphaned daemon leases (HL035)
//! the same way it surfaces abandoned checkpoints (HL034).

use histpc::history::lease::{self, Lease};
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_histpc"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("histpc-cli-sup-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fault plan that crashes the tool at t = 1s on every attempt, so a
/// session with `--retries 0` rides the ladder down to its conclusion:
/// history-only prognosis (degraded) when the store already has runs of
/// the app, abandonment when it does not.
fn crash_plan(dir: &Path) -> PathBuf {
    let path = dir.join("crash.faults");
    std::fs::write(&path, "histpc-faults v1\nseed 1\ncrash-tool 1000000\n").unwrap();
    path
}

/// Seeds the store with one completed run of `app` so prognosis has
/// history to fall back on.
fn seed_history(store: &Path, app: &str) {
    let out = bin()
        .args(["run", "--app", app, "--label", "seed", "--store"])
        .arg(store)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "seed run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn all_sessions_abandoned_exits_one() {
    let dir = scratch("abandon");
    let store = dir.join("store");
    let plan = crash_plan(&dir);

    // Empty store: the ladder bottoms out with nothing to prognose.
    let out = bin()
        .args([
            "supervise",
            "--apps",
            "tester",
            "--retries",
            "0",
            "--faults",
        ])
        .arg(&plan)
        .arg("--store")
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("abandoned"),
        "report must classify the session"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_sessions_exit_three() {
    let dir = scratch("degrade");
    let store = dir.join("store");
    let plan = crash_plan(&dir);
    seed_history(&store, "tester");

    let out = bin()
        .args([
            "supervise",
            "--apps",
            "tester",
            "--retries",
            "0",
            "--faults",
        ])
        .arg(&plan)
        .arg("--store")
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("degraded"),
        "report must classify the session"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The worst-wins case: one session degrades (its app has history to
/// prognose from), the other is abandoned (no history at all). The
/// report carries both — the exit code must be 1, never 3.
#[test]
fn mixed_abandoned_and_degraded_exits_one_not_three() {
    let dir = scratch("mixed");
    let store = dir.join("store");
    let plan = crash_plan(&dir);
    seed_history(&store, "tester");

    let out = bin()
        .args([
            "supervise",
            "--apps",
            "tester,ocean",
            "--retries",
            "0",
            "--faults",
        ])
        .arg(&plan)
        .arg("--store")
        .arg(&store)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("degraded"),
        "tester should degrade:\n{stdout}"
    );
    assert!(
        stdout.contains("abandoned"),
        "ocean should be abandoned:\n{stdout}"
    );
    assert_eq!(out.status.code(), Some(1), "worst outcome wins:\n{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `histpc ls` surfaces daemon leases that no checkpoint backs (HL035)
/// alongside its listings, like it does abandoned checkpoints (HL034).
#[test]
fn ls_surfaces_orphaned_leases() {
    let dir = scratch("ls-lease");
    let store = dir.join("store");
    seed_history(&store, "tester");
    lease::write_lease(
        &store,
        &Lease {
            tenant: "team-x".into(),
            app: "Tester".into(),
            label: "ghost".into(),
            epoch: 1,
            state: "active".into(),
            spec: String::new(),
        },
    )
    .unwrap();

    let out = bin().arg("ls").arg("--store").arg(&store).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("orphaned lease"), "{stdout}");
    assert!(stdout.contains("HL035"), "{stdout}");
    assert!(stdout.contains("team-x"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
