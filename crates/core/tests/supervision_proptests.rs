//! Property tests of the supervision layer's two recovery contracts:
//!
//! * **Idempotent resume under repeated crashes** — a diagnosis cut by
//!   a tool crash at *every* checkpoint boundary, resumed each time
//!   from the checkpoint the previous crash left, converges on a final
//!   record bit-identical to the run that was never interrupted; each
//!   replay re-derives exactly the state the checkpoint digest
//!   promised.
//! * **Zero-fault supervised bit-identity** — a supervised fleet over
//!   a shared store, with no faults injected, stores exactly the
//!   records a bare, unsupervised `Session::diagnose` produces, across
//!   workload shapes.

use histpc::consultant::HaltReason;
use histpc::history;
use histpc::prelude::*;
use histpc::supervise::{Outcome as SupOutcome, SessionDriver};
use proptest::prelude::*;

fn fast_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(60),
        ..SearchConfig::default()
    }
}

proptest! {
    // Each case chains many full diagnoses; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Crash the search every `step` sample periods past the previous
    /// checkpoint, resume from each checkpoint, and keep going until a
    /// resume completes. However many times the run is cut, the final
    /// record must be the one an uninterrupted diagnosis produces, and
    /// every replay must match its checkpoint digest.
    #[test]
    fn resume_is_idempotent_under_repeated_crashes(
        step in 2u64..6,
        hotspot_weight in 1.0f64..3.0,
    ) {
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, hotspot_weight);
        let session = Session::new();
        let reference = session.diagnose(&wl, &fast_config(), "chain").unwrap();

        let sample_us = fast_config().sample.as_micros();
        let mut next_crash = step * sample_us;
        let mut ckpt: Option<SearchCheckpoint> = None;
        let mut cuts = 0u32;
        let resumed = loop {
            prop_assert!(cuts < 500, "crash chain did not converge");
            let mut config = fast_config();
            config.faults.tool_crash_at = Some(SimTime::from_micros(next_crash));
            let run = session
                .diagnose_faulted(&wl, &config, "chain", ckpt.as_ref())
                .unwrap();
            prop_assert!(
                run.resumed_digest_ok,
                "replayed state diverged from checkpoint after {cuts} cut(s)"
            );
            match run.diagnosis {
                Some(d) => break d,
                None => {
                    prop_assert_eq!(run.halted, Some(HaltReason::Crash));
                    let c = run.checkpoint.expect("crash leaves a checkpoint");
                    next_crash = c.at.as_micros() + step * sample_us;
                    ckpt = Some(c);
                    cuts += 1;
                }
            }
        };
        prop_assert!(cuts >= 2, "the run was cut only {cuts} time(s)");
        prop_assert_eq!(
            history::format::write_record(&resumed.record),
            history::format::write_record(&reference.record),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A zero-fault supervised fleet (two sessions contending for one
    /// store) completes without intervention and stores records
    /// byte-identical to bare diagnoses of the same workloads.
    #[test]
    fn zero_fault_supervised_fleet_is_bit_identical(
        nodes in 1usize..3,
        procs_per_node in 1usize..3,
        hotspot_weight in 0.5f64..3.0,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "histpc-supprop-{nodes}-{procs_per_node}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let wl = SyntheticWorkload::balanced(nodes, procs_per_node, 0.1)
            .with_hotspot(0, 0, hotspot_weight);
        let session = Session::with_store(&dir).unwrap();

        let labels = ["fleet-a", "fleet-b"];
        let drivers: Vec<WorkloadSession> = labels
            .iter()
            .map(|l| WorkloadSession::new(&session, &wl, fast_config(), *l))
            .collect();
        let refs: Vec<&dyn SessionDriver> =
            drivers.iter().map(|d| d as &dyn SessionDriver).collect();
        let supervisor = Supervisor::new(SupervisorConfig {
            backoff_base: std::time::Duration::from_micros(200),
            backoff_cap: std::time::Duration::from_millis(2),
            ..SupervisorConfig::default()
        });
        let report = supervisor.run(&refs);
        prop_assert_eq!(report.sessions.len(), labels.len());
        for s in &report.sessions {
            prop_assert_eq!(&s.outcome, &SupOutcome::Completed, "notes: {:?}", s.notes);
        }

        let bare = Session::new();
        let store = session.store().unwrap();
        for label in labels {
            let stored = store.load("synth", label).unwrap();
            let d = bare.diagnose(&wl, &fast_config(), label).unwrap();
            prop_assert_eq!(
                history::format::write_record(&stored),
                history::format::write_record(&d.record),
            );
        }
        prop_assert!(store.orphaned_checkpoints().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
