//! Integration: the `histpc store` subcommand family end to end — a
//! crash-faulted run must leave damage `fsck` can name, `repair` must
//! bring the store back to a state that passes `fsck --deny-warnings`,
//! and `migrate` must upgrade a legacy v0 store in place.

use histpc::history;
use histpc::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_histpc"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("histpc-cli-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records one fast synthetic run into `dir`/store as `synth/r1`.
fn record_run(dir: &Path) -> PathBuf {
    let store = dir.join("store");
    let session = Session::with_store(&store).unwrap();
    let wl = SyntheticWorkload::balanced(2, 1, 0.5).with_hotspot(0, 0, 1.0);
    let config = SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(60),
        ..SearchConfig::default()
    };
    session.diagnose(&wl, &config, "r1").unwrap();
    store
}

fn store_cmd(action: &str, store: &Path, extra: &[&str]) -> std::process::Output {
    bin()
        .arg("store")
        .arg(action)
        .arg("--store")
        .arg(store)
        .args(extra)
        .output()
        .unwrap()
}

#[test]
fn healthy_store_passes_fsck_deny_warnings() {
    let dir = scratch("clean");
    let store = record_run(&dir);

    let out = store_cmd("fsck", &store, &["--deny-warnings"]);
    assert!(
        out.status.success(),
        "fsck failed on a healthy store:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("clean"),
        "fsck did not report the store clean"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario from the issue: a run with crash-shaped store
/// faults leaves damage behind; `fsck` names it and exits non-zero on the
/// integrity error; `repair` recovers; `fsck --deny-warnings` then passes.
#[test]
fn crash_faulted_run_then_repair_then_fsck_passes() {
    let dir = scratch("crash");
    let store = dir.join("store");
    let plan = FaultPlan {
        seed: 7,
        torn_write: true,
        partial_journal: true,
        ..FaultPlan::none()
    };
    let plan_file = dir.join("crash.faults");
    std::fs::write(&plan_file, plan.to_text()).unwrap();

    let run = bin()
        .arg("run")
        .args(["--app", "poisson-a", "--label", "t1"])
        .args(["--window", "0.8", "--max-time", "300", "--seed", "5"])
        .arg("--store")
        .arg(&store)
        .arg("--faults")
        .arg(&plan_file)
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "faulted run failed:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );

    // The injected torn write fails its checksum frame: an HL023 error.
    let before = store_cmd("fsck", &store, &[]);
    assert!(!before.status.success(), "fsck missed the injected damage");
    let stderr = String::from_utf8_lossy(&before.stderr);
    assert!(stderr.contains("HL023"), "missing HL023:\n{stderr}");

    let repair = store_cmd("repair", &store, &[]);
    assert!(
        repair.status.success(),
        "repair failed:\n{}",
        String::from_utf8_lossy(&repair.stderr)
    );
    assert!(
        String::from_utf8_lossy(&repair.stdout).contains("repaired"),
        "repair did not report its actions"
    );

    let after = store_cmd("fsck", &store, &["--deny-warnings"]);
    assert!(
        after.status.success(),
        "store still unhealthy after repair:\n{}",
        String::from_utf8_lossy(&after.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn migrate_upgrades_a_v0_store_in_place() {
    let dir = scratch("migrate");
    // A v0 store: loose unframed record files, no manifest or journal.
    let v0 = dir.join("store");
    let store = record_run(&dir);
    let text = history::format::write_record(
        &history::ExecutionStore::open(&store)
            .unwrap()
            .load("synth", "r1")
            .unwrap(),
    );
    let _ = std::fs::remove_dir_all(&v0);
    std::fs::create_dir_all(v0.join("synth")).unwrap();
    std::fs::write(v0.join("synth/r1.record"), &text).unwrap();

    // fsck flags the legacy layout as a warning: exit zero normally,
    // non-zero under --deny-warnings.
    let plain = store_cmd("fsck", &v0, &[]);
    assert!(plain.status.success(), "HL025 alone must not fail fsck");
    let stderr = String::from_utf8_lossy(&plain.stderr);
    assert!(stderr.contains("HL025"), "missing HL025:\n{stderr}");
    let deny = store_cmd("fsck", &v0, &["--deny-warnings"]);
    assert!(!deny.status.success(), "--deny-warnings must fail on v0");

    let migrate = store_cmd("migrate", &v0, &[]);
    assert!(
        migrate.status.success(),
        "migrate failed:\n{}",
        String::from_utf8_lossy(&migrate.stderr)
    );
    assert!(
        String::from_utf8_lossy(&migrate.stdout).contains("migrated 1 record(s)"),
        "migrate did not count the upgraded record"
    );

    let after = store_cmd("fsck", &v0, &["--deny-warnings"]);
    assert!(
        after.status.success(),
        "migrated store not clean:\n{}",
        String::from_utf8_lossy(&after.stderr)
    );
    // The record's payload bytes are preserved exactly.
    let upgraded = history::ExecutionStore::open(&v0).unwrap();
    assert_eq!(
        history::format::write_record(&upgraded.load("synth", "r1").unwrap()),
        text
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trust_subcommand_reports_the_ledger_and_fsck_skips_it() {
    let dir = scratch("trust");
    let store = record_run(&dir);

    // A fresh store has no ledger.
    let empty = store_cmd("trust", &store, &[]);
    assert!(empty.status.success());
    assert!(
        String::from_utf8_lossy(&empty.stdout).contains("no trust entries"),
        "empty ledger not reported"
    );

    // Seed a ledger: one down-weighted source with a pinned revocation.
    let mut ledger = history::trust::TrustLedger::new();
    ledger.record_audit("synth/r1", false);
    ledger.record_revocation("synth/r1", "prune CPUbound resource /Code/a.c");
    ledger.save(&store).unwrap();

    let text = store_cmd("trust", &store, &[]);
    assert!(text.status.success());
    let stdout = String::from_utf8_lossy(&text.stdout);
    assert!(stdout.contains("synth/r1"), "source missing:\n{stdout}");
    assert!(
        stdout.contains("down-weighted"),
        "verdict missing:\n{stdout}"
    );
    assert!(
        stdout.contains("revoked: prune CPUbound resource /Code/a.c"),
        "revoked line missing:\n{stdout}"
    );

    // JSON rides the stable lint-report schema: the revocation is an
    // HL037 warning a machine reader can key on.
    let json = store_cmd("trust", &store, &["--format", "json"]);
    assert!(json.status.success());
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(
        stdout.contains("\"schema\": \"histpc-lint-report/v1\""),
        "{stdout}"
    );
    assert!(
        stdout.contains("HL037"),
        "revocation not in JSON:\n{stdout}"
    );

    // The TRUST sidecar is invisible to integrity checking: fsck lists
    // it as a skipped note and --deny-warnings still passes.
    let fsck = store_cmd("fsck", &store, &["--deny-warnings"]);
    assert!(
        fsck.status.success(),
        "TRUST sidecar failed fsck:\n{}",
        String::from_utf8_lossy(&fsck.stderr)
    );
    assert!(
        String::from_utf8_lossy(&fsck.stderr).contains("skipped: sidecar"),
        "sidecar not listed as skipped"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_clears_litter_and_bad_usage_is_rejected() {
    let dir = scratch("compact");
    let store = record_run(&dir);
    std::fs::write(store.join("synth/r9.record.tmp"), "interrupted").unwrap();

    let compact = store_cmd("compact", &store, &[]);
    assert!(
        compact.status.success(),
        "compact failed:\n{}",
        String::from_utf8_lossy(&compact.stderr)
    );
    let after = store_cmd("fsck", &store, &["--deny-warnings"]);
    assert!(
        after.status.success(),
        "litter survived compact:\n{}",
        String::from_utf8_lossy(&after.stderr)
    );

    let bogus = store_cmd("defrag", &store, &[]);
    assert!(!bogus.status.success(), "unknown action must be rejected");
    let no_dir = bin().args(["store", "fsck"]).output().unwrap();
    assert!(!no_dir.status.success(), "missing --store must be rejected");

    let _ = std::fs::remove_dir_all(&dir);
}
