//! Integration: the `histpc lint` subcommand end to end — corrupted
//! fixtures must exit non-zero and name the right codes with line:col
//! spans; warning-only files must only fail under `--deny-warnings`.

use histpc::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_histpc"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("histpc-cli-lint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Records one fast synthetic run into `dir`/store as `synth/r1`.
fn record_run(dir: &Path) -> PathBuf {
    let store = dir.join("store");
    let session = Session::with_store(&store).unwrap();
    let wl = SyntheticWorkload::balanced(2, 1, 0.5).with_hotspot(0, 0, 1.0);
    let config = SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(60),
        ..SearchConfig::default()
    };
    session.diagnose(&wl, &config, "r1").unwrap();
    store
}

#[test]
fn corrupted_fixture_exits_nonzero_with_codes_and_spans() {
    let dir = scratch("corrupt");
    let store = record_run(&dir);

    let dirs = dir.join("bad.dirs");
    std::fs::write(
        &dirs,
        "# corrupted on purpose\n\
         priority high CPUBound </Code/phantom.c,/Machine,/Process,/SyncObject>\n\
         prune CPUbound resource /Code/ghost.c\n",
    )
    .unwrap();
    let maps = dir.join("bad.map");
    std::fs::write(&maps, "map /Code/a.c /Code/b.c\nmap /Code/b.c /Code/a.c\n").unwrap();

    let out = bin()
        .arg("lint")
        .arg(&dirs)
        .arg(&maps)
        .arg("--against")
        .arg(format!("{}/synth/r1", store.display()))
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);

    assert!(!out.status.success(), "lint must fail, stderr:\n{stderr}");
    // Unknown hypothesis, with its exact span (col 15 = `CPUBound`).
    assert!(stderr.contains("error[HL002]"), "missing HL002:\n{stderr}");
    assert!(stderr.contains("bad.dirs:2:15"), "HL002 span:\n{stderr}");
    assert!(stderr.contains("did you mean `CPUbound`?"), "{stderr}");
    // Cyclic mapping.
    assert!(stderr.contains("error[HL014]"), "missing HL014:\n{stderr}");
    assert!(stderr.contains("bad.map:1:"), "HL014 span:\n{stderr}");
    // Resource absent from the run linted against.
    assert!(stderr.contains("error[HL020]"), "missing HL020:\n{stderr}");
    assert!(stderr.contains("bad.dirs:3:"), "HL020 span:\n{stderr}");
    // rustc-style rendering quotes the offending line under a caret.
    assert!(stderr.contains("^^^^^^^^"), "caret row:\n{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warnings_only_fail_under_deny_warnings() {
    let dir = scratch("warn");
    let file = dir.join("warn.dirs");
    std::fs::write(&file, "threshold CPUbound 0.2\nthreshold CPUbound 0.3\n").unwrap();

    let ok = bin().arg("lint").arg(&file).output().unwrap();
    assert!(
        ok.status.success(),
        "warnings alone must not fail: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let stderr = String::from_utf8_lossy(&ok.stderr);
    assert!(stderr.contains("warning[HL004]"), "{stderr}");

    let deny = bin()
        .arg("lint")
        .arg(&file)
        .arg("--deny-warnings")
        .output()
        .unwrap();
    assert!(!deny.status.success(), "--deny-warnings must fail");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_file_exits_zero_and_prints_nothing() {
    let dir = scratch("clean");
    let file = dir.join("ok.dirs");
    std::fs::write(
        &file,
        "# harvested from run r1\n\
         priority high CPUbound </Code/solve.c,/Machine,/Process,/SyncObject>\n\
         threshold ExcessiveSyncWaitingTime 0.12\n",
    )
    .unwrap();

    let out = bin().arg("lint").arg(&file).output().unwrap();
    assert!(out.status.success());
    assert!(out.stderr.is_empty(), "clean lint must stay silent");

    let _ = std::fs::remove_dir_all(&dir);
}
