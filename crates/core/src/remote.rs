//! The `histpcd/v1` wire protocol and client.
//!
//! `histpcd` (the diagnosis daemon, `crates/daemon`) serves concurrent
//! diagnosis sessions over a Unix-domain socket. The protocol is
//! deliberately line-oriented and human-debuggable — you can drive a
//! daemon with `socat - UNIX:histpcd.sock` — while still being strict
//! enough to survive torn writes and hostile clients:
//!
//! ```text
//! C: histpcd/v1 hello tenant=alice            # handshake, once per conn
//! S: histpcd/v1 ok epoch=3
//! C: start app=poisson-b label=run1 window-ms=800
//! S: ok id=alice/run1 accepted=1
//! C: attach label=run1 wait-ms=30000
//! S: ok state=completed classification=completed
//! C: report label=run1
//! S: ok state=completed lines=42
//! S: <42 raw lines of the stored record text>
//! ```
//!
//! Every request is ONE line: a verb followed by `key=value` pairs.
//! Values are percent-encoded (see [`enc`]) so arbitrary text — fault
//! plan specs, error messages — survives the line discipline. Responses
//! are `ok key=value ...` or `err code=C msg=M [retry-after-ms=N]`; a
//! response with a `lines=N` pair is followed by exactly N raw payload
//! lines (NOT percent-encoded — used for record bodies, which must
//! round-trip bit-identically).
//!
//! Error codes a server may return and their retry semantics:
//!
//! | code          | meaning                                | retryable |
//! |---------------|----------------------------------------|-----------|
//! | `bad-request` | malformed line / unknown verb or app   | no        |
//! | `busy`        | tenant in-flight slice exhausted       | yes       |
//! | `quota`       | tenant sample budget exhausted         | yes       |
//! | `draining`    | daemon is draining, no new sessions    | no        |
//! | `deadline`    | request deadline elapsed server-side   | no        |
//! | `unknown`     | no such session for this tenant        | no        |
//! | `internal`    | server-side failure (bug or store I/O) | no        |
//!
//! Retryable errors carry a `retry-after-ms` hint; [`Client::request`]
//! honours it with capped exponential backoff. Connection-level faults
//! (drop, torn line) are always retried — the daemon makes `start`
//! idempotent per `(tenant, label)` precisely so that a retried start
//! after a dropped response cannot double-run a session.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use histpc_faults::{WireFault, WireInjector};

/// Protocol name + version token, first word of the handshake in both
/// directions. Bump the suffix on any incompatible framing change.
pub const PROTOCOL: &str = "histpcd/v1";

/// Default cap on [`Client`] attempts per request (first try + retries).
pub const DEFAULT_MAX_ATTEMPTS: u32 = 8;

/// Base delay for the client's capped exponential backoff.
pub const BACKOFF_BASE: Duration = Duration::from_millis(25);

/// Ceiling for a single backoff sleep, hint-supplied or computed.
pub const BACKOFF_CAP: Duration = Duration::from_millis(2_000);

// ---------------------------------------------------------------------------
// Percent-encoding
// ---------------------------------------------------------------------------

/// Percent-encodes a value for a `key=value` pair: `%`, space, `=`,
/// CR/LF and all non-printable/non-ASCII bytes become `%HH`. Keys are
/// fixed protocol identifiers and never encoded.
pub fn enc(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for b in value.bytes() {
        match b {
            b'%' | b' ' | b'=' => out.push_str(&format!("%{b:02X}")),
            0x21..=0x7E => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decodes a percent-encoded value. Errs on truncated or non-hex
/// escapes and on escapes that do not form valid UTF-8.
pub fn dec(value: &str) -> Result<String, String> {
    let bytes = value.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| format!("truncated escape in {value:?}"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| "non-ascii escape".to_string())?;
            let b = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape %{hex}"))?;
            out.push(b);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("escape sequence in {value:?} is not UTF-8"))
}

/// Splits a `key=value` token; the value is percent-decoded.
fn parse_pair(token: &str) -> Result<(String, String), String> {
    let (k, v) = token
        .split_once('=')
        .ok_or_else(|| format!("token {token:?} is not key=value"))?;
    if k.is_empty() {
        return Err(format!("empty key in {token:?}"));
    }
    Ok((k.to_string(), dec(v)?))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A single protocol request: a verb plus ordered `key=value` params.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The verb: `start`, `attach`, `status`, `report`, `cancel`,
    /// `health`, `drain`, `shutdown` (servers reject unknown verbs
    /// with `bad-request` rather than panicking).
    pub verb: String,
    /// Decoded parameter pairs in send order.
    pub params: Vec<(String, String)>,
}

impl Request {
    /// Starts a request with the given verb and no params.
    pub fn new(verb: &str) -> Self {
        Self {
            verb: verb.to_string(),
            params: Vec::new(),
        }
    }

    /// Appends a parameter (builder-style).
    pub fn arg(mut self, key: &str, value: impl ToString) -> Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Looks up a parameter by key (first match wins).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serialises to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut line = self.verb.clone();
        for (k, v) in &self.params {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&enc(v));
        }
        line
    }

    /// Parses one wire line into a request.
    pub fn parse(line: &str) -> Result<Self, String> {
        let line = line.trim_end_matches(['\r', '\n']);
        let mut tokens = line.split(' ').filter(|t| !t.is_empty());
        let verb = tokens.next().ok_or_else(|| "empty request".to_string())?;
        if !verb.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            return Err(format!("bad verb {verb:?}"));
        }
        let mut params = Vec::new();
        for token in tokens {
            params.push(parse_pair(token)?);
        }
        Ok(Self {
            verb: verb.to_string(),
            params,
        })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// A protocol response: success with params (+ optional raw body
/// lines), or a coded error with an optional retry hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `ok key=value ...` — `body` holds the `lines=N` payload, raw.
    Ok {
        /// Decoded parameter pairs.
        params: Vec<(String, String)>,
        /// Raw (un-encoded) payload lines announced by `lines=N`.
        body: Vec<String>,
    },
    /// `err code=C msg=M [retry-after-ms=N]`.
    Err {
        /// Stable machine-readable code (see module table).
        code: String,
        /// Human-readable detail.
        msg: String,
        /// Backoff hint for retryable codes.
        retry_after_ms: Option<u64>,
    },
}

impl Response {
    /// A success response with the given params and no body.
    pub fn ok(params: Vec<(&str, String)>) -> Self {
        Response::Ok {
            params: params
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            body: Vec::new(),
        }
    }

    /// A success response carrying raw body lines.
    pub fn ok_with_body(params: Vec<(&str, String)>, body: Vec<String>) -> Self {
        let mut r = Self::ok(params);
        if let Response::Ok { body: b, .. } = &mut r {
            *b = body;
        }
        r
    }

    /// An error response.
    pub fn err(code: &str, msg: impl ToString) -> Self {
        Response::Err {
            code: code.to_string(),
            msg: msg.to_string(),
            retry_after_ms: None,
        }
    }

    /// An error response with a retry hint.
    pub fn err_retry(code: &str, msg: impl ToString, retry_after_ms: u64) -> Self {
        Response::Err {
            code: code.to_string(),
            msg: msg.to_string(),
            retry_after_ms: Some(retry_after_ms),
        }
    }

    /// Looks up a param on an `Ok` response.
    pub fn get(&self, key: &str) -> Option<&str> {
        match self {
            Response::Ok { params, .. } => params
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str()),
            Response::Err { .. } => None,
        }
    }

    /// Body lines of an `Ok` response (empty for errors).
    pub fn body(&self) -> &[String] {
        match self {
            Response::Ok { body, .. } => body,
            Response::Err { .. } => &[],
        }
    }

    /// Serialises the header line (no body lines, no trailing newline).
    /// Callers append `body()` lines verbatim after it.
    pub fn header_line(&self) -> String {
        match self {
            Response::Ok { params, body } => {
                let mut line = "ok".to_string();
                for (k, v) in params {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(&enc(v));
                }
                if !body.is_empty() {
                    line.push_str(&format!(" lines={}", body.len()));
                }
                line
            }
            Response::Err {
                code,
                msg,
                retry_after_ms,
            } => {
                let mut line = format!("err code={} msg={}", enc(code), enc(msg));
                if let Some(ms) = retry_after_ms {
                    line.push_str(&format!(" retry-after-ms={ms}"));
                }
                line
            }
        }
    }

    /// Parses a response header line; `lines=N` body lines (if any)
    /// must be read separately by the transport and attached.
    pub fn parse_header(line: &str) -> Result<(Self, usize), String> {
        let line = line.trim_end_matches(['\r', '\n']);
        let mut tokens = line.split(' ').filter(|t| !t.is_empty());
        let status = tokens.next().ok_or_else(|| "empty response".to_string())?;
        let mut params = Vec::new();
        for token in tokens {
            params.push(parse_pair(token)?);
        }
        let find = |k: &str| {
            params
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        match status {
            "ok" => {
                let body_lines = match find("lines") {
                    Some(n) => n.parse::<usize>().map_err(|_| "bad lines count")?,
                    None => 0,
                };
                params.retain(|(k, _)| k != "lines");
                Ok((
                    Response::Ok {
                        params,
                        body: Vec::new(),
                    },
                    body_lines,
                ))
            }
            "err" => {
                let code = find("code").ok_or_else(|| "err without code".to_string())?;
                let msg = find("msg").unwrap_or_default();
                let retry_after_ms = match find("retry-after-ms") {
                    Some(ms) => Some(ms.parse::<u64>().map_err(|_| "bad retry-after-ms")?),
                    None => None,
                };
                Ok((
                    Response::Err {
                        code,
                        msg,
                        retry_after_ms,
                    },
                    0,
                ))
            }
            other => Err(format!("bad response status {other:?}")),
        }
    }
}

/// Whether an error code is worth retrying after a backoff sleep.
pub fn code_is_retryable(code: &str) -> bool {
    matches!(code, "busy" | "quota")
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Errors a [`Client`] can surface after exhausting its retries.
#[derive(Debug)]
pub enum RemoteError {
    /// The socket could not be reached / the connection kept failing.
    Io(io::Error),
    /// The server spoke something that is not `histpcd/v1`.
    Protocol(String),
    /// The server returned a (non-retryable, or retries-exhausted)
    /// protocol error.
    Daemon {
        /// Stable error code from the response.
        code: String,
        /// Human-readable message from the response.
        msg: String,
    },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Io(e) => write!(f, "daemon i/o error: {e}"),
            RemoteError::Protocol(m) => write!(f, "protocol error: {m}"),
            RemoteError::Daemon { code, msg } => write!(f, "daemon error [{code}]: {msg}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<io::Error> for RemoteError {
    fn from(e: io::Error) -> Self {
        RemoteError::Io(e)
    }
}

/// One live connection: a buffered reader plus a writer handle onto
/// the same `UnixStream`.
struct Conn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Conn {
    fn open(path: &Path, read_timeout: Duration) -> io::Result<Self> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(read_timeout))?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(line)
    }
}

/// A retrying `histpcd/v1` client over a Unix-domain socket.
///
/// The client reconnects and re-handshakes transparently: any I/O
/// failure mid-exchange tears the connection down and (within the
/// attempt budget) retries the whole request on a fresh one. This is
/// sound because the daemon makes every verb idempotent per
/// `(tenant, label)`.
///
/// With a [`WireInjector`] installed ([`Client::with_injector`]) the
/// client *sabotages itself* deterministically — dropping connections,
/// tearing request lines mid-byte, stalling before sends — which is how
/// the `daemon_soak` bench proves the retry path actually converges.
pub struct Client {
    sock: PathBuf,
    tenant: String,
    conn: Option<Conn>,
    injector: Option<WireInjector>,
    /// Attempt budget per request (first try + retries).
    pub max_attempts: u32,
    /// Read timeout applied to every connection.
    pub read_timeout: Duration,
    /// Daemon epoch learned from the last handshake.
    pub epoch: Option<u64>,
}

impl Client {
    /// Creates a client for `tenant` against the socket at `sock`.
    /// No connection is made until the first request.
    pub fn new(sock: impl Into<PathBuf>, tenant: &str) -> Self {
        Self {
            sock: sock.into(),
            tenant: tenant.to_string(),
            conn: None,
            injector: None,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            read_timeout: Duration::from_secs(60),
            epoch: None,
        }
    }

    /// Installs a deterministic wire-fault injector (see
    /// [`histpc_faults::WireInjector`]).
    pub fn with_injector(mut self, injector: WireInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// The tenant this client handshakes as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Drops the current connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn connect(&mut self) -> Result<(), RemoteError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut conn = Conn::open(&self.sock, self.read_timeout)?;
        conn.send_line(&format!("{PROTOCOL} hello tenant={}", enc(&self.tenant)))?;
        let line = conn.read_line()?;
        let line = line.trim_end();
        let rest = line
            .strip_prefix(PROTOCOL)
            .ok_or_else(|| RemoteError::Protocol(format!("bad handshake response {line:?}")))?;
        let (resp, _) = Response::parse_header(rest).map_err(RemoteError::Protocol)?;
        match resp {
            Response::Ok { .. } => {
                self.epoch = resp.get("epoch").and_then(|e| e.parse().ok());
                self.conn = Some(conn);
                Ok(())
            }
            Response::Err { code, msg, .. } => Err(RemoteError::Daemon { code, msg }),
        }
    }

    /// One send/receive exchange on an established connection, with
    /// wire-fault injection applied to the outgoing line.
    fn exchange(&mut self, line: &str) -> io::Result<Response> {
        if let Some(inj) = &mut self.injector {
            if let Some(delay) = inj.slow_client_delay() {
                std::thread::sleep(delay);
            }
            match inj.next_fault() {
                WireFault::Clean => {}
                WireFault::TornRequest => {
                    // Write a torn prefix and kill the connection: the
                    // server must treat the partial line as garbage.
                    let torn = inj.tear_line(line);
                    let conn = self.conn.as_mut().expect("connected");
                    let _ = conn.writer.write_all(torn.as_bytes());
                    let _ = conn.writer.flush();
                    self.conn = None;
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected torn request",
                    ));
                }
                WireFault::ConnDrop => {
                    self.conn = None;
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected connection drop",
                    ));
                }
            }
        }
        let conn = self.conn.as_mut().expect("connected");
        conn.send_line(line)?;
        let header = conn.read_line()?;
        let (mut resp, body_lines) = Response::parse_header(&header)
            .map_err(|m| io::Error::new(io::ErrorKind::InvalidData, m))?;
        if body_lines > 0 {
            let mut body = Vec::with_capacity(body_lines);
            for _ in 0..body_lines {
                let line = conn.read_line()?;
                body.push(line.trim_end_matches('\n').to_string());
            }
            if let Response::Ok { body: b, .. } = &mut resp {
                *b = body;
            }
        }
        Ok(resp)
    }

    /// Sends a request, retrying connection faults and retryable
    /// daemon errors with capped exponential backoff (honouring any
    /// `retry-after-ms` hint). Returns the first terminal response; an
    /// exhausted budget surfaces the last failure.
    pub fn request(&mut self, req: &Request) -> Result<Response, RemoteError> {
        let line = req.to_line();
        let mut last_io: Option<io::Error> = None;
        for attempt in 1..=self.max_attempts {
            let outcome = self.connect().and_then(|()| {
                self.exchange(&line).map_err(|e| {
                    // Any I/O failure poisons the connection; retry on
                    // a fresh one.
                    self.conn = None;
                    RemoteError::Io(e)
                })
            });
            match outcome {
                Ok(Response::Err {
                    code,
                    msg,
                    retry_after_ms,
                }) if code_is_retryable(&code) => {
                    if attempt == self.max_attempts {
                        return Err(RemoteError::Daemon { code, msg });
                    }
                    std::thread::sleep(backoff_delay(attempt, retry_after_ms));
                }
                Ok(resp) => return Ok(resp),
                Err(RemoteError::Io(io_err)) => {
                    last_io = Some(io_err);
                    if attempt < self.max_attempts {
                        std::thread::sleep(backoff_delay(attempt, None));
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(RemoteError::Io(last_io.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "retry budget exhausted")
        })))
    }

    /// Sends a request and errs unless the response is `ok`.
    pub fn expect_ok(&mut self, req: &Request) -> Result<Response, RemoteError> {
        match self.request(req)? {
            Response::Err { code, msg, .. } => Err(RemoteError::Daemon { code, msg }),
            ok => Ok(ok),
        }
    }
}

/// Backoff for retry `attempt` (1-based): the server hint when given,
/// else `BACKOFF_BASE * 2^(attempt-1)`, both capped at [`BACKOFF_CAP`].
pub fn backoff_delay(attempt: u32, hint_ms: Option<u64>) -> Duration {
    let computed = BACKOFF_BASE.saturating_mul(1u32 << attempt.saturating_sub(1).min(10));
    let delay = match hint_ms {
        Some(ms) => Duration::from_millis(ms),
        None => computed,
    };
    delay.min(BACKOFF_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enc_dec_round_trips_hostile_text() {
        for s in [
            "plain",
            "has space",
            "k=v&x%20y",
            "line\nbreak\r\ttab",
            "unicode: héllo ∑",
            "",
        ] {
            assert_eq!(dec(&enc(s)).unwrap(), s, "round-trip {s:?}");
        }
        // Encoded form never contains the line-discipline metacharacters.
        let e = enc("a=b c%d\n");
        assert!(!e.contains(' ') && !e.contains('=') && !e.contains('\n'));
    }

    #[test]
    fn dec_rejects_damage() {
        assert!(dec("%").is_err());
        assert!(dec("%2").is_err());
        assert!(dec("%zz").is_err());
        assert!(dec("%FF%FE").is_err()); // invalid UTF-8
    }

    #[test]
    fn request_round_trips() {
        let req = Request::new("start")
            .arg("app", "poisson-b")
            .arg("label", "run 1")
            .arg("faults", "sample-loss 0.2\ncorrupt-store 1");
        let line = req.to_line();
        assert!(!line.contains('\n'), "request must be one line: {line:?}");
        assert_eq!(Request::parse(&line).unwrap(), req);
        assert_eq!(req.get("app"), Some("poisson-b"));
    }

    #[test]
    fn request_parse_rejects_garbage() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("BAD_VERB x=1").is_err());
        assert!(Request::parse("start appnoequals").is_err());
        assert!(Request::parse("start =nokey").is_err());
        assert!(Request::parse("start app=%zz").is_err());
    }

    #[test]
    fn response_round_trips_ok_and_err() {
        let ok = Response::ok_with_body(
            vec![("state", "completed".into()), ("id", "t/l".into())],
            vec!["record line 1".into(), "record line 2".into()],
        );
        let line = ok.header_line();
        let (parsed, body_lines) = Response::parse_header(&line).unwrap();
        assert_eq!(body_lines, 2);
        assert_eq!(parsed.get("state"), Some("completed"));

        let err = Response::err_retry("busy", "tenant slice full", 250);
        let (parsed, n) = Response::parse_header(&err.header_line()).unwrap();
        assert_eq!(n, 0);
        assert_eq!(parsed, err);
    }

    #[test]
    fn response_parse_rejects_garbage() {
        assert!(Response::parse_header("").is_err());
        assert!(Response::parse_header("maybe x=1").is_err());
        assert!(Response::parse_header("err msg=no-code").is_err());
        assert!(Response::parse_header("ok lines=notanumber").is_err());
    }

    #[test]
    fn retryability_and_backoff() {
        assert!(code_is_retryable("busy"));
        assert!(code_is_retryable("quota"));
        assert!(!code_is_retryable("bad-request"));
        assert!(!code_is_retryable("draining"));
        // Exponential, hint-overridable, capped.
        assert_eq!(backoff_delay(1, None), BACKOFF_BASE);
        assert_eq!(backoff_delay(2, None), BACKOFF_BASE * 2);
        assert_eq!(backoff_delay(1, Some(400)), Duration::from_millis(400));
        assert_eq!(backoff_delay(30, None), BACKOFF_CAP);
        assert_eq!(backoff_delay(1, Some(60_000)), BACKOFF_CAP);
    }

    #[test]
    fn client_surfaces_connect_failure_after_retries() {
        let mut client = Client::new("/nonexistent/histpcd.sock", "t");
        client.max_attempts = 2;
        let err = client.request(&Request::new("health")).unwrap_err();
        assert!(matches!(err, RemoteError::Io(_)), "got {err}");
    }
}
