//! High-level diagnosis sessions.
//!
//! [`Session`] wraps the full pipeline of the paper: run a diagnosis,
//! capture an execution record (and the postmortem ground truth), save it
//! to a store, harvest directives from earlier runs — optionally mapped
//! across code versions — and feed them into the next diagnosis.

use histpc_consultant::{
    drive_diagnosis, DiagnosisReport, HypothesisTree, SearchConfig, SearchDirectives,
};
use histpc_history::{extract, ground_truth, ExecutionRecord, ExecutionStore, ExtractionOptions,
    MappingSet};
use histpc_instr::PostmortemData;
use histpc_resources::Focus;
use histpc_sim::workloads::Workload;
use std::path::Path;

/// The complete result of one diagnosis session.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// The Performance Consultant's report.
    pub report: DiagnosisReport,
    /// The persisted execution record (structural + outcome data).
    pub record: ExecutionRecord,
    /// Full-resolution postmortem data (ground truth).
    pub postmortem: PostmortemData,
    /// The postmortem bottleneck set under the same thresholds — the
    /// "100% of true bottlenecks" reference used by the evaluation.
    pub ground_truth: Vec<(String, Focus)>,
}

/// A diagnosis session, optionally backed by an execution store.
#[derive(Debug, Default)]
pub struct Session {
    store: Option<ExecutionStore>,
}

impl Session {
    /// An in-memory session (nothing persisted).
    pub fn new() -> Session {
        Session { store: None }
    }

    /// A session persisting records into a store at `path`.
    pub fn with_store(path: impl AsRef<Path>) -> Result<Session, histpc_history::store::StoreError> {
        Ok(Session {
            store: Some(ExecutionStore::open(path)?),
        })
    }

    /// The backing store, if any.
    pub fn store(&self) -> Option<&ExecutionStore> {
        self.store.as_ref()
    }

    /// Runs one full online diagnosis of `workload` under `config`,
    /// labels it `label`, saves the record if a store is attached, and
    /// returns the report together with the record and postmortem ground
    /// truth.
    pub fn diagnose(
        &self,
        workload: &dyn Workload,
        config: &SearchConfig,
        label: &str,
    ) -> Diagnosis {
        let mut engine = workload.build_engine();
        let report = drive_diagnosis(&mut engine, config);
        let pm = PostmortemData::from_totals(engine.app().clone(), engine.totals());
        let tree = HypothesisTree::standard();
        let thresholds_used = tree
            .testable()
            .iter()
            .map(|&h| {
                let hyp = tree.get(h);
                let v = config
                    .directives
                    .threshold_for(&hyp.name)
                    .unwrap_or(hyp.default_threshold);
                (hyp.name.clone(), v)
            })
            .collect();
        let record = ExecutionRecord::from_report(&report, pm.space(), label, thresholds_used);
        if let Some(store) = &self.store {
            store.save(&record).expect("store save failed");
            store
                .save_artifact(&record.app_name, label, "shg", &report.shg_rendering)
                .expect("shg artifact save failed");
        }
        let truth = ground_truth(&pm, &tree, &config.directives);
        Diagnosis {
            report,
            record,
            postmortem: pm,
            ground_truth: truth,
        }
    }

    /// Harvests directives from a stored run.
    pub fn harvest(
        &self,
        app: &str,
        label: &str,
        opts: &ExtractionOptions,
    ) -> Result<SearchDirectives, histpc_history::store::StoreError> {
        let store = self
            .store
            .as_ref()
            .expect("harvest from store requires Session::with_store");
        let rec = store.load(app, label)?;
        Ok(extract(&rec, opts))
    }

    /// Harvests directives from a record of a *different* execution or
    /// code version: extracts, auto-suggests resource mappings from the
    /// old record's structure to the new one's, merges user-specified
    /// mappings (which take precedence by being applied last... i.e.
    /// appended after the suggestions), and rewrites the directives.
    pub fn harvest_mapped(
        &self,
        old: &ExecutionRecord,
        new_resources: &[histpc_resources::ResourceName],
        opts: &ExtractionOptions,
        user_mappings: &MappingSet,
    ) -> SearchDirectives {
        let directives = extract(old, opts);
        let mut mappings = MappingSet::suggest(&old.resources, new_resources);
        for (from, to) in user_mappings.entries() {
            mappings.add(from.clone(), to.clone());
        }
        mappings.apply_to_directives(&directives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_sim::workloads::{PoissonVersion, PoissonWorkload, SyntheticWorkload};
    use histpc_sim::SimDuration;

    fn fast_config() -> SearchConfig {
        SearchConfig {
            window: SimDuration::from_millis(800),
            sample: SimDuration::from_millis(100),
            max_time: SimDuration::from_secs(120),
            ..SearchConfig::default()
        }
    }

    #[test]
    fn diagnose_produces_consistent_artifacts() {
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        let session = Session::new();
        let d = session.diagnose(&wl, &fast_config(), "r1");
        assert!(d.report.bottleneck_count() > 0);
        assert_eq!(d.record.label, "r1");
        assert_eq!(d.record.outcomes.len(), d.report.outcomes.len());
        assert!(!d.ground_truth.is_empty());
        // Thresholds recorded for every testable hypothesis.
        assert_eq!(
            d.record.thresholds_used.len(),
            histpc_consultant::HypothesisTree::standard().testable().len()
        );
    }

    #[test]
    fn online_findings_are_a_subset_of_ground_truth_mostly() {
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        let session = Session::new();
        let d = session.diagnose(&wl, &fast_config(), "r1");
        // Every whole-program bottleneck the online search found must be
        // in the postmortem ground truth (windows can differ on
        // borderline deep foci, but the top level is unambiguous).
        for (h, f) in d.report.bottleneck_set() {
            if f.is_whole_program() {
                assert!(
                    d.ground_truth.contains(&(h.clone(), f.clone())),
                    "online-only bottleneck {h} {f}"
                );
            }
        }
    }

    #[test]
    fn store_roundtrip_through_session() {
        let dir = std::env::temp_dir().join(format!("histpc-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 1, 0.5).with_hotspot(0, 0, 1.0);
        let d = session.diagnose(&wl, &fast_config(), "r1");
        let directives = session
            .harvest("synth", "r1", &ExtractionOptions::priorities_only())
            .unwrap();
        assert_eq!(
            directives.priorities.len(),
            d.record
                .outcomes
                .iter()
                .filter(|o| matches!(
                    o.outcome,
                    histpc_consultant::Outcome::True | histpc_consultant::Outcome::False
                ))
                .count()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directed_rerun_is_faster() {
        // The paper's headline effect, end to end.
        let wl = PoissonWorkload::new(PoissonVersion::C);
        let session = Session::new();
        let config = fast_config();
        let base = session.diagnose(&wl, &config, "base");
        let t_base = base
            .report
            .time_of_last_bottleneck()
            .expect("base finds bottlenecks");

        let directives = extract(
            &base.record,
            &ExtractionOptions::priorities_and_safe_prunes(),
        );
        let directed = session.diagnose(
            &wl,
            &config.clone().with_directives(directives),
            "directed",
        );
        let t_directed = directed
            .report
            .time_of_last_bottleneck()
            .expect("directed finds bottlenecks");
        assert!(
            t_directed.as_micros() * 2 < t_base.as_micros(),
            "directed {t_directed} not much faster than base {t_base}"
        );
    }

    #[test]
    fn harvest_mapped_rewrites_cross_version() {
        let session = Session::new();
        let config = fast_config();
        let a = session.diagnose(&PoissonWorkload::new(PoissonVersion::A), &config, "a1");
        let b_wl = PoissonWorkload::new(PoissonVersion::B);
        let b_resources: Vec<_> = {
            let d = session.diagnose(&b_wl, &config, "b-probe");
            d.record.resources.clone()
        };
        let mapped = session.harvest_mapped(
            &a.record,
            &b_resources,
            &ExtractionOptions::priorities_only(),
            &MappingSet::new(),
        );
        // Directives extracted from A must now speak B's names.
        let mentions_a_names = mapped.priorities.iter().any(|p| {
            p.focus
                .selection("Code")
                .is_some_and(|s| s.to_string().contains("oned.f"))
        });
        let mentions_b_names = mapped.priorities.iter().any(|p| {
            p.focus
                .selection("Code")
                .is_some_and(|s| s.to_string().contains("onednb.f"))
        });
        assert!(!mentions_a_names, "unmapped A-version names remain");
        assert!(mentions_b_names, "no mapped B-version names found");
    }
}
