//! High-level diagnosis sessions.
//!
//! [`Session`] wraps the full pipeline of the paper: run a diagnosis,
//! capture an execution record (and the postmortem ground truth), save it
//! to a store, harvest directives from earlier runs — optionally mapped
//! across code versions — and feed them into the next diagnosis.

use histpc_consultant::{
    drive_diagnosis, drive_diagnosis_faulted, DiagnosisReport, HaltReason, HypothesisTree,
    PriorityLevel, SearchCheckpoint, SearchConfig, SearchDirectives,
};
use histpc_faults::FaultStats;
use histpc_history::store::StoreError;
use histpc_history::{
    extract, ground_truth, ExecutionRecord, ExecutionStore, ExtractionOptions, MappingSet,
    TrustLedger, TrustVerdict,
};
use histpc_instr::PostmortemData;
use histpc_lint::{Diagnostic, LintReport, Linter, SourceCache};
use histpc_resources::Focus;
use histpc_sim::workloads::Workload;
use std::fmt;
use std::path::Path;

/// Why a session operation refused to proceed.
#[derive(Debug)]
pub enum SessionError {
    /// The directive/mapping artifacts failed their pre-flight lint; the
    /// report holds every diagnostic, rendered ones included in `Display`.
    Lint(LintReport),
    /// The backing execution store failed.
    Store(StoreError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Lint(report) => {
                let first = report
                    .diagnostics
                    .iter()
                    .find(|d| d.is_error())
                    .or(report.diagnostics.first());
                match (histpc_lint::summary(&report.diagnostics), first) {
                    (Some(s), Some(d)) => {
                        write!(f, "search directives failed lint ({s}); first: {d}")
                    }
                    _ => write!(f, "search directives failed lint"),
                }
            }
            SessionError::Store(e) => write!(f, "execution store error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<StoreError> for SessionError {
    fn from(e: StoreError) -> SessionError {
        SessionError::Store(e)
    }
}

/// Lints a directive set before it steers a search: errors refuse the
/// operation, warnings are returned for the caller to surface.
fn preflight(directives: &SearchDirectives, file: &str) -> Result<Vec<Diagnostic>, SessionError> {
    if directives.is_empty() {
        return Ok(Vec::new());
    }
    let report = Linter::new().directives(directives.to_text(), file).run();
    if report.has_errors() {
        return Err(SessionError::Lint(report));
    }
    Ok(report.diagnostics)
}

/// The complete result of one diagnosis session.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// The Performance Consultant's report.
    pub report: DiagnosisReport,
    /// The persisted execution record (structural + outcome data).
    pub record: ExecutionRecord,
    /// Full-resolution postmortem data (ground truth).
    pub postmortem: PostmortemData,
    /// The postmortem bottleneck set under the same thresholds — the
    /// "100% of true bottlenecks" reference used by the evaluation.
    pub ground_truth: Vec<(String, Focus)>,
    /// Warnings from the pre-flight lint of the search directives (the
    /// lint's errors refuse the diagnosis instead).
    pub lint_warnings: Vec<Diagnostic>,
    /// Number of engine intervals delivered through the sample pipeline
    /// over the whole run — the denominator for per-sample cost figures
    /// in the bench trajectory (`BENCH_<pr>.json`).
    pub events: u64,
}

/// The result of a fault-injected diagnosis: either a completed (possibly
/// degraded) [`Diagnosis`], or the checkpoint an injected tool crash left
/// behind.
#[derive(Debug)]
pub struct DegradedDiagnosis {
    /// The finished diagnosis; `None` when an injected crash interrupted
    /// the search (resume with [`DegradedDiagnosis::checkpoint`]).
    pub diagnosis: Option<Diagnosis>,
    /// The crash checkpoint when the run was interrupted. Also saved as a
    /// `ckpt` artifact when a store is attached.
    pub checkpoint: Option<SearchCheckpoint>,
    /// Why the run was interrupted (crash, watchdog stall, external
    /// cancellation); `None` when it completed.
    pub halted: Option<HaltReason>,
    /// What the injector actually did during the run.
    pub stats: FaultStats,
    /// On a resumed run: whether the replayed search state matched the
    /// checkpoint digest at the crash point. `true` otherwise.
    pub resumed_digest_ok: bool,
}

/// A diagnosis session, optionally backed by an execution store.
#[derive(Debug, Default)]
pub struct Session {
    store: Option<ExecutionStore>,
}

impl Session {
    /// An in-memory session (nothing persisted).
    pub fn new() -> Session {
        Session { store: None }
    }

    /// A session persisting records into a store at `path`.
    pub fn with_store(
        path: impl AsRef<Path>,
    ) -> Result<Session, histpc_history::store::StoreError> {
        Ok(Session {
            store: Some(ExecutionStore::open(path)?),
        })
    }

    /// The backing store, if any.
    pub fn store(&self) -> Option<&ExecutionStore> {
        self.store.as_ref()
    }

    /// Runs one full online diagnosis of `workload` under `config`,
    /// labels it `label`, saves the record if a store is attached, and
    /// returns the report together with the record and postmortem ground
    /// truth.
    ///
    /// The search directives in `config` are linted first:
    /// [`SessionError::Lint`] refuses directives with errors (unknown
    /// hypotheses, malformed foci, out-of-range thresholds), while
    /// warnings are surfaced in [`Diagnosis::lint_warnings`].
    pub fn diagnose(
        &self,
        workload: &dyn Workload,
        config: &SearchConfig,
        label: &str,
    ) -> Result<Diagnosis, SessionError> {
        let lint_warnings = preflight(&config.directives, "<search directives>")?;
        let mut engine = workload.build_engine();
        let report = drive_diagnosis(&mut engine, config);
        let pm = PostmortemData::from_totals(engine.app().clone(), engine.totals());
        let tree = HypothesisTree::standard();
        let thresholds_used = tree
            .testable()
            .iter()
            .map(|&h| {
                let hyp = tree.get(h);
                let v = config
                    .directives
                    .threshold_for(&hyp.name)
                    .unwrap_or(hyp.default_threshold);
                (hyp.name.clone(), v)
            })
            .collect();
        let record = ExecutionRecord::from_report(&report, pm.space(), label, thresholds_used);
        if let Some(store) = &self.store {
            store.save(&record)?;
            store.save_artifact(&record.app_name, label, "shg", &report.shg_rendering)?;
            // Supersede any crash checkpoint left under this label by an
            // earlier interrupted attempt (see diagnose_faulted).
            store.delete_artifact(&record.app_name, label, "ckpt")?;
        }
        self.absorb_audits(&report);
        let truth = ground_truth(&pm, &tree, &config.directives);
        Ok(Diagnosis {
            report,
            record,
            postmortem: pm,
            ground_truth: truth,
            lint_warnings,
            events: engine.events_drained(),
        })
    }

    /// Like [`Session::diagnose`], but drives the search through the
    /// fault injector configured in `config.faults`.
    ///
    /// Injected sample loss, delays, and request failures degrade the run
    /// in place: the report may then carry `Unknown` (starved) and
    /// `Unreachable` (dead-resource) outcomes alongside the usual
    /// verdicts. Overload faults (sample floods, slow collectors, request
    /// storms) pressure the admission layer instead: with admission
    /// control enabled in `config.collector.admission`, overwhelmed
    /// processes trip circuit breakers and their pairs conclude
    /// `Saturated`. An injected tool crash interrupts the run instead,
    /// returning a [`SearchCheckpoint`] — persisted as a `ckpt` artifact
    /// when a store is attached — and no diagnosis; passing that
    /// checkpoint back as `resume_from` deterministically replays the
    /// search past the crash point. With `config.faults.corrupt_store`
    /// set, the saved record is overwritten with a corrupted copy after
    /// the save, exercising the store's quarantine path on the next load.
    /// `torn_write` and `partial_journal` instead stage crash-shaped
    /// damage (a torn record file with an uncommitted journal intent, or
    /// a journal cut mid-append) that the next store open must recover.
    pub fn diagnose_faulted(
        &self,
        workload: &dyn Workload,
        config: &SearchConfig,
        label: &str,
        resume_from: Option<&SearchCheckpoint>,
    ) -> Result<DegradedDiagnosis, SessionError> {
        let lint_warnings = preflight(&config.directives, "<search directives>")?;
        let mut engine = workload.build_engine();
        let run = drive_diagnosis_faulted(&mut engine, config, resume_from);
        if let Some(ckpt) = run.checkpoint {
            if let Some(store) = &self.store {
                store.save_artifact(&run.report.app_name, label, "ckpt", &ckpt.to_text())?;
            }
            return Ok(DegradedDiagnosis {
                diagnosis: None,
                checkpoint: Some(ckpt),
                halted: run.halted,
                stats: run.stats,
                resumed_digest_ok: run.resumed_digest_ok,
            });
        }
        let report = run.report;
        let pm = PostmortemData::from_totals(engine.app().clone(), engine.totals());
        let tree = HypothesisTree::standard();
        let thresholds_used = tree
            .testable()
            .iter()
            .map(|&h| {
                let hyp = tree.get(h);
                let v = config
                    .directives
                    .threshold_for(&hyp.name)
                    .unwrap_or(hyp.default_threshold);
                (hyp.name.clone(), v)
            })
            .collect();
        let record = ExecutionRecord::from_report(&report, pm.space(), label, thresholds_used);
        if let Some(store) = &self.store {
            store.save(&record)?;
            store.save_artifact(&record.app_name, label, "shg", &report.shg_rendering)?;
            // A completed run supersedes the crash checkpoint an earlier
            // interrupted attempt left under this label; without this the
            // store accumulates dead `ckpt` artifacts (lint HL034).
            store.delete_artifact(&record.app_name, label, "ckpt")?;
            if config.faults.corrupt_store {
                let garbled = histpc_faults::corrupt_text(
                    config.faults.seed,
                    &histpc_history::format::write_record(&record),
                );
                store.save_artifact(&record.app_name, label, "record", &garbled)?;
            }
            // Crash-shaped store faults, staged after every save so the
            // injected damage is the last thing the "crashed" tool did;
            // the next ExecutionStore::open must recover from them.
            if config.faults.torn_write {
                let cut = histpc_faults::torn_cut_fraction(config.faults.seed);
                store.inject_torn_write(&record.app_name, label, cut)?;
            }
            if config.faults.partial_journal {
                let cut = histpc_faults::torn_cut_fraction(config.faults.seed ^ 0x9e37);
                store.inject_torn_journal(&record.app_name, label, cut)?;
            }
        }
        // Audit feedback runs only on the completed path: a resumed run
        // replays the same audits, and absorbing them twice would
        // double-count the trust updates.
        self.absorb_audits(&report);
        if let Some(store) = &self.store {
            if config.faults.trust_ledger_corrupt {
                let path = store.root().join(histpc_history::trust::TRUST_FILE);
                let current =
                    std::fs::read_to_string(&path).unwrap_or_else(|_| TrustLedger::new().to_text());
                let garbled = histpc_faults::corrupt_text(config.faults.seed ^ 0x7257, &current);
                let _ = std::fs::write(&path, garbled);
            }
        }
        let truth = ground_truth(&pm, &tree, &config.directives);
        Ok(DegradedDiagnosis {
            diagnosis: Some(Diagnosis {
                report,
                record,
                postmortem: pm,
                ground_truth: truth,
                lint_warnings,
                events: engine.events_drained(),
            }),
            checkpoint: None,
            halted: None,
            stats: run.stats,
            resumed_digest_ok: run.resumed_digest_ok,
        })
    }

    /// Harvests directives from a stored run, vetted against the
    /// corpus: the cross-run conflict pass (`HL030`) runs over the
    /// whole store first, and any directive the corpus *contradicts* —
    /// a high priority one run asserts while another run prunes the
    /// same pair, or the prune side of the same disagreement — is
    /// down-ranked (dropped) before it can steer a diagnosis. On a
    /// conflict-free corpus the vetting is a no-op and the result is
    /// bit-identical to raw extraction. Runs dropped directives are
    /// noted on stderr.
    ///
    /// Every returned directive carries [`Provenance`] naming
    /// `app/label` and the store generation at harvest time, and the
    /// whole set is weighed against the store's **trust ledger** — see
    /// [`Session::harvest_scoped`] for the rules.
    ///
    /// [`Provenance`]: histpc_consultant::Provenance
    pub fn harvest(
        &self,
        app: &str,
        label: &str,
        opts: &ExtractionOptions,
    ) -> Result<SearchDirectives, SessionError> {
        self.harvest_scoped(app, label, opts, None)
    }

    /// [`Session::harvest`] with an optional tenant scope (the daemon
    /// prefixes each tenant so one tenant's poisoned history can never
    /// taint another's trust).
    ///
    /// Trust-weighted harvesting, in order:
    ///
    /// 1. Extracted directives are stamped with provenance
    ///    `source@generation`, where source is `app/label` (or
    ///    `tenant/app/label`).
    /// 2. Each `HL030` conflict the corpus pass finds decays the trust
    ///    of *both* runs involved, once per distinct contradicted pair
    ///    — chronically contradicted sources slide toward quarantine.
    /// 3. Corpus down-ranking drops contradicted directives (as ever).
    /// 4. The ledger's verdict on the source gates the rest: a
    ///    **quarantined** source contributes nothing (`HL036`); a
    ///    **down-weighted** source keeps only its priorities, with
    ///    High demoted to Medium — prunes and thresholds, the kinds
    ///    that silently remove search work, are dropped.
    /// 5. Directive lines a shadow audit already **revoked** for this
    ///    source are dropped (`HL037`): a convicted lie stays dead no
    ///    matter how often the record is re-harvested.
    pub fn harvest_scoped(
        &self,
        app: &str,
        label: &str,
        opts: &ExtractionOptions,
        tenant: Option<&str>,
    ) -> Result<SearchDirectives, SessionError> {
        let store = self
            .store
            .as_ref()
            .expect("harvest from store requires Session::with_store");
        let rec = store.load(app, label)?;
        let mut harvested = extract(&rec, opts);
        let source = match tenant {
            Some(t) => format!("{t}/{app}/{label}"),
            None => format!("{app}/{label}"),
        };
        let generation = store.generation().ok().flatten().unwrap_or(0);
        // Stamp before any filtering so every survivor can name its
        // source run in audits, revocations, and reports.
        harvested.stamp_provenance(&source, generation);

        let mut ledger = TrustLedger::load(store.root());
        let mut ledger_dirty = false;
        let analysis = histpc_lint::CorpusAnalyzer::new(store).analyze()?;
        // Every HL030 conflict decays both sides' trust, once per
        // distinct contradicted pair.
        for v in analysis.verdicts.iter() {
            let key = format!("{}/{} {} {}", v.app, v.version, v.hypothesis, v.focus);
            for src_label in [&v.prune_source, &v.priority_source] {
                let src = match tenant {
                    Some(t) => format!("{t}/{}/{src_label}", v.app),
                    None => format!("{}/{src_label}", v.app),
                };
                ledger_dirty |= ledger.record_conflict(&src, &key);
            }
        }
        let (mut vetted, dropped) =
            analysis
                .verdicts
                .down_rank(&harvested, &rec.app_name, &rec.app_version);
        vetted.adopt_provenance(&harvested);
        if dropped > 0 {
            eprintln!(
                "harvest: down-ranked {dropped} directive(s) from {app}/{label} \
                 contradicted elsewhere in the corpus (see `histpc lint corpus`)"
            );
        }

        // Trust gate on the source run as a whole.
        let mut vetted = match ledger.verdict(&source) {
            TrustVerdict::Trusted => vetted,
            TrustVerdict::Quarantined => {
                eprintln!(
                    "harvest: source {source} is quarantined (trust {} < {}); \
                     applying none of its {} directive(s) (HL036)",
                    ledger.score(&source),
                    histpc_history::trust::QUARANTINE_FLOOR,
                    vetted.len(),
                );
                SearchDirectives::none()
            }
            TrustVerdict::Downweighted => {
                let mut out = SearchDirectives::none();
                let mut demoted = 0usize;
                for p in &vetted.priorities {
                    let mut p = p.clone();
                    if p.level == PriorityLevel::High {
                        p.level = PriorityLevel::Medium;
                        demoted += 1;
                    }
                    out.add_priority(p);
                }
                out.stamp_provenance(&source, generation);
                eprintln!(
                    "harvest: source {source} is down-weighted (trust {} < {}); \
                     dropped its prunes/thresholds, demoted {demoted} High priorit{}",
                    ledger.score(&source),
                    histpc_history::trust::DOWNWEIGHT_BELOW,
                    if demoted == 1 { "y" } else { "ies" },
                );
                out
            }
        };

        // Revoked lines stay dead (HL037).
        let mut revoked_dropped = 0usize;
        for line in vetted.lines() {
            if ledger.is_revoked(&source, &line) {
                vetted.remove_by_line(&line);
                revoked_dropped += 1;
            }
        }
        if revoked_dropped > 0 {
            eprintln!(
                "harvest: dropped {revoked_dropped} directive(s) from {source} \
                 previously revoked by shadow audits (HL037)"
            );
        }

        if ledger_dirty {
            // Non-fatal: worst case the next session re-learns the
            // same distrust from the same corpus.
            let _ = ledger.save(store.root());
        }
        Ok(vetted)
    }

    /// Feeds a finished report's shadow-audit outcomes into the trust
    /// ledger: passes slowly restore trust, failures halve it, and
    /// every revoked directive line is pinned so no later harvest can
    /// resurrect it. No-op without a store or without audits.
    fn absorb_audits(&self, report: &DiagnosisReport) {
        let Some(store) = &self.store else { return };
        if report.audits.is_empty() {
            return;
        }
        let mut ledger = TrustLedger::load(store.root());
        for a in &report.audits {
            ledger.record_audit(&a.source_run, a.passed);
            if !a.passed {
                ledger.record_revocation(&a.source_run, &a.directive);
            }
        }
        let _ = ledger.save(store.root());
    }

    /// Harvests directives from a record of a *different* execution or
    /// code version: extracts, auto-suggests resource mappings from the
    /// old record's structure to the new one's, merges user-specified
    /// mappings (which take precedence: a user mapping beats a suggestion
    /// for the same source), and rewrites the directives.
    ///
    /// The combined mapping set and the rewritten directives are linted
    /// before being returned: errors (e.g. a cyclic or cross-hierarchy
    /// user mapping) refuse the harvest with [`SessionError::Lint`];
    /// warnings are printed to stderr.
    pub fn harvest_mapped(
        &self,
        old: &ExecutionRecord,
        new_resources: &[histpc_resources::ResourceName],
        opts: &ExtractionOptions,
        user_mappings: &MappingSet,
    ) -> Result<SearchDirectives, SessionError> {
        let directives = extract(old, opts);
        let mut mappings = user_mappings.clone();
        for (from, to) in MappingSet::suggest(&old.resources, new_resources).entries() {
            // User mappings win ties: `apply_to_name` prefers the first
            // entry among equally specific sources, so only add a
            // suggestion when the user did not map that source already.
            if !mappings.entries().iter().any(|(f, _)| f == from) {
                mappings.add(from.clone(), to.clone());
            }
        }
        // Structural lint of the combined mapping set (cycles, chains,
        // non-injective merges brought in by the user's file).
        let map_text = mappings.to_text();
        let map_linter = Linter::new().mappings(&map_text, "<mappings>");
        let map_report = map_linter.run();
        if map_report.has_errors() {
            return Err(SessionError::Lint(map_report));
        }
        let mapped = mappings.apply_to_directives(&directives);
        let warnings = preflight(&mapped, "<mapped directives>")?;
        let mut sources = SourceCache::new();
        sources.insert("<mappings>", &map_text);
        sources.insert("<mapped directives>", &mapped.to_text());
        for w in map_report.diagnostics.iter().chain(&warnings) {
            eprint!(
                "{}",
                histpc_lint::render_all(std::slice::from_ref(w), &sources)
            );
        }
        Ok(mapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_sim::workloads::{PoissonVersion, PoissonWorkload, SyntheticWorkload};
    use histpc_sim::SimDuration;

    fn fast_config() -> SearchConfig {
        SearchConfig {
            window: SimDuration::from_millis(800),
            sample: SimDuration::from_millis(100),
            max_time: SimDuration::from_secs(120),
            ..SearchConfig::default()
        }
    }

    #[test]
    fn diagnose_produces_consistent_artifacts() {
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        let session = Session::new();
        let d = session.diagnose(&wl, &fast_config(), "r1").unwrap();
        assert!(d.report.bottleneck_count() > 0);
        assert_eq!(d.record.label, "r1");
        assert_eq!(d.record.outcomes.len(), d.report.outcomes.len());
        assert!(!d.ground_truth.is_empty());
        // Thresholds recorded for every testable hypothesis.
        assert_eq!(
            d.record.thresholds_used.len(),
            histpc_consultant::HypothesisTree::standard()
                .testable()
                .len()
        );
    }

    #[test]
    fn online_findings_are_a_subset_of_ground_truth_mostly() {
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        let session = Session::new();
        let d = session.diagnose(&wl, &fast_config(), "r1").unwrap();
        // Every whole-program bottleneck the online search found must be
        // in the postmortem ground truth (windows can differ on
        // borderline deep foci, but the top level is unambiguous).
        for (h, f) in d.report.bottleneck_set() {
            if f.is_whole_program() {
                assert!(
                    d.ground_truth.contains(&(h.clone(), f.clone())),
                    "online-only bottleneck {h} {f}"
                );
            }
        }
    }

    #[test]
    fn store_roundtrip_through_session() {
        let dir = std::env::temp_dir().join(format!("histpc-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 1, 0.5).with_hotspot(0, 0, 1.0);
        let d = session.diagnose(&wl, &fast_config(), "r1").unwrap();
        let directives = session
            .harvest("synth", "r1", &ExtractionOptions::priorities_only())
            .unwrap();
        assert_eq!(
            directives.priorities.len(),
            d.record
                .outcomes
                .iter()
                .filter(|o| matches!(
                    o.outcome,
                    histpc_consultant::Outcome::True | histpc_consultant::Outcome::False
                ))
                .count()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directed_rerun_is_faster() {
        // The paper's headline effect, end to end.
        let wl = PoissonWorkload::new(PoissonVersion::C);
        let session = Session::new();
        let config = fast_config();
        let base = session.diagnose(&wl, &config, "base").unwrap();
        let t_base = base
            .report
            .time_of_last_bottleneck()
            .expect("base finds bottlenecks");

        let directives = extract(
            &base.record,
            &ExtractionOptions::priorities_and_safe_prunes(),
        );
        let directed = session
            .diagnose(&wl, &config.clone().with_directives(directives), "directed")
            .unwrap();
        let t_directed = directed
            .report
            .time_of_last_bottleneck()
            .expect("directed finds bottlenecks");
        assert!(
            t_directed.as_micros() * 2 < t_base.as_micros(),
            "directed {t_directed} not much faster than base {t_base}"
        );
    }

    #[test]
    fn faulted_run_with_disabled_plan_is_bit_identical() {
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        let session = Session::new();
        let config = fast_config();
        let plain = session.diagnose(&wl, &config, "r1").unwrap();
        let faulted = session
            .diagnose_faulted(&wl, &config, "r1", None)
            .unwrap()
            .diagnosis
            .expect("no crash scheduled");
        assert_eq!(
            histpc_history::format::write_record(&plain.record),
            histpc_history::format::write_record(&faulted.record),
        );
    }

    #[test]
    fn injected_crash_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join(format!("histpc-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        let mut config = fast_config();
        config.faults.tool_crash_at = Some(histpc_sim::SimTime::from_micros(1_000_000));
        let interrupted = session.diagnose_faulted(&wl, &config, "c1", None).unwrap();
        assert!(interrupted.diagnosis.is_none());
        let ckpt = interrupted.checkpoint.expect("crash leaves a checkpoint");
        let saved = session
            .store()
            .unwrap()
            .load_artifact("synth", "c1", "ckpt")
            .unwrap();
        assert_eq!(SearchCheckpoint::parse(&saved).unwrap(), ckpt);
        assert_eq!(
            interrupted.halted,
            Some(histpc_consultant::HaltReason::Crash)
        );
        assert_eq!(
            session.store().unwrap().orphaned_checkpoints().unwrap(),
            vec![("synth".to_string(), "c1".to_string())],
            "interrupted run not reported as an orphaned checkpoint"
        );
        let resumed = session
            .diagnose_faulted(&wl, &config, "c1", Some(&ckpt))
            .unwrap();
        assert!(
            resumed.resumed_digest_ok,
            "replayed state diverged from the checkpoint"
        );
        assert!(resumed.diagnosis.is_some());
        // The completed resume supersedes the persisted checkpoint: no
        // dead ckpt artifact may accumulate in the store.
        assert!(
            session
                .store()
                .unwrap()
                .load_artifact("synth", "c1", "ckpt")
                .is_err(),
            "stale checkpoint survived a successful resume"
        );
        assert!(session
            .store()
            .unwrap()
            .orphaned_checkpoints()
            .unwrap()
            .is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_fault_garbles_the_saved_record() {
        let dir = std::env::temp_dir().join(format!("histpc-garble-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 1, 0.5).with_hotspot(0, 0, 1.0);
        let mut config = fast_config();
        config.faults.corrupt_store = true;
        let d = session
            .diagnose_faulted(&wl, &config, "g1", None)
            .unwrap()
            .diagnosis
            .unwrap();
        let on_disk = session
            .store()
            .unwrap()
            .load_artifact("synth", "g1", "record")
            .unwrap();
        assert_ne!(
            on_disk,
            histpc_history::format::write_record(&d.record),
            "corrupt_store fault left the record intact"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_shaped_store_faults_recover_on_next_session() {
        for (torn_write, partial_journal) in [(true, false), (false, true), (true, true)] {
            let dir = std::env::temp_dir().join(format!(
                "histpc-tornsession-{torn_write}-{partial_journal}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let session = Session::with_store(&dir).unwrap();
            let wl = SyntheticWorkload::balanced(2, 1, 0.5).with_hotspot(0, 0, 1.0);
            let mut config = fast_config();
            config.faults.seed = 7;
            config.faults.torn_write = torn_write;
            config.faults.partial_journal = partial_journal;
            session
                .diagnose_faulted(&wl, &config, "t1", None)
                .unwrap()
                .diagnosis
                .unwrap();
            drop(session);
            // The "crashed" tool left damage behind; fsck sees it.
            assert!(
                !histpc_history::fsck::fsck(&dir).is_empty(),
                "injection left nothing for fsck to find \
                 (torn_write={torn_write}, partial_journal={partial_journal})"
            );
            // The next session's open auto-recovers; after repair, fsck
            // reports zero errors.
            let next = Session::with_store(&dir).unwrap();
            let store = next.store().unwrap();
            let (_, _warnings) = store.load_all_with_warnings("synth").unwrap();
            store.repair().unwrap();
            let diags = histpc_history::fsck::fsck(&dir);
            assert!(
                diags.iter().all(|d| !d.is_error()),
                "errors survived recovery: {diags:?}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn harvest_is_bit_identical_on_conflict_free_corpus() {
        let dir = std::env::temp_dir().join(format!("histpc-vetclean-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        // Two identical runs: the corpus agrees with itself, so vetting
        // must change nothing — not even byte order.
        session.diagnose(&wl, &fast_config(), "r1").unwrap();
        session.diagnose(&wl, &fast_config(), "r2").unwrap();
        let store = session.store().unwrap();
        let opts = ExtractionOptions::priorities_and_safe_prunes();
        for label in ["r1", "r2"] {
            let raw = extract(&store.load("synth", label).unwrap(), &opts);
            let vetted = session.harvest("synth", label, &opts).unwrap();
            assert_eq!(vetted.to_text(), raw.to_text(), "label {label}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn harvest_down_ranks_corpus_contradicted_directives() {
        use histpc_consultant::{NodeOutcome, Outcome};
        use histpc_resources::ResourceName;

        let n = |s: &str| ResourceName::parse(s).unwrap();
        let outcome = |val: f64, oc: Outcome| NodeOutcome {
            hypothesis: "CPUbound".into(),
            focus: Focus::whole_program(["Code", "Machine", "Process", "SyncObject"])
                .with_selection(n("/Code/a.c/f")),
            outcome: oc,
            first_true_at: (oc == Outcome::True).then_some(histpc_sim::SimTime(1)),
            concluded_at: Some(histpc_sim::SimTime(1)),
            last_value: val,
            samples: 5,
        };
        let rec = |label: &str, outcomes| ExecutionRecord {
            app_name: "app".into(),
            app_version: "A".into(),
            label: label.into(),
            resources: vec![
                n("/Code"),
                n("/Code/a.c"),
                n("/Code/a.c/f"),
                n("/Machine"),
                n("/Machine/n1"),
                n("/Process"),
                n("/Process/p1"),
                n("/SyncObject"),
            ],
            outcomes,
            thresholds_used: vec![],
            end_time: histpc_sim::SimTime(10),
            pairs_tested: 1,
            unreachable: vec![],
            saturated: vec![],
        };

        let dir = std::env::temp_dir().join(format!("histpc-vetconfl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let store = session.store().unwrap();
        // r1 finds f trivial (harvests a subtree prune); r2 finds f a
        // real bottleneck (harvests a high priority). The corpus
        // contradicts itself about f, so harvest must drop both sides.
        store
            .save(&rec("r1", vec![outcome(0.001, Outcome::False)]))
            .unwrap();
        store
            .save(&rec("r2", vec![outcome(0.4, Outcome::True)]))
            .unwrap();

        let opts = ExtractionOptions::priorities_and_safe_prunes();
        let raw2 = extract(&store.load("app", "r2").unwrap(), &opts);
        assert!(raw2
            .priorities
            .iter()
            .any(|p| p.level == histpc_consultant::directive::PriorityLevel::High));
        let vetted2 = session.harvest("app", "r2", &opts).unwrap();
        assert!(
            !vetted2.priorities.iter().any(|p| p.level
                == histpc_consultant::directive::PriorityLevel::High
                && p.focus.selection("Code") == Some(&n("/Code/a.c/f"))),
            "contradicted high priority survived vetting"
        );

        let raw1 = extract(&store.load("app", "r1").unwrap(), &opts);
        let vetted1 = session.harvest("app", "r1", &opts).unwrap();
        assert_eq!(vetted1.prunes.len(), raw1.prunes.len() - 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_audits_decay_trust_and_pin_revocations() {
        use histpc_consultant::directive::{Prune, PruneTarget};

        let dir = std::env::temp_dir().join(format!("histpc-trustaudit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        let base = session.diagnose(&wl, &fast_config(), "r1").unwrap();

        // Poison: prune every true bottleneck pair, claiming r1 as the
        // source. Shadow audits probe within budget, convict the lies,
        // and the session must charge them to r1's trust.
        let mut poisoned = SearchDirectives::none();
        for (h, f) in base.report.bottleneck_set() {
            poisoned.add_prune(Prune {
                hypothesis: Some(h.clone()),
                target: PruneTarget::Pair(f.clone()),
            });
        }
        poisoned.stamp_provenance("synth/r1", 1);
        let mut config = fast_config();
        config.directives = poisoned;
        config.audit_budget = 64;
        let audited = session.diagnose(&wl, &config, "r2").unwrap();
        let revoked = audited.report.revocations();
        assert!(!revoked.is_empty(), "no poisoned prune was convicted");
        assert!(revoked.iter().all(|a| a.source_run == "synth/r1"));

        let ledger = TrustLedger::load(&dir);
        assert!(
            ledger.score("synth/r1") < histpc_history::trust::FULL_SCORE,
            "failed audits left trust untouched"
        );
        for a in &revoked {
            assert!(
                ledger.is_revoked("synth/r1", &a.directive),
                "revocation of `{}` was not pinned",
                a.directive
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn harvest_drops_revoked_lines_and_gates_on_trust() {
        let dir = std::env::temp_dir().join(format!("histpc-trustgate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        session.diagnose(&wl, &fast_config(), "r1").unwrap();
        let opts = ExtractionOptions::priorities_and_safe_prunes();
        let full = session.harvest("synth", "r1", &opts).unwrap();
        assert!(!full.is_empty());
        // Every harvested directive names its source run.
        for line in full.lines() {
            let p = full.provenance_of(&line).expect("unstamped directive");
            assert_eq!(p.source_run, "synth/r1");
        }

        // Pin a revocation for one line the extraction produces: the
        // next harvest must drop exactly that line (HL037).
        let victim = full.lines().into_iter().next().unwrap();
        let mut ledger = TrustLedger::load(&dir);
        ledger.record_revocation("synth/r1", &victim);
        ledger.save(&dir).unwrap();
        let vetted = session.harvest("synth", "r1", &opts).unwrap();
        assert_eq!(vetted.len(), full.len() - 1);
        assert!(!vetted.lines().contains(&victim));

        // Decay to down-weighted: only priorities survive, High demoted.
        let mut ledger = TrustLedger::load(&dir);
        ledger.record_audit("synth/r1", false); // 1000 -> 500
        ledger.save(&dir).unwrap();
        let weighted = session.harvest("synth", "r1", &opts).unwrap();
        assert!(weighted.prunes.is_empty() && weighted.thresholds.is_empty());
        assert!(!weighted.priorities.is_empty());
        assert!(weighted
            .priorities
            .iter()
            .all(|p| p.level != PriorityLevel::High));

        // Decay past the floor: a quarantined source contributes nothing.
        let mut ledger = TrustLedger::load(&dir);
        ledger.record_audit("synth/r1", false); // 500 -> 250
        ledger.record_audit("synth/r1", false); // 250 -> 125, quarantined
        ledger.save(&dir).unwrap();
        let gone = session.harvest("synth", "r1", &opts).unwrap();
        assert!(gone.is_empty(), "quarantined source still harvested");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trust_ledger_corrupt_fault_recovers_to_full_trust() {
        let dir = std::env::temp_dir().join(format!("histpc-trustcorr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 1, 0.5).with_hotspot(0, 0, 1.0);
        let mut ledger = TrustLedger::new();
        ledger.record_audit("synth/r0", false);
        ledger.save(&dir).unwrap();

        let mut config = fast_config();
        config.faults.trust_ledger_corrupt = true;
        session
            .diagnose_faulted(&wl, &config, "c1", None)
            .unwrap()
            .diagnosis
            .unwrap();
        // The fault garbled the TRUST file in place...
        let on_disk = std::fs::read_to_string(dir.join(histpc_history::trust::TRUST_FILE)).unwrap();
        assert!(
            TrustLedger::parse(&on_disk).is_none(),
            "fault left TRUST parseable"
        );
        // ...and the checksum frame makes the load fail safe: the next
        // session sees a fresh ledger (conservative full trust), not a
        // half-parsed one.
        let recovered = TrustLedger::load(&dir);
        assert_eq!(
            recovered.score("synth/r0"),
            histpc_history::trust::FULL_SCORE
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn harvest_mapped_rewrites_cross_version() {
        let session = Session::new();
        let config = fast_config();
        let a = session
            .diagnose(&PoissonWorkload::new(PoissonVersion::A), &config, "a1")
            .unwrap();
        let b_wl = PoissonWorkload::new(PoissonVersion::B);
        let b_resources: Vec<_> = {
            let d = session.diagnose(&b_wl, &config, "b-probe").unwrap();
            d.record.resources.clone()
        };
        let mapped = session
            .harvest_mapped(
                &a.record,
                &b_resources,
                &ExtractionOptions::priorities_only(),
                &MappingSet::new(),
            )
            .unwrap();
        // Directives extracted from A must now speak B's names.
        let mentions_a_names = mapped.priorities.iter().any(|p| {
            p.focus
                .selection("Code")
                .is_some_and(|s| s.to_string().contains("oned.f"))
        });
        let mentions_b_names = mapped.priorities.iter().any(|p| {
            p.focus
                .selection("Code")
                .is_some_and(|s| s.to_string().contains("onednb.f"))
        });
        assert!(!mentions_a_names, "unmapped A-version names remain");
        assert!(mentions_b_names, "no mapped B-version names found");
    }
}
