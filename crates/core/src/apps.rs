//! The named application catalogue shared by the CLI and the daemon.
//!
//! `histpc run --app NAME`, `histpc supervise --apps ...` and a
//! `histpcd` `start` request all name workloads the same way; this
//! module is the single resolver so a remote run diagnoses exactly the
//! workload an in-process run would.

use histpc_sim::workloads::{
    OceanWorkload, PoissonVersion, PoissonWorkload, TesterWorkload, WavefrontWorkload, Workload,
};

/// Every application spec [`build_workload`] accepts, in display order.
pub const APP_SPECS: &[&str] = &[
    "poisson-a",
    "poisson-b",
    "poisson-c",
    "poisson-d",
    "ocean",
    "tester",
    "sweep3d",
];

/// Builds the named workload, threading an optional seed into the
/// workloads that take one. Errs on an unknown spec (listing the known
/// ones) instead of exiting, so servers can answer a bad request
/// gracefully.
pub fn build_workload(
    app: &str,
    seed: Option<u64>,
) -> Result<Box<dyn Workload + Send + Sync>, String> {
    let poisson = |v: PoissonVersion| {
        let mut wl = PoissonWorkload::new(v);
        if let Some(s) = seed {
            wl = wl.with_seed(s);
        }
        Box::new(wl) as Box<dyn Workload + Send + Sync>
    };
    Ok(match app {
        "poisson-a" => poisson(PoissonVersion::A),
        "poisson-b" => poisson(PoissonVersion::B),
        "poisson-c" => poisson(PoissonVersion::C),
        "poisson-d" => poisson(PoissonVersion::D),
        "ocean" => Box::new(OceanWorkload::new()),
        "tester" => Box::new(TesterWorkload::new()),
        "sweep3d" => Box::new(WavefrontWorkload::new()),
        other => {
            return Err(format!(
                "unknown application {other:?} (want one of: {})",
                APP_SPECS.join(", ")
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_spec_builds() {
        for spec in APP_SPECS {
            let wl = build_workload(spec, Some(7)).unwrap();
            assert!(!wl.app_spec().name.is_empty());
        }
    }

    #[test]
    fn unknown_spec_errs_with_catalogue() {
        let e = build_workload("nope", None).err().unwrap();
        assert!(e.contains("nope") && e.contains("poisson-a"));
    }
}
