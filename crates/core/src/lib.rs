//! `histpc` — history-guided online performance diagnosis.
//!
//! A from-scratch reproduction of Karavanic & Miller, *"Improving Online
//! Performance Diagnosis by the Use of Historical Performance Data"*
//! (SC 1999), including every substrate the paper depends on:
//!
//! * [`sim`] — a deterministic discrete-event simulator of message-passing
//!   applications (the stand-in for MPI programs on an IBM SP/2),
//!   including the paper's Poisson decomposition workload in versions A–D;
//! * [`instr`] — a dynamic-instrumentation layer with metric-focus pairs,
//!   insertion latency, Paradyn-style time histograms and a perturbation
//!   cost model;
//! * [`resources`] — resource hierarchies, foci and refinement;
//! * [`consultant`] — the Performance Consultant: online bottleneck search
//!   over the Search History Graph, extended with search directives;
//! * [`history`] — the paper's contribution: an execution store, directive
//!   extraction (prunes / priorities / thresholds), resource mapping
//!   between executions, and multi-run combination;
//! * [`faults`] — deterministic, seeded fault injection (lossy sample
//!   delivery, failing instrumentation requests, dying nodes, tool
//!   crashes) used to exercise the consultant's graceful degradation;
//! * [`supervise`] — session supervision: heartbeat watchdogs,
//!   checkpoint auto-resume under a retry budget, and an escalating
//!   degradation ladder that classifies every run
//!   (see [`WorkloadSession`]);
//! * [`remote`] — the `histpcd/v1` wire protocol and retrying client
//!   for `histpcd` (`crates/daemon`), the crash-tolerant
//!   diagnosis-as-a-service daemon with lease-based session recovery.
//!
//! # Quickstart
//!
//! ```
//! use histpc::prelude::*;
//!
//! // 1. Run the unmodified Performance Consultant on an application
//! //    (a small synthetic one here; see examples/ for the paper's
//! //    Poisson application versions A-D).
//! let workload = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
//! let config = SearchConfig {
//!     window: SimDuration::from_millis(800),
//!     sample: SimDuration::from_millis(100),
//!     ..SearchConfig::default()
//! };
//! let session = Session::new();
//! let base = session.diagnose(&workload, &config, "base").unwrap();
//!
//! // 2. Harvest search directives from the run.
//! let directives = histpc::history::extract(
//!     &base.record,
//!     &ExtractionOptions::priorities_and_safe_prunes(),
//! );
//!
//! // 3. Re-diagnose with the directives: dramatically faster.
//! let directed = session.diagnose(
//!     &workload,
//!     &config.clone().with_directives(directives),
//!     "directed",
//! ).unwrap();
//! assert!(directed.report.bottleneck_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use histpc_consultant as consultant;
pub use histpc_faults as faults;
pub use histpc_history as history;
pub use histpc_instr as instr;
pub use histpc_lint as lint;
pub use histpc_resources as resources;
pub use histpc_sim as sim;
pub use histpc_supervise as supervise;

pub mod apps;
pub mod remote;
pub mod session;
pub mod supervised;

pub use apps::build_workload;
pub use remote::{Client, RemoteError, Request, Response};
pub use session::{DegradedDiagnosis, Diagnosis, Session, SessionError};
pub use supervised::WorkloadSession;

/// The most commonly used names, for glob import.
pub mod prelude {
    pub use crate::session::{DegradedDiagnosis, Diagnosis, Session, SessionError};
    pub use crate::supervised::WorkloadSession;
    pub use histpc_consultant::{
        drive_diagnosis, drive_diagnosis_faulted, DegradedRun, DiagnosisReport, NodeOutcome,
        Outcome, PriorityDirective, PriorityLevel, Prune, PruneTarget, SearchCheckpoint,
        SearchConfig, SearchDirectives, ThresholdDirective,
    };
    pub use histpc_faults::{FaultPlan, FaultStats, KillEvent, KillTarget};
    pub use histpc_history::{
        extract, intersect, union, ExecutionRecord, ExecutionStore, ExtractionOptions, MappingSet,
    };
    pub use histpc_instr::{
        AdmissionConfig, AdmissionStats, Collector, CollectorConfig, Metric, PostmortemData,
    };
    pub use histpc_resources::{Focus, ResourceName, ResourceSpace};
    pub use histpc_sim::workloads::{
        OceanWorkload, PoissonVersion, PoissonWorkload, SyntheticWorkload, TesterWorkload,
        WavefrontWorkload, Workload,
    };
    pub use histpc_sim::{Engine, EngineStatus, MachineModel, SimDuration, SimTime};
    pub use histpc_supervise::{SupervisionReport, Supervisor, SupervisorConfig};
}
