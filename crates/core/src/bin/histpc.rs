//! `histpc` — command-line interface to history-guided performance
//! diagnosis.
//!
//! ```text
//! histpc run      --app poisson-c [--label L] [--store DIR] [--directives FILE]
//!                 [--mappings FILE] [--window SECS] [--max-time SECS] [--seed N]
//!                 [--faults FILE] [--resume FILE] [--admission KNOBS]
//!                 [--audit-budget N] [--supervised] [--retries N] [--stall-ms T]
//! histpc supervise --store DIR --apps A,B,C [--label L] [--retries N]
//!                 [--stall-ms T] [--window SECS] [--max-time SECS] [--seed N]
//!                 [--faults FILE] [--admission KNOBS]
//! histpc harvest  --store DIR --app NAME --label L [--mode MODE] [--out FILE]
//!                 [--provenance]
//! histpc map      --store DIR --app NAME --from LABEL --to LABEL [--out FILE]
//! histpc compare  --store DIR --app NAME --from LABEL --to LABEL
//! histpc profile  --app APP [--for SECS]
//! histpc shg      --store DIR --app NAME --label L
//! histpc ls       --store DIR [--app NAME]
//! histpc lint     FILE... [--against STORE/APP/LABEL] [--deny-warnings] [--format F]
//! histpc lint     corpus STORE [--last N] [--deny-warnings] [--format F]
//! histpc store    fsck|repair|compact|migrate --store DIR [--deny-warnings]
//! histpc store    trust --store DIR [--format json]
//! histpc daemon   start --store DIR --socket PATH [--tenant-slots N]
//!                 [--tenant-budget N] [--idle-ms T] [--retries N] [--stall-ms T]
//! histpc daemon   stop|status --socket PATH
//! histpc run      --remote SOCK --app APP [--label L] [--tenant T] [--seed N]
//!                 [--window SECS] [--max-time SECS] [--faults FILE] [--budget N]
//!                 [--harvest-from L] [--audit-budget N]
//! ```
//!
//! Applications: `poisson-a`, `poisson-b`, `poisson-c`, `poisson-d`,
//! `ocean`, `tester`, `sweep3d`. Harvest modes: `priorities`, `prunes`,
//! `general-prunes`, `historic-prunes`, `combined` (default),
//! `combined+thresholds`.
//!
//! `--faults FILE` loads a `histpc-faults v1` fault plan and drives the
//! diagnosis through the injector: samples may be dropped, delayed or
//! reordered, instrumentation requests may fail, and scheduled kills take
//! nodes or processes down mid-search. If the plan schedules a tool
//! crash, the run stops at that point and (with `--store`) saves a
//! checkpoint artifact; rerun with `--resume FILE` pointing at it to
//! replay deterministically past the crash.
//!
//! `--admission KNOBS` turns on overload admission control in the data
//! collector: `on` accepts the defaults, or a comma-separated knob list
//! (`max-in-flight=N,sample-budget=N,deadline-ms=N,strikes=N,cooldown-ms=N`)
//! tunes the bounds. Under pressure the collector sheds refinement
//! requests before backing ones, trims over-budget sample batches, and
//! opens per-process circuit breakers whose foci then conclude
//! `Saturated` instead of blocking the search.
//!
//! `run` exits 0 on a clean diagnosis, 1 on errors, 2 on usage problems,
//! and 3 when the final report is *degraded* — it contains `Unknown`,
//! `Unreachable` or `Saturated` verdicts, meaning part of the search
//! space was never honestly measured.
//!
//! `--supervised` wraps the run in the full supervision stack: a
//! heartbeat watchdog with a stall deadline (`--stall-ms`, default
//! 30000; also mirrored into the drive loop's deterministic in-loop
//! stall detector in application time), automatic checkpoint resume
//! under a bounded retry budget (`--retries`, default 3), and the
//! escalating degradation ladder (tightened admission control →
//! top-level-only instrumentation → history-only prognosis). `histpc
//! supervise` runs one such session per `--apps` entry concurrently
//! over one shared store. Both print a classified report — every
//! session ends `completed`, `recovered`, `degraded` or `abandoned` —
//! and exit 0 when all sessions completed or recovered, 3 when any
//! ended degraded, and 1 when any was abandoned.
//!
//! `lint` statically validates directive and mapping files (kind
//! auto-detected per file) and prints rustc-style diagnostics with
//! stable `HLxxx` codes. With `--against` the directives are also
//! cross-checked, after mapping, against a stored run's resource
//! hierarchies. `lint corpus STORE` instead analyzes a whole execution
//! store across runs: directive conflicts (HL030), staleness against
//! the last-N runs (HL031; `--last N`, default 20), threshold drift
//! (HL032), and prune-dominated directives (HL033) — with per-record
//! fact extraction cached incrementally in the store's `FACTS` sidecar.
//! `--format json` prints the findings as a stable
//! `histpc-lint-report/v1` JSON object on stdout instead of rendered
//! text. Exit status is non-zero on errors, or on warnings when
//! `--deny-warnings` is given.
//!
//! `store` maintains a history store's on-disk health. `fsck` checks it
//! read-only (HL023 integrity errors, HL024 unclean-shutdown warnings,
//! HL025 legacy/drift warnings; known sidecars like `FACTS` and `TRUST`
//! are listed as skipped notes — each is self-checking); `repair`
//! recovers interrupted writes and salvages or quarantines damaged
//! records; `compact` reindexes the manifest and resets the journal;
//! `migrate` upgrades a v0 loose-file store to the checksummed v1
//! layout in place. `trust` prints the store's trust ledger — per
//! source-run scores, audit tallies, charged conflicts, and revoked
//! directive lines — as a table, or as a `histpc-lint-report/v1` JSON
//! object with `--format json` (quarantined sources are HL036
//! warnings, pinned revocations HL037).
//!
//! `run --audit-budget N` turns on online shadow audits: up to N
//! history-pruned or history-lowered pairs get probe instrumentation
//! anyway (riding the backing-store admission reserve), and a probe
//! that contradicts its directive revokes it mid-run, reopens the
//! affected subtree, and charges the lie to the source run's trust.
//!
//! `daemon` manages a `histpcd` diagnosis daemon: `start` launches the
//! `histpcd` binary that ships next to `histpc` and waits for its
//! socket; `stop` asks it to shut down (in-flight sessions finish
//! classified first); `status` prints its health line. `run --remote
//! SOCK` then runs the diagnosis *on* such a daemon instead of
//! in-process — start (idempotent, so lost responses retry safely),
//! attach until the session is classified, fetch and print the stored
//! report. Remote runs exit with the supervised-run codes: 0 for
//! completed/recovered, 3 for degraded, 1 for abandoned or transport
//! failure.

use histpc::history;
use histpc::prelude::*;
use histpc::remote::{Client, Request};
use histpc::supervise::SessionDriver;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  histpc run --app APP [--label L] [--store DIR] [--directives FILE]\n\
         \x20            [--mappings FILE] [--window SECS] [--max-time SECS] [--seed N]\n\
         \x20            [--faults FILE] [--resume FILE] [--admission KNOBS]\n\
         \x20            [--audit-budget N] [--supervised] [--retries N] [--stall-ms T]\n\
         \x20 histpc supervise --store DIR --apps A,B,C [--label L] [--retries N]\n\
         \x20            [--stall-ms T] [--window SECS] [--max-time SECS] [--seed N]\n\
         \x20 histpc harvest --store DIR --app NAME --label L [--mode MODE] [--out FILE]\n\
         \x20            [--provenance]\n\
         \x20 histpc map     --store DIR --app NAME --from LABEL --to LABEL [--out FILE]\n\
         \x20 histpc compare --store DIR --app NAME --from LABEL --to LABEL\n\
         \x20 histpc profile --app APP [--for SECS]\n\
         \x20 histpc shg     --store DIR --app NAME --label L\n\
         \x20 histpc ls      --store DIR [--app NAME]\n\
         \x20 histpc lint    FILE... [--against STORE/APP/LABEL] [--deny-warnings] [--format F]\n\
         \x20 histpc lint    corpus STORE [--last N] [--deny-warnings] [--format F]\n\
         \x20 histpc store   fsck|repair|compact|migrate --store DIR [--deny-warnings]\n\
         \x20 histpc store   trust --store DIR [--format json]\n\
         \x20 histpc daemon  start --store DIR --socket PATH [--tenant-slots N]\n\
         \x20            [--tenant-budget N] [--idle-ms T] [--retries N] [--stall-ms T]\n\
         \x20 histpc daemon  stop|status --socket PATH\n\
         \x20 histpc run     --remote SOCK --app APP [--label L] [--tenant T] [--seed N]\n\
         \x20            [--window SECS] [--max-time SECS] [--faults FILE] [--budget N]\n\
         \x20            [--harvest-from L] [--audit-budget N]\n\n\
         apps: poisson-a poisson-b poisson-c poisson-d ocean tester sweep3d\n\
         modes: priorities prunes general-prunes historic-prunes combined combined+thresholds"
    );
    std::process::exit(2);
}

/// Flags that take no value; present means on.
const BOOLEAN_FLAGS: &[&str] = &["supervised", "provenance"];

/// Parses `--key value` pairs (and bare boolean flags) after the
/// subcommand.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument {:?}", args[i]);
            usage();
        };
        if BOOLEAN_FLAGS.contains(&key) {
            out.insert(key.to_string(), "on".into());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for --{key}");
            usage();
        };
        out.insert(key.to_string(), value.clone());
        i += 2;
    }
    out
}

fn require<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    match flags.get(key) {
        Some(v) => v,
        None => {
            eprintln!("missing required flag --{key}");
            usage();
        }
    }
}

fn build_workload(app: &str, seed: Option<u64>) -> Box<dyn Workload + Send + Sync> {
    match histpc::apps::build_workload(app, seed) {
        Ok(wl) => wl,
        Err(msg) => {
            eprintln!("{msg}");
            usage();
        }
    }
}

fn extraction_mode(mode: &str) -> ExtractionOptions {
    match mode {
        "priorities" => ExtractionOptions::priorities_only(),
        "prunes" => ExtractionOptions::all_prunes(),
        "general-prunes" => ExtractionOptions::general_prunes_only(),
        "historic-prunes" => ExtractionOptions::historic_prunes_only(),
        "combined" => ExtractionOptions::priorities_and_safe_prunes(),
        "combined+thresholds" => ExtractionOptions::priorities_and_safe_prunes().with_thresholds(),
        other => {
            eprintln!("unknown harvest mode {other:?}");
            usage();
        }
    }
}

/// Exit code for a diagnosis that completed but is degraded: the report
/// carries `Unknown`, `Unreachable` or `Saturated` verdicts, so part of
/// the search space was never honestly measured. Distinct from plain
/// errors (1) and usage problems (2) so scripts can tell "the run broke"
/// from "the run finished but don't fully trust it".
const EXIT_DEGRADED: u8 = 3;

/// Builds the supervision policy from `--retries` / `--stall-ms`, and
/// mirrors the stall deadline into the search config's deterministic
/// in-loop detector (application time) so a wedged drive loop stops at
/// a checkpoint on its own, watchdog or not. `--stall-ms 0` disables
/// both.
fn supervision_flags(
    flags: &HashMap<String, String>,
    config: &mut SearchConfig,
) -> Result<SupervisorConfig, String> {
    let mut sup = SupervisorConfig::default();
    if let Some(r) = flags.get("retries") {
        sup.retry_budget = r.parse().map_err(|_| "bad --retries")?;
    }
    let stall_ms: u64 = match flags.get("stall-ms") {
        Some(t) => t.parse().map_err(|_| "bad --stall-ms")?,
        None => 30_000,
    };
    if stall_ms == 0 {
        sup.stall = None;
        config.stall = None;
    } else {
        sup.stall = Some(std::time::Duration::from_millis(stall_ms));
        config.stall = Some(SimDuration::from_millis(stall_ms));
    }
    Ok(sup)
}

/// Exit-code precedence for supervised (and remote) runs — the *worst*
/// session outcome wins, in this strict order:
///
/// 1. any `abandoned` session ⇒ exit 1 (hard failure),
/// 2. else any `degraded` session ⇒ exit 3 ([`EXIT_DEGRADED`]),
/// 3. else ⇒ exit 0 (`recovered` counts as success: the retries are
///    noted in the report, but the diagnosis itself is whole).
///
/// A report carrying both abandoned and degraded sessions therefore
/// exits 1, never 3: a lost session is strictly worse news than a
/// degraded one, and scripts branch on the code alone.
fn supervision_exit_code(report: &SupervisionReport) -> u8 {
    if report.abandoned() > 0 {
        1
    } else if report.degraded() > 0 {
        EXIT_DEGRADED
    } else {
        0
    }
}

/// Prints a supervision report and maps it to an exit code via the
/// worst-wins precedence of [`supervision_exit_code`].
fn report_supervision(report: &SupervisionReport) -> ExitCode {
    print!("{}", report.render());
    for s in &report.sessions {
        for note in &s.notes {
            eprintln!("  [{}] {note}", s.label);
        }
    }
    ExitCode::from(supervision_exit_code(report))
}

fn cmd_run(flags: HashMap<String, String>) -> Result<ExitCode, String> {
    if let Some(sock) = flags.get("remote") {
        return cmd_run_remote(sock, &flags);
    }
    let app = require(&flags, "app");
    let seed = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed".to_string()))
        .transpose()?;
    let workload = build_workload(app, seed);

    let mut config = SearchConfig {
        window: SimDuration::from_secs(2),
        sample: SimDuration::from_millis(250),
        max_time: SimDuration::from_secs(900),
        ..SearchConfig::default()
    };
    if let Some(w) = flags.get("window") {
        let secs: f64 = w.parse().map_err(|_| "bad --window")?;
        config.window = SimDuration::from_secs_f64(secs);
    }
    if let Some(m) = flags.get("max-time") {
        let secs: f64 = m.parse().map_err(|_| "bad --max-time")?;
        config.max_time = SimDuration::from_secs_f64(secs);
    }
    if let Some(b) = flags.get("audit-budget") {
        config.audit_budget = b.parse().map_err(|_| "bad --audit-budget")?;
    }
    let mut linted_files = false;
    if let Some(path) = flags.get("directives") {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let mtext = match flags.get("mappings") {
            Some(mpath) => Some(std::fs::read_to_string(mpath).map_err(|e| e.to_string())?),
            None => None,
        };
        // Lint the files under their real names before the strict parse,
        // so problems come back with proper spans instead of a bare
        // first-error message.
        let mut linter = histpc::lint::Linter::new().directives(&text, path.clone());
        if let (Some(mtext), Some(mpath)) = (&mtext, flags.get("mappings")) {
            linter = linter.mappings(mtext, mpath.clone());
        }
        let report = linter.run();
        if !report.is_clean() {
            eprint!("{}", report.render(&linter.sources()));
            if let Some(trailer) = histpc::lint::summary(&report.diagnostics) {
                eprintln!("\n{trailer} emitted");
            }
        }
        if report.has_errors() {
            return Err(format!("{path}: directives failed lint"));
        }
        linted_files = true;
        let mut directives = SearchDirectives::parse(&text).map_err(|e| e.to_string())?;
        if let Some(mtext) = &mtext {
            let mappings = MappingSet::parse(mtext).map_err(|e| e.to_string())?;
            directives = mappings.apply_to_directives(&directives);
        }
        eprintln!("loaded {} directives", directives.len());
        config.directives = directives;
    }

    if let Some(path) = flags.get("faults") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        config.faults = FaultPlan::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(knobs) = flags.get("admission") {
        config.collector.admission =
            AdmissionConfig::parse_knobs(knobs).map_err(|e| format!("bad --admission: {e}"))?;
    }
    let resume = match flags.get("resume") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(SearchCheckpoint::parse(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };

    let session = match flags.get("store") {
        Some(dir) => Session::with_store(dir).map_err(|e| e.to_string())?,
        None => Session::new(),
    };
    let label = flags.get("label").cloned().unwrap_or_else(|| "run".into());
    if flags.contains_key("supervised") {
        if resume.is_some() {
            return Err("--resume does not combine with --supervised; \
                        the supervisor manages resumes itself"
                .into());
        }
        let sup = supervision_flags(&flags, &mut config)?;
        let driver = WorkloadSession::new(&session, workload.as_ref(), config, &label);
        let report = Supervisor::new(sup).run(&[&driver as &dyn SessionDriver]);
        return Ok(report_supervision(&report));
    }
    let d = if !config.faults.is_disabled() || resume.is_some() {
        let dd = session
            .diagnose_faulted(workload.as_ref(), &config, &label, resume.as_ref())
            .map_err(|e| e.to_string())?;
        eprintln!(
            "faults: {} sample(s) dropped, {} delayed, {} reordered; \
             {} request(s) failed, {} deferred; {} kill(s) fired",
            dd.stats.dropped,
            dd.stats.delayed,
            dd.stats.reordered,
            dd.stats.requests_failed,
            dd.stats.requests_deferred,
            dd.stats.kills_fired
        );
        if resume.is_some() && !dd.resumed_digest_ok {
            eprintln!("warning: replayed search state did not match the checkpoint digest");
        }
        match dd.diagnosis {
            Some(d) => d,
            None => {
                let ckpt = dd
                    .checkpoint
                    .expect("an interrupted run leaves a checkpoint");
                println!(
                    "diagnosis interrupted by injected tool crash at t = {}",
                    ckpt.at
                );
                if flags.contains_key("store") {
                    println!(
                        "checkpoint stored as {label}.ckpt under the application's \
                         store directory; rerun the same command with --resume FILE"
                    );
                } else {
                    println!("no store attached: rerun with --store to keep the checkpoint");
                }
                return Ok(ExitCode::SUCCESS);
            }
        }
    } else {
        session
            .diagnose(workload.as_ref(), &config, &label)
            .map_err(|e| e.to_string())?
    };
    if !d.lint_warnings.is_empty() && !linted_files {
        let mut sources = histpc::lint::SourceCache::new();
        sources.insert("<search directives>", &config.directives.to_text());
        eprint!("{}", histpc::lint::render_all(&d.lint_warnings, &sources));
    }

    println!(
        "application: {} (version {})",
        d.record.app_name, d.record.app_version
    );
    println!(
        "diagnosis {} at t = {} with {} pairs tested (peak cost {:.1}%)",
        if d.report.quiescent {
            "completed"
        } else {
            "stopped"
        },
        d.report.end_time,
        d.report.pairs_tested,
        d.report.peak_cost * 100.0
    );
    println!("samples delivered through the collector: {}", d.events);
    let unknowns = d
        .report
        .outcomes
        .iter()
        .filter(|o| o.outcome == Outcome::Unknown)
        .count();
    if unknowns > 0 {
        println!("unresolved (Unknown) pairs: {unknowns}");
    }
    let saturated_pairs = d
        .report
        .outcomes
        .iter()
        .filter(|o| o.outcome == Outcome::Saturated)
        .count();
    if saturated_pairs > 0 {
        println!("overloaded (Saturated) pairs: {saturated_pairs}");
    }
    for r in &d.report.unreachable {
        println!("unreachable: {r}");
    }
    for r in &d.report.saturated {
        println!("saturated: {r}");
    }
    let adm = &d.report.admission;
    if adm.admitted > 0 || adm.shed_requests > 0 || adm.shed_samples > 0 {
        println!(
            "admission: {} request(s) admitted (peak {} in flight), {} shed, \
             {} saturated refusal(s); {} sample(s) shed; {} breaker(s) opened, {} readmitted",
            adm.admitted,
            adm.peak_in_flight,
            adm.shed_requests,
            adm.saturated_refusals,
            adm.shed_samples,
            adm.breaker_opens,
            adm.breaker_readmits
        );
    }
    if !d.report.audits.is_empty() {
        let revoked = d.report.revocations();
        println!(
            "shadow audits: {} probe(s), {} pass(es), {} directive(s) revoked",
            d.report.audits.len(),
            d.report.audits.len() - revoked.len(),
            revoked.len()
        );
        for a in &revoked {
            println!(
                "  revoked `{}` from {}@{} (probe observed {:.1}% at t={})",
                a.directive,
                a.source_run,
                a.generation,
                a.observed * 100.0,
                a.at
            );
        }
    }
    println!("bottlenecks found: {}", d.report.bottleneck_count());
    for b in d.report.bottlenecks().iter().take(15) {
        println!(
            "  t={:<9} {:>6.1}%  {}  {}",
            b.first_true_at.map(|t| t.to_string()).unwrap_or_default(),
            b.last_value * 100.0,
            b.hypothesis,
            b.focus
        );
    }
    if flags.contains_key("store") {
        println!("record stored as {}/{}", d.record.app_name, label);
    }
    let unreachables = d
        .report
        .outcomes
        .iter()
        .filter(|o| o.outcome == Outcome::Unreachable)
        .count();
    if unknowns > 0 || saturated_pairs > 0 || unreachables > 0 {
        eprintln!(
            "warning: diagnosis degraded — {unknowns} unknown, {unreachables} unreachable, \
             {saturated_pairs} saturated pair(s); parts of the search space were never \
             honestly measured (exit code {EXIT_DEGRADED})"
        );
        return Ok(ExitCode::from(EXIT_DEGRADED));
    }
    Ok(ExitCode::SUCCESS)
}

/// `histpc run --remote SOCK`: runs the session on a `histpcd` daemon
/// over its Unix socket instead of in-process. The client retries
/// transport failures and `busy`/`quota` refusals with capped
/// exponential backoff (honouring the daemon's retry hints); `start`
/// is idempotent per (tenant, label) so those retries can never
/// double-run a session.
fn cmd_run_remote(sock: &str, flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let app = require(flags, "app");
    let label = flags.get("label").cloned().unwrap_or_else(|| "run".into());
    let tenant = flags.get("tenant").cloned().unwrap_or_else(|| "cli".into());

    let mut req = Request::new("start").arg("app", app).arg("label", &label);
    if let Some(seed) = flags.get("seed") {
        let seed: u64 = seed.parse().map_err(|_| "bad --seed")?;
        req = req.arg("seed", seed);
    }
    if let Some(w) = flags.get("window") {
        let secs: f64 = w.parse().map_err(|_| "bad --window")?;
        req = req.arg("window-ms", (secs * 1000.0) as u64);
    }
    if let Some(m) = flags.get("max-time") {
        let secs: f64 = m.parse().map_err(|_| "bad --max-time")?;
        req = req.arg("max-time-ms", (secs * 1000.0) as u64);
    }
    if let Some(path) = flags.get("faults") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        req = req.arg("faults", text);
    }
    if let Some(b) = flags.get("budget") {
        let b: u64 = b.parse().map_err(|_| "bad --budget")?;
        req = req.arg("budget", b);
    }
    if let Some(from) = flags.get("harvest-from") {
        req = req.arg("harvest-from", from);
    }
    if let Some(b) = flags.get("audit-budget") {
        let b: u32 = b.parse().map_err(|_| "bad --audit-budget")?;
        req = req.arg("audit-budget", b);
    }

    let mut client = Client::new(sock, &tenant);
    let started = client.expect_ok(&req).map_err(|e| e.to_string())?;
    eprintln!(
        "{sock}: session {} {}",
        started.get("id").unwrap_or("?"),
        if started.get("accepted") == Some("1") {
            "accepted"
        } else {
            "already known"
        }
    );
    let done = client
        .expect_ok(
            &Request::new("attach")
                .arg("label", &label)
                .arg("wait-ms", 600_000u64),
        )
        .map_err(|e| e.to_string())?;
    let state = done.get("state").unwrap_or("unknown").to_string();
    if state == "running" {
        return Err(format!(
            "session {tenant}/{label} still running after attach wait"
        ));
    }
    let report = client
        .expect_ok(&Request::new("report").arg("label", &label))
        .map_err(|e| e.to_string())?;
    for line in report.body() {
        println!("{line}");
    }
    let detail = report.get("detail").unwrap_or_default();
    if detail.is_empty() {
        eprintln!("session {tenant}/{label}: {state}");
    } else {
        eprintln!("session {tenant}/{label}: {detail}");
    }
    // Same worst-wins precedence as local supervised runs (this run is
    // the only session in the report).
    Ok(match state.as_str() {
        "completed" | "recovered" => ExitCode::SUCCESS,
        "degraded" => ExitCode::from(EXIT_DEGRADED),
        _ => ExitCode::FAILURE,
    })
}

/// `histpc daemon start|stop|status`: manages a `histpcd` serving one
/// store over a Unix socket. `start` launches the `histpcd` binary that
/// ships next to `histpc` and waits for the socket to appear — by then
/// the daemon has finished lease recovery and is accepting. `stop` is a
/// clean shutdown: in-flight sessions still end classified.
fn cmd_daemon(args: &[String]) -> Result<ExitCode, String> {
    let Some((action, rest)) = args.split_first() else {
        return Err("daemon needs an action: start, stop or status".into());
    };
    let flags = parse_flags(rest);
    match action.as_str() {
        "start" => {
            let store = require(&flags, "store");
            let sock = require(&flags, "socket");
            let exe = std::env::current_exe().map_err(|e| e.to_string())?;
            let histpcd = exe.with_file_name("histpcd");
            if !histpcd.exists() {
                return Err(format!(
                    "{}: histpcd binary not found next to histpc",
                    histpcd.display()
                ));
            }
            let mut cmd = std::process::Command::new(&histpcd);
            cmd.arg("--store").arg(store).arg("--socket").arg(sock);
            for flag in [
                "tenant-slots",
                "tenant-budget",
                "idle-ms",
                "retries",
                "stall-ms",
            ] {
                if let Some(v) = flags.get(flag) {
                    cmd.arg(format!("--{flag}")).arg(v);
                }
            }
            let child = cmd
                .spawn()
                .map_err(|e| format!("spawn {}: {e}", histpcd.display()))?;
            let sock_path = std::path::Path::new(sock);
            for _ in 0..200 {
                if sock_path.exists() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            if !sock_path.exists() {
                return Err(format!("daemon did not bind {sock} within 10s"));
            }
            println!("histpcd started (pid {}) serving {sock}", child.id());
            Ok(ExitCode::SUCCESS)
        }
        "stop" => {
            let sock = require(&flags, "socket");
            let mut client = Client::new(sock, "cli");
            client
                .expect_ok(&Request::new("shutdown"))
                .map_err(|e| e.to_string())?;
            println!("{sock}: shutting down");
            Ok(ExitCode::SUCCESS)
        }
        "status" => {
            let sock = require(&flags, "socket");
            let mut client = Client::new(sock, "cli");
            let health = client
                .expect_ok(&Request::new("health"))
                .map_err(|e| e.to_string())?;
            println!(
                "{sock}: {} (epoch {}, {} active, {} done, {} adopted)",
                health.get("state").unwrap_or("?"),
                health.get("epoch").unwrap_or("?"),
                health.get("active").unwrap_or("?"),
                health.get("done").unwrap_or("?"),
                health.get("adopted").unwrap_or("?"),
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown daemon action {other:?}: want start, stop or status"
        )),
    }
}

/// `histpc supervise`: drives one diagnosis session per listed
/// application concurrently over one shared store, each under the full
/// supervision stack — watchdog, checkpoint auto-resume, degradation
/// ladder — and prints the classified report.
fn cmd_supervise(flags: HashMap<String, String>) -> Result<ExitCode, String> {
    let store_dir = require(&flags, "store");
    let apps: Vec<&str> = require(&flags, "apps")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if apps.is_empty() {
        return Err("--apps wants a comma-separated application list".into());
    }
    let seed = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed".to_string()))
        .transpose()?;

    let mut config = SearchConfig {
        window: SimDuration::from_secs(2),
        sample: SimDuration::from_millis(250),
        max_time: SimDuration::from_secs(900),
        ..SearchConfig::default()
    };
    if let Some(w) = flags.get("window") {
        let secs: f64 = w.parse().map_err(|_| "bad --window")?;
        config.window = SimDuration::from_secs_f64(secs);
    }
    if let Some(m) = flags.get("max-time") {
        let secs: f64 = m.parse().map_err(|_| "bad --max-time")?;
        config.max_time = SimDuration::from_secs_f64(secs);
    }
    if let Some(path) = flags.get("faults") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        config.faults = FaultPlan::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(knobs) = flags.get("admission") {
        config.collector.admission =
            AdmissionConfig::parse_knobs(knobs).map_err(|e| format!("bad --admission: {e}"))?;
    }
    let sup = supervision_flags(&flags, &mut config)?;

    let session = Session::with_store(store_dir).map_err(|e| e.to_string())?;
    let label = flags.get("label").cloned().unwrap_or_else(|| "run".into());
    let workloads: Vec<Box<dyn Workload + Send + Sync>> =
        apps.iter().map(|app| build_workload(app, seed)).collect();
    // Two specs can resolve to the same underlying application (e.g.
    // poisson-a and poisson-b are both "poisson"); those sessions must
    // not share a (app, label) record slot, so suffix their labels with
    // the spec that produced them.
    let mut name_counts: HashMap<String, usize> = HashMap::new();
    for w in &workloads {
        *name_counts.entry(w.app_spec().name).or_insert(0) += 1;
    }
    let labels: Vec<String> = workloads
        .iter()
        .zip(&apps)
        .map(|(w, spec)| {
            if name_counts[&w.app_spec().name] > 1 {
                format!("{label}-{spec}")
            } else {
                label.clone()
            }
        })
        .collect();
    let drivers: Vec<WorkloadSession> = workloads
        .iter()
        .zip(&labels)
        .map(|(w, label)| WorkloadSession::new(&session, w.as_ref(), config.clone(), label))
        .collect();
    let refs: Vec<&dyn SessionDriver> = drivers.iter().map(|d| d as &dyn SessionDriver).collect();
    let report = Supervisor::new(sup).run(&refs);
    Ok(report_supervision(&report))
}

fn cmd_harvest(flags: HashMap<String, String>) -> Result<(), String> {
    let session = Session::with_store(require(&flags, "store")).map_err(|e| e.to_string())?;
    let mode = flags.get("mode").map(String::as_str).unwrap_or("combined");
    // Session::harvest vets the extraction against the corpus: pairs
    // the store both prunes and prioritizes (HL030) are down-ranked.
    let directives = session
        .harvest(
            require(&flags, "app"),
            require(&flags, "label"),
            &extraction_mode(mode),
        )
        .map_err(|e| e.to_string())?;
    // --provenance annotates each line with its `from source@generation`
    // tag; the default stays byte-identical to the classic format so
    // existing directive files and diffs are unaffected.
    let text = if flags.contains_key("provenance") {
        directives.to_annotated_text()
    } else {
        directives.to_text()
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| e.to_string())?;
            eprintln!(
                "wrote {} directives ({} prunes, {} priorities, {} thresholds) to {path}",
                directives.len(),
                directives.prunes.len(),
                directives.priorities.len(),
                directives.thresholds.len()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_map(flags: HashMap<String, String>) -> Result<(), String> {
    let store = ExecutionStore::open(require(&flags, "store")).map_err(|e| e.to_string())?;
    let app = require(&flags, "app");
    let from = store
        .load(app, require(&flags, "from"))
        .map_err(|e| e.to_string())?;
    let to = store
        .load(app, require(&flags, "to"))
        .map_err(|e| e.to_string())?;
    let mappings = MappingSet::suggest(&from.resources, &to.resources);
    let text = mappings.to_text();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| e.to_string())?;
            eprintln!("wrote {} mappings to {path}", mappings.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_compare(flags: HashMap<String, String>) -> Result<(), String> {
    let store = ExecutionStore::open(require(&flags, "store")).map_err(|e| e.to_string())?;
    let app = require(&flags, "app");
    let a = store
        .load(app, require(&flags, "from"))
        .map_err(|e| e.to_string())?;
    let b = store
        .load(app, require(&flags, "to"))
        .map_err(|e| e.to_string())?;
    let mappings = MappingSet::suggest(&a.resources, &b.resources);
    let report = history::compare(&a, &b, Some(&mappings));
    print!("{}", report.render());
    Ok(())
}

/// Runs the application raw (no Performance Consultant) and prints its
/// postmortem performance profile — the data a tuning analyst starts
/// from, and the source of derived thresholds.
fn cmd_profile(flags: HashMap<String, String>) -> Result<(), String> {
    let app = require(&flags, "app");
    let seed = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed".to_string()))
        .transpose()?;
    let secs: f64 = flags
        .get("for")
        .map(|s| s.parse().map_err(|_| "bad --for".to_string()))
        .transpose()?
        .unwrap_or(30.0);
    let workload = build_workload(app, seed);
    let mut engine = workload.build_engine();
    engine.run_until(histpc::sim::SimTime::ZERO + SimDuration::from_secs_f64(secs));
    let pm = PostmortemData::from_totals(engine.app().clone(), engine.totals());
    print!("{}", pm.render_profile());
    Ok(())
}

/// Prints the stored Search History Graph rendering of a run.
fn cmd_shg(flags: HashMap<String, String>) -> Result<(), String> {
    let store = ExecutionStore::open(require(&flags, "store")).map_err(|e| e.to_string())?;
    let text = store
        .load_artifact(require(&flags, "app"), require(&flags, "label"), "shg")
        .map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

fn cmd_ls(flags: HashMap<String, String>) -> Result<(), String> {
    let store_dir = require(&flags, "store");
    let store = ExecutionStore::open(store_dir).map_err(|e| e.to_string())?;
    match flags.get("app") {
        Some(app) => {
            for label in store.labels(app).map_err(|e| e.to_string())? {
                let rec = store.load(app, &label).map_err(|e| e.to_string())?;
                println!(
                    "{label}: version {} — {} outcomes, {} pairs, ended {}",
                    rec.app_version,
                    rec.outcomes.len(),
                    rec.pairs_tested,
                    rec.end_time
                );
            }
        }
        None => {
            for app in store.applications().map_err(|e| e.to_string())? {
                let labels = store.labels(&app).map_err(|e| e.to_string())?;
                println!("{app}: {} run(s) — {}", labels.len(), labels.join(", "));
            }
        }
    }
    // Surface crash debris: checkpoints whose session never completed
    // (lint code HL034) can be resumed or deleted, but should not be
    // silently forgotten.
    let orphans = store.orphaned_checkpoints().map_err(|e| e.to_string())?;
    let wanted = flags.get("app");
    for (app, label) in orphans {
        if wanted.is_some_and(|w| *w != app) {
            continue;
        }
        println!(
            "abandoned checkpoint: {app}/{label}.ckpt — interrupted session, \
             never resumed (resume it or delete the artifact; lint HL034)"
        );
    }
    // Likewise daemon debris: a lease whose session left no checkpoint
    // cannot be re-adopted — a restarting `histpcd` will classify it
    // abandoned (lint code HL035).
    let leases = history::lease::orphaned_leases_at(std::path::Path::new(store_dir))
        .map_err(|e| e.to_string())?;
    for (file, why) in leases {
        println!(
            "orphaned lease: {}/{file} — {why} (a restarting daemon classifies \
             it abandoned; lint HL035)",
            history::lease::LEASE_DIR
        );
    }
    Ok(())
}

/// Statically validates directive/mapping files. Positional arguments
/// are files (kind auto-detected); `--against STORE/APP/LABEL` also
/// cross-checks directive resources against that stored run. Exits
/// non-zero on lint errors, or on warnings under `--deny-warnings`.
fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    let mut files: Vec<String> = Vec::new();
    let mut against: Option<String> = None;
    let mut deny_warnings = false;
    let mut format = "text".to_string();
    let mut last: Option<usize> = None;
    let corpus_mode = args.first().map(String::as_str) == Some("corpus");
    let args = if corpus_mode { &args[1..] } else { args };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny-warnings" => {
                deny_warnings = true;
                i += 1;
            }
            "--against" => {
                let Some(value) = args.get(i + 1) else {
                    return Err("missing value for --against".into());
                };
                against = Some(value.clone());
                i += 2;
            }
            "--format" => {
                let Some(value) = args.get(i + 1) else {
                    return Err("missing value for --format".into());
                };
                if value != "text" && value != "json" {
                    return Err(format!("--format wants text or json, got {value:?}"));
                }
                format = value.clone();
                i += 2;
            }
            "--last" => {
                let Some(value) = args.get(i + 1) else {
                    return Err("missing value for --last".into());
                };
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => last = Some(n),
                    _ => return Err("--last wants a positive number of runs".into()),
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown lint flag {flag:?}"));
            }
            file => {
                files.push(file.to_string());
                i += 1;
            }
        }
    }

    if corpus_mode {
        let [store_dir] = files.as_slice() else {
            return Err("lint corpus wants exactly one store directory".into());
        };
        if against.is_some() {
            return Err("--against only applies to file lints".into());
        }
        return cmd_lint_corpus(store_dir, last, deny_warnings, &format);
    }
    if last.is_some() {
        return Err("--last only applies to `lint corpus`".into());
    }
    if files.is_empty() {
        return Err("lint needs at least one file to check".into());
    }

    let record = match &against {
        Some(spec) => {
            let mut parts = spec.rsplitn(3, '/');
            let label = parts.next();
            let app = parts.next();
            let store_dir = parts.next();
            let (Some(store_dir), Some(app), Some(label)) = (store_dir, app, label) else {
                return Err(format!("--against wants STORE/APP/LABEL, got {spec:?}"));
            };
            let store = ExecutionStore::open(store_dir).map_err(|e| e.to_string())?;
            Some(store.load(app, label).map_err(|e| e.to_string())?)
        }
        None => None,
    };

    let mut linter = histpc::lint::Linter::new();
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        linter = linter.artifact(text, file.clone());
    }
    if let Some(rec) = &record {
        linter = linter.against(rec);
    }
    let report = linter.run();
    if format == "json" {
        print!("{}", histpc::lint::report_to_json(&report));
    } else if !report.is_clean() {
        eprint!("{}", report.render(&linter.sources()));
        if let Some(trailer) = histpc::lint::summary(&report.diagnostics) {
            eprintln!("\n{trailer} emitted");
        }
    }
    let failed = report.has_errors() || (deny_warnings && report.warning_count() > 0);
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `histpc lint corpus STORE`: cross-run analysis of a whole store —
/// directive conflicts (HL030), staleness against the last-N runs
/// (HL031, window set by `--last`), threshold drift (HL032), and
/// prune-dominated directives (HL033). Fact extraction is cached in the
/// store's `FACTS` sidecar, so re-analysis only touches changed
/// records.
fn cmd_lint_corpus(
    store_dir: &str,
    last: Option<usize>,
    deny_warnings: bool,
    format: &str,
) -> Result<ExitCode, String> {
    let store = ExecutionStore::open(store_dir).map_err(|e| e.to_string())?;
    let mut opts = histpc::lint::CorpusOptions::default();
    if let Some(n) = last {
        opts.recent_window = n;
    }
    let analysis = histpc::lint::CorpusAnalyzer::with_options(&store, opts)
        .analyze()
        .map_err(|e| e.to_string())?;
    let report = &analysis.report;
    if format == "json" {
        print!("{}", histpc::lint::report_to_json(report));
    } else if !report.is_clean() {
        // Corpus diagnostics point at store records, not local artifact
        // files; there is no source text to quote under a caret.
        eprint!("{}", report.render(&histpc::lint::SourceCache::new()));
        if let Some(trailer) = histpc::lint::summary(&report.diagnostics) {
            eprintln!("\n{trailer} emitted");
        }
    }
    eprintln!(
        "analyzed {} record(s): {} from fact cache, {} lowered",
        analysis.records, analysis.cache_hits, analysis.cache_misses
    );
    let failed = report.has_errors() || (deny_warnings && report.warning_count() > 0);
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Maintains a history store: `fsck` (read-only check), `repair`
/// (recover + salvage/quarantine), `compact` (reindex + reset journal),
/// `migrate` (upgrade a v0 store in place). Exits non-zero when `fsck`
/// finds errors — or any warning under `--deny-warnings`.
fn cmd_store(args: &[String]) -> Result<ExitCode, String> {
    let Some((action, rest)) = args.split_first() else {
        return Err("store needs an action: fsck, repair, compact, migrate or trust".into());
    };
    let mut store_dir: Option<String> = None;
    let mut deny_warnings = false;
    let mut format = "text".to_string();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--deny-warnings" => {
                deny_warnings = true;
                i += 1;
            }
            "--store" => {
                let Some(value) = rest.get(i + 1) else {
                    return Err("missing value for --store".into());
                };
                store_dir = Some(value.clone());
                i += 2;
            }
            "--format" => {
                let Some(value) = rest.get(i + 1) else {
                    return Err("missing value for --format".into());
                };
                format = value.clone();
                i += 2;
            }
            other => return Err(format!("unknown store argument {other:?}")),
        }
    }
    let Some(store_dir) = store_dir else {
        return Err("store needs --store DIR".into());
    };
    if format != "text" && format != "json" {
        return Err(format!("unknown --format {format:?}: want text or json"));
    }

    match action.as_str() {
        "fsck" => {
            // Read-only: check the directory as it is, without the
            // recovery that ExecutionStore::open would perform.
            let diags = history::fsck::fsck(std::path::Path::new(&store_dir));
            if diags.is_empty() {
                println!("{store_dir}: clean");
                return Ok(ExitCode::SUCCESS);
            }
            eprint!(
                "{}",
                histpc::lint::render_all(&diags, &histpc::lint::SourceCache::new())
            );
            if let Some(trailer) = histpc::lint::summary(&diags) {
                eprintln!("\n{trailer} emitted");
            }
            let has_errors = diags.iter().any(|d| d.is_error());
            // Notes (e.g. "skipped: sidecar") are informational and
            // never fail the check, even under --deny-warnings.
            let has_warnings = diags
                .iter()
                .any(|d| d.severity == histpc::lint::Severity::Warning);
            Ok(if has_errors || (deny_warnings && has_warnings) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "repair" => {
            // Opening the store already performs crash recovery, so count
            // the findings first or the work would be reported as zero.
            let findings = history::fsck::fsck(std::path::Path::new(&store_dir)).len();
            let store = ExecutionStore::open(&store_dir).map_err(|e| e.to_string())?;
            let notes = store.repair().map_err(|e| e.to_string())?;
            for note in &notes {
                println!("{note}");
            }
            println!(
                "{store_dir}: repaired ({findings} finding(s) addressed, {} further action(s))",
                notes.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "compact" => {
            let store = ExecutionStore::open(&store_dir).map_err(|e| e.to_string())?;
            let notes = store.compact().map_err(|e| e.to_string())?;
            for note in &notes {
                println!("{note}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "migrate" => {
            let store = ExecutionStore::open(&store_dir).map_err(|e| e.to_string())?;
            let n = store.migrate().map_err(|e| e.to_string())?;
            println!("{store_dir}: migrated {n} record(s) to the v1 framed layout");
            Ok(ExitCode::SUCCESS)
        }
        "trust" => {
            let ledger = history::trust::TrustLedger::load(std::path::Path::new(&store_dir));
            if format == "json" {
                // The same `histpc-lint-report/v1` JSON envelope the lint
                // commands emit: quarantined sources as HL036 warnings,
                // pinned revocations as HL037 warnings, everything else
                // as notes — one stable schema for all machine readers.
                let mut diags = Vec::new();
                for (source, e) in ledger.sources() {
                    let verdict = ledger.verdict(source);
                    let summary = format!(
                        "trust {}/{} for {source}: {} audit(s) passed, {} failed, \
                         {} conflict(s) charged",
                        e.score,
                        history::trust::FULL_SCORE,
                        e.audits_passed,
                        e.audits_failed,
                        e.conflicts.len()
                    );
                    diags.push(match verdict {
                        history::trust::TrustVerdict::Quarantined => {
                            histpc::lint::Diagnostic::warning(
                                "HL036",
                                format!("{summary} — quarantined, directives withheld"),
                            )
                        }
                        history::trust::TrustVerdict::Downweighted => {
                            histpc::lint::Diagnostic::note(
                                "HL036",
                                format!("{summary} — down-weighted, prunes/thresholds dropped"),
                            )
                        }
                        history::trust::TrustVerdict::Trusted => {
                            histpc::lint::Diagnostic::note("HL036", summary)
                        }
                    });
                    for line in &e.revoked {
                        diags.push(histpc::lint::Diagnostic::warning(
                            "HL037",
                            format!("revoked for {source}: `{line}` (failed its shadow audit)"),
                        ));
                    }
                }
                // Ledger iteration is BTreeMap-ordered, so the report
                // is already deterministic.
                let report = histpc::lint::LintReport { diagnostics: diags };
                print!("{}", histpc::lint::report_to_json(&report));
                return Ok(ExitCode::SUCCESS);
            }
            if ledger.is_empty() {
                println!("{store_dir}: no trust entries (every source at full trust)");
                return Ok(ExitCode::SUCCESS);
            }
            println!(
                "{:<40} {:>5}  {:<12} {:>6} {:>6} {:>9} {:>7}",
                "source", "score", "verdict", "passed", "failed", "conflicts", "revoked"
            );
            for (source, e) in ledger.sources() {
                let verdict = match ledger.verdict(source) {
                    history::trust::TrustVerdict::Trusted => "trusted",
                    history::trust::TrustVerdict::Downweighted => "down-weighted",
                    history::trust::TrustVerdict::Quarantined => "quarantined",
                };
                println!(
                    "{source:<40} {:>5}  {verdict:<12} {:>6} {:>6} {:>9} {:>7}",
                    e.score,
                    e.audits_passed,
                    e.audits_failed,
                    e.conflicts.len(),
                    e.revoked.len()
                );
                for line in &e.revoked {
                    println!("  revoked: {line}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown store action {other:?}: want fsck, repair, compact, migrate or trust"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    if command == "lint" {
        return match cmd_lint(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "store" {
        return match cmd_store(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "run" {
        return match cmd_run(parse_flags(&args[1..])) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "daemon" {
        return match cmd_daemon(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "supervise" {
        return match cmd_supervise(parse_flags(&args[1..])) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = parse_flags(&args[1..]);
    let result = match command.as_str() {
        "harvest" => cmd_harvest(flags),
        "map" => cmd_map(flags),
        "compare" => cmd_compare(flags),
        "profile" => cmd_profile(flags),
        "shg" => cmd_shg(flags),
        "ls" => cmd_ls(flags),
        _ => usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc::supervise::{Outcome as SupOutcome, Rung, SessionReport};

    fn session(label: &str, outcome: SupOutcome) -> SessionReport {
        SessionReport {
            label: label.into(),
            outcome,
            attempts: 1,
            resumes: 0,
            watchdog_barks: 0,
            notes: Vec::new(),
        }
    }

    /// The exit-code precedence is worst-wins: a report with both an
    /// abandoned and a degraded session exits 1 (hard failure), never
    /// 3 — and recovered sessions alone still exit 0.
    #[test]
    fn supervision_exit_codes_are_worst_wins() {
        let ok = SupervisionReport {
            sessions: vec![
                session("a", SupOutcome::Completed),
                session("b", SupOutcome::Recovered { retries: 2 }),
            ],
        };
        assert_eq!(supervision_exit_code(&ok), 0);

        let degraded = SupervisionReport {
            sessions: vec![
                session("a", SupOutcome::Completed),
                session(
                    "b",
                    SupOutcome::Degraded {
                        rung: Rung::HistoryOnly,
                    },
                ),
            ],
        };
        assert_eq!(supervision_exit_code(&degraded), EXIT_DEGRADED);

        let abandoned = SupervisionReport {
            sessions: vec![session(
                "a",
                SupOutcome::Abandoned {
                    reason: "gone".into(),
                },
            )],
        };
        assert_eq!(supervision_exit_code(&abandoned), 1);

        // Mixed: abandoned outranks degraded.
        let mixed = SupervisionReport {
            sessions: vec![
                session(
                    "a",
                    SupOutcome::Degraded {
                        rung: Rung::TopLevelOnly,
                    },
                ),
                session(
                    "b",
                    SupOutcome::Abandoned {
                        reason: "gone".into(),
                    },
                ),
            ],
        };
        assert_eq!(supervision_exit_code(&mixed), 1);
    }
}
