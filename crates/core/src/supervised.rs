//! Supervised workload sessions: the glue between [`Session`] and the
//! [`histpc_supervise`] policy engine.
//!
//! [`WorkloadSession`] implements [`SessionDriver`] for a real workload
//! plus its search config and label, so a [`Supervisor`] can drive any
//! number of them concurrently over one shared store:
//!
//! * attempts run through [`Session::diagnose_faulted`], with the
//!   supervisor's heartbeat/cancel hooks wired into the drive loop;
//! * checkpoints round-trip as `histpc-ckpt v1` text, both inline (from
//!   a halted attempt) and persisted (the store's `ckpt` artifact);
//! * the degradation ladder maps onto the search config: tightened
//!   admission control, then top-level-only instrumentation, then a
//!   history-only [prognosis](WorkloadSession::prognose) computed from
//!   the application's stored runs without instrumenting anything.
//!
//! ```
//! use histpc::prelude::*;
//! use histpc::supervise::SessionDriver;
//!
//! let workload = SyntheticWorkload::balanced(2, 1, 0.5).with_hotspot(0, 0, 1.0);
//! let config = SearchConfig {
//!     window: SimDuration::from_millis(800),
//!     sample: SimDuration::from_millis(100),
//!     ..SearchConfig::default()
//! };
//! let session = Session::new();
//! let driver = WorkloadSession::new(&session, &workload, config, "run-1");
//! let report = Supervisor::new(SupervisorConfig::default()).run(&[&driver]);
//! assert_eq!(report.completed(), 1);
//! ```

use crate::session::Session;
use histpc_consultant::{DriveHooks, HaltReason, Outcome, SearchCheckpoint, SearchConfig};
use histpc_history::store::StoreError;
use histpc_sim::workloads::Workload;
use histpc_supervise::{Attempt, Halt, Hooks, Mode, SessionDriver};
use std::collections::BTreeMap;

/// How many of the application's most recent stored runs feed the
/// history-only prognosis.
const PROGNOSIS_WINDOW: usize = 10;

/// One supervisable diagnosis session: a workload, its search config,
/// and the label its artifacts live under.
pub struct WorkloadSession<'a> {
    session: &'a Session,
    workload: &'a (dyn Workload + Sync),
    config: SearchConfig,
    label: String,
    app: String,
    /// `app/label`, the name supervision reports address this session
    /// by — unambiguous when many apps share one store label.
    display: String,
}

impl std::fmt::Debug for WorkloadSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSession")
            .field("app", &self.app)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl<'a> WorkloadSession<'a> {
    /// A driver running `workload` under `config`, labelled `label`,
    /// persisting through `session`'s store (if it has one).
    pub fn new(
        session: &'a Session,
        workload: &'a (dyn Workload + Sync),
        config: SearchConfig,
        label: impl Into<String>,
    ) -> WorkloadSession<'a> {
        let app = workload.app_spec().name;
        let label = label.into();
        let display = format!("{app}/{label}");
        WorkloadSession {
            session,
            workload,
            config,
            label,
            app,
            display,
        }
    }

    /// The application name this session diagnoses.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The config an attempt under `mode` actually runs with: the
    /// session's own config with the supervisor's hooks installed and
    /// the ladder rung's restrictions applied.
    fn config_for(&self, mode: Mode, hooks: &Hooks) -> SearchConfig {
        let mut cfg = self.config.clone();
        cfg.hooks = DriveHooks {
            heartbeat: Some(hooks.heartbeat.clone()),
            cancel: Some(hooks.cancel.clone()),
        };
        match mode {
            Mode::Normal => {}
            Mode::TightenedAdmission | Mode::TopLevelOnly => {
                // Tighten admission control to half its configured
                // bounds (enabling it if it was off) so the load that
                // wedged the normal attempts is shed at the door.
                let adm = &mut cfg.collector.admission;
                adm.enabled = true;
                adm.max_in_flight = (adm.max_in_flight / 2).max(1);
                adm.sample_budget = (adm.sample_budget / 2).max(64);
                if mode == Mode::TopLevelOnly {
                    cfg.top_level_only = true;
                }
            }
        }
        cfg
    }
}

impl SessionDriver for WorkloadSession<'_> {
    // The supervisor-facing label is the qualified `app/label` display
    // name, not the bare store label.
    #[allow(clippy::misnamed_getters)]
    fn label(&self) -> &str {
        &self.display
    }

    fn attempt(&self, mode: Mode, resume_from: Option<&str>, hooks: &Hooks) -> Attempt {
        let resume = match resume_from.map(SearchCheckpoint::parse) {
            Some(Ok(ckpt)) => Some(ckpt),
            Some(Err(e)) => {
                return Attempt::Failed {
                    error: format!("unusable checkpoint: {e}"),
                }
            }
            None => None,
        };
        let cfg = self.config_for(mode, hooks);
        match self
            .session
            .diagnose_faulted(self.workload, &cfg, &self.label, resume.as_ref())
        {
            Ok(run) => match run.halted {
                None => Attempt::Done {
                    digest_ok: run.resumed_digest_ok,
                },
                Some(reason) => Attempt::Halted {
                    checkpoint: run.checkpoint.map(|c| c.to_text()),
                    reason: match reason {
                        HaltReason::Crash => Halt::Crash,
                        HaltReason::Stall => Halt::Stall,
                        HaltReason::Cancelled => Halt::Cancelled,
                    },
                },
            },
            Err(crate::session::SessionError::Store(StoreError::Locked { .. })) => {
                Attempt::Contended
            }
            Err(e) => Attempt::Failed {
                error: e.to_string(),
            },
        }
    }

    fn load_checkpoint(&self) -> Option<String> {
        self.session
            .store()?
            .load_artifact(&self.app, &self.label, "ckpt")
            .ok()
    }

    /// The last ladder rung: a prognosis derived purely from the
    /// application's stored history — which bottlenecks past runs
    /// concluded, how often, and at what magnitude — with no
    /// instrumentation at all. Persisted as a `prognosis` artifact
    /// under the session's label (best effort: a locked store does not
    /// fail the rung).
    fn prognose(&self) -> Result<String, String> {
        let store = self
            .session
            .store()
            .ok_or_else(|| "no store attached".to_string())?;
        let labels = store.labels(&self.app).map_err(|e| e.to_string())?;
        let recent = labels.iter().rev().take(PROGNOSIS_WINDOW).rev();
        let mut runs = 0usize;
        let mut seen: BTreeMap<(String, String), (usize, f64)> = BTreeMap::new();
        for label in recent {
            let Ok(rec) = store.load(&self.app, label) else {
                continue;
            };
            runs += 1;
            for o in rec.outcomes.iter().filter(|o| o.outcome == Outcome::True) {
                let entry = seen
                    .entry((o.hypothesis.clone(), o.focus.to_string()))
                    .or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += o.last_value;
            }
        }
        if runs == 0 {
            return Err(format!("no stored history for application {}", self.app));
        }
        let mut text = format!("histpc-prognosis v1\napp {}\nruns {runs}\n", self.app);
        for ((hyp, focus), (count, sum)) in &seen {
            text.push_str(&format!(
                "bottleneck {hyp} {focus} seen {count}/{runs} mean {:.4}\n",
                sum / *count as f64
            ));
        }
        let _ = store.save_artifact(&self.app, &self.label, "prognosis", &text);
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_sim::workloads::SyntheticWorkload;
    use histpc_sim::{SimDuration, SimTime};
    use histpc_supervise::{Outcome as SupOutcome, Rung, Supervisor, SupervisorConfig};

    fn fast_config() -> SearchConfig {
        SearchConfig {
            window: SimDuration::from_millis(800),
            sample: SimDuration::from_millis(100),
            max_time: SimDuration::from_secs(120),
            ..SearchConfig::default()
        }
    }

    fn quick_supervisor() -> Supervisor {
        Supervisor::new(SupervisorConfig {
            backoff_base: std::time::Duration::from_micros(200),
            backoff_cap: std::time::Duration::from_millis(2),
            stall: None,
            ..SupervisorConfig::default()
        })
    }

    #[test]
    fn clean_session_completes_and_matches_bare_diagnosis() {
        let dir = std::env::temp_dir().join(format!("histpc-supglue-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);

        let driver = WorkloadSession::new(&session, &wl, fast_config(), "sup");
        let report = quick_supervisor().run(&[&driver]);
        assert_eq!(report.sessions[0].outcome, SupOutcome::Completed);

        // Zero-fault supervised run produces the identical record a bare
        // Session::diagnose would have.
        let bare = Session::new().diagnose(&wl, &fast_config(), "sup").unwrap();
        let stored = session.store().unwrap().load("synth", "sup").unwrap();
        assert_eq!(
            histpc_history::format::write_record(&stored),
            histpc_history::format::write_record(&bare.record),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_recovers_through_the_persisted_checkpoint() {
        let dir = std::env::temp_dir().join(format!("histpc-suprec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(0, 1, 2.0);
        let mut config = fast_config();
        config.faults.tool_crash_at = Some(SimTime::from_micros(1_000_000));

        let driver = WorkloadSession::new(&session, &wl, config, "rec");
        let report = quick_supervisor().run(&[&driver]);
        assert_eq!(
            report.sessions[0].outcome,
            SupOutcome::Recovered { retries: 1 },
            "notes: {:?}",
            report.sessions[0].notes
        );
        // The recovered run superseded its checkpoint artifact.
        assert!(session
            .store()
            .unwrap()
            .orphaned_checkpoints()
            .unwrap()
            .is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_drive_loop_degrades_down_the_ladder() {
        let dir = std::env::temp_dir().join(format!("histpc-supstall-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 1, 0.5).with_hotspot(0, 0, 1.0);
        // Seed history so the last rung has something to prognose from.
        session.diagnose(&wl, &fast_config(), "seed").unwrap();

        // Every sample dropped and a data timeout past max_time: the
        // search can never progress nor conclude, under any rung — only
        // the in-loop stall detector ends each attempt.
        let mut config = fast_config();
        config.faults.drop_rate = 1.0;
        config.faults.seed = 9;
        config.data_timeout = SimDuration::from_secs(600);
        config.max_time = SimDuration::from_secs(300);
        config.stall = Some(SimDuration::from_secs(2));

        let driver = WorkloadSession::new(&session, &wl, config, "stuck");
        let report = quick_supervisor().run(&[&driver]);
        assert_eq!(
            report.sessions[0].outcome,
            SupOutcome::Degraded {
                rung: Rung::HistoryOnly
            },
            "notes: {:?}",
            report.sessions[0].notes
        );
        // The prognosis artifact landed, derived from the seed run.
        let text = session
            .store()
            .unwrap()
            .load_artifact("synth", "stuck", "prognosis")
            .unwrap();
        assert!(text.starts_with("histpc-prognosis v1\n"), "{text}");
        assert!(text.contains("bottleneck "), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prognosis_without_history_abandons() {
        let dir = std::env::temp_dir().join(format!("histpc-supnohist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::with_store(&dir).unwrap();
        let wl = SyntheticWorkload::balanced(2, 1, 0.5).with_hotspot(0, 0, 1.0);
        let mut config = fast_config();
        config.faults.drop_rate = 1.0;
        config.faults.seed = 9;
        config.data_timeout = SimDuration::from_secs(600);
        config.max_time = SimDuration::from_secs(300);
        config.stall = Some(SimDuration::from_secs(2));

        let driver = WorkloadSession::new(&session, &wl, config, "doomed");
        let report = quick_supervisor().run(&[&driver]);
        assert!(
            matches!(
                &report.sessions[0].outcome,
                SupOutcome::Abandoned { reason } if reason.contains("no stored history")
            ),
            "outcome: {:?}",
            report.sessions[0].outcome
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
