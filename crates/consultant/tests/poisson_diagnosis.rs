//! Integration: full online diagnosis of the Poisson application.

use histpc_consultant::{drive_diagnosis, SearchConfig};
use histpc_sim::workloads::{PoissonVersion, PoissonWorkload, Workload};
use histpc_sim::SimDuration;

#[test]
fn base_diagnosis_of_poisson_c_finds_sync_bottlenecks() {
    let wl = PoissonWorkload::new(PoissonVersion::C);
    let mut engine = wl.build_engine();
    let config = SearchConfig {
        window: SimDuration::from_secs(2),
        sample: SimDuration::from_millis(250),
        max_time: SimDuration::from_secs(900),
        ..SearchConfig::default()
    };
    let t0 = std::time::Instant::now();
    let report = drive_diagnosis(&mut engine, &config);
    let wall = t0.elapsed();
    eprintln!(
        "poisson C base: {} bottlenecks, {} pairs, end {}, peak cost {:.3}, quiescent {}, wall {:?}",
        report.bottleneck_count(),
        report.pairs_tested,
        report.end_time,
        report.peak_cost,
        report.quiescent,
        wall
    );
    for b in report.bottlenecks().iter().take(40) {
        eprintln!(
            "  {} {} @ {} ({:.1}%)",
            b.hypothesis,
            b.focus,
            b.first_true_at.unwrap(),
            b.last_value * 100.0
        );
    }
    assert!(report.bottleneck_count() >= 5, "too few bottlenecks");
    // The dominant problem is synchronization waiting.
    assert!(report
        .bottleneck_set()
        .iter()
        .any(|(h, f)| h == "ExcessiveSyncWaitingTime" && f.is_whole_program()));
    // exchng2 must be identified.
    assert!(
        report.bottleneck_set().iter().any(|(h, f)| {
            h == "ExcessiveSyncWaitingTime"
                && f.selection("Code")
                    .is_some_and(|s| s.to_string() == "/Code/exchng2.f/exchng2")
        }),
        "exchng2 not identified"
    );
}
