//! The Performance Consultant search engine.
//!
//! The search proceeds exactly as described in paper §2, with the §3
//! directive extensions:
//!
//! 1. The root `(TopLevelHypothesis : WholeProgram)` expands into the base
//!    hypotheses for the whole program. High-priority directive pairs are
//!    instrumented immediately and persistently.
//! 2. Each tested node needs a full observation window of data; its
//!    metric value, normalized to a fraction of execution time under the
//!    focus, is compared against the hypothesis threshold (directives can
//!    override thresholds per hypothesis).
//! 3. True nodes are refined along the hypothesis axis and the focus axis;
//!    false nodes are not refined and their instrumentation is deleted.
//! 4. Expansion is throttled by the instrumentation cost model: it halts
//!    at the critical cost threshold and resumes after deletions.
//! 5. Pruned (hypothesis, focus) pairs are recorded but never
//!    instrumented; Low-priority pairs sort behind their Medium siblings.

use crate::directive::{
    PriorityDirective, PriorityLevel, Provenance, PruneTarget, SearchDirectives,
};
use crate::hypothesis::{HypothesisId, HypothesisTree};
use crate::report::{AuditOutcome, DiagnosisReport, NodeOutcome, Outcome};
use crate::shg::{NodeState, Shg, ShgNodeId};
use histpc_faults::{FaultInjector, FaultPlan, FaultStats, KillTarget, RequestFault};
use histpc_instr::{AdmitOutcome, Collector, CollectorConfig, RequestClass, SampleBatch};
use histpc_resources::{Focus, ResourceName, CODE, MACHINE, PROCESS, SYNC_OBJECT};
use histpc_sim::{Engine, EngineStatus, ProcId, SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;

/// Configuration of one diagnosis session.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Search directives (empty = the unmodified Performance Consultant).
    pub directives: SearchDirectives,
    /// Observation window needed to conclude a hypothesis ("each
    /// conclusion ... is determined once a set time interval of data has
    /// been received", paper §4.1).
    pub window: SimDuration,
    /// Driver sampling step.
    pub sample: SimDuration,
    /// Give up after this much application time.
    pub max_time: SimDuration,
    /// Keep the session open for the whole program run (until `max_time`
    /// or program exit) even after the search quiesces, so persistent
    /// High-priority pairs keep testing — the paper's "testing continues
    /// throughout the entire program run". Off by default: most sessions
    /// end when the search has nothing left to do.
    pub run_full_program: bool,
    /// Instrumentation layer configuration.
    pub collector: CollectorConfig,
    /// Faults to inject (the empty plan = a perfectly healthy daemon
    /// layer; [`drive_diagnosis_faulted`] then takes the exact healthy
    /// code path, guaranteeing bit-identical results).
    pub faults: FaultPlan,
    /// How long an experiment may go without fresh data from any of its
    /// processes before it concludes [`Outcome::Unknown`].
    pub data_timeout: SimDuration,
    /// First retry delay after a failed instrumentation request.
    pub retry_base: SimDuration,
    /// Cap on the exponential retry backoff.
    pub retry_cap: SimDuration,
    /// Give up on a request (conclude Unknown) after this many failures.
    pub retry_max_attempts: u32,
    /// Watchdog stall deadline in *application* time: when the faulted
    /// driver sees no observable search progress (digest change) for
    /// this long, it cancels the session at a checkpoint instead of
    /// spinning until `max_time`. `None` disables stall detection.
    pub stall: Option<SimDuration>,
    /// Restrict instrumentation to the top-level hypotheses at the
    /// whole-program focus: no refinement along either axis. The
    /// cheapest search that still concludes something — the second rung
    /// of a supervisor's degradation ladder.
    pub top_level_only: bool,
    /// Heartbeat/cancellation hooks a supervisor can attach to observe
    /// and interrupt the drive loop. The defaults are inert.
    pub hooks: DriveHooks,
    /// Shadow-audit budget: how many history-pruned subtrees,
    /// history-lowered pairs, and raised thresholds get probe
    /// instrumentation anyway, so lying directives can be caught and
    /// **revoked** mid-search. Audit probes ride the admission layer's
    /// reserved `Backing` class, so they cannot be shed by the same
    /// overload that history mispredicts. 0 (the default) disables
    /// auditing entirely and keeps runs bit-identical to pre-audit
    /// baselines.
    pub audit_budget: u32,
}

/// Heartbeat and cancellation hooks into the drive loops.
///
/// A supervisor hands the same hooks to a session and its watchdog: the
/// drive loop stores the current application time into `heartbeat`
/// every tick, and checks `cancel` at every tick boundary — a set flag
/// makes [`drive_diagnosis_faulted`] stop at a [`SearchCheckpoint`]
/// exactly as an injected crash would. Both hooks are optional and the
/// disarmed default costs nothing on the healthy path.
#[derive(Debug, Clone, Default)]
pub struct DriveHooks {
    /// Written every tick with the tick's application time in µs.
    pub heartbeat: Option<std::sync::Arc<std::sync::atomic::AtomicU64>>,
    /// When set, the faulted driver returns at the next tick boundary
    /// with a checkpoint (`HaltReason::Cancelled`).
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl DriveHooks {
    fn beat(&self, now: SimTime) {
        if let Some(hb) = &self.heartbeat {
            hb.store(now.as_micros(), std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    }
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            directives: SearchDirectives::none(),
            window: SimDuration::from_secs(5),
            sample: SimDuration::from_millis(500),
            max_time: SimDuration::from_secs(3600),
            run_full_program: false,
            collector: CollectorConfig::default(),
            faults: FaultPlan::none(),
            data_timeout: SimDuration::from_secs(10),
            retry_base: SimDuration::from_millis(500),
            retry_cap: SimDuration::from_secs(8),
            retry_max_attempts: 6,
            stall: None,
            top_level_only: false,
            hooks: DriveHooks::default(),
            audit_budget: 0,
        }
    }
}

impl SearchConfig {
    /// Replaces the directive set.
    pub fn with_directives(mut self, d: SearchDirectives) -> SearchConfig {
        self.directives = d;
        self
    }
}

fn window_start(now: SimTime, window: SimDuration) -> SimTime {
    SimTime(now.as_micros().saturating_sub(window.as_micros()))
}

/// The directive a shadow-audit probe holds accountable: its canonical
/// line (the revocation key) and the provenance naming the source run
/// that will answer for a contradiction.
#[derive(Debug, Clone)]
struct AuditTag {
    line: String,
    provenance: Provenance,
    /// Best fraction observed under a raised-threshold audit that has
    /// not tripped — what an untripped audit reports as its evidence.
    max_seen: f64,
}

/// The online Performance Consultant.
pub struct Consultant {
    tree: HypothesisTree,
    directives: SearchDirectives,
    window: SimDuration,
    shg: Shg,
    pending: Vec<ShgNodeId>,
    halted: bool,
    peak_cost: f64,
    quiesced_at: Option<SimTime>,
    /// Degradation policy; only consulted from [`Consultant::tick_faulted`].
    data_timeout: SimDuration,
    retry_base: SimDuration,
    retry_cap: SimDuration,
    retry_max_attempts: u32,
    /// Per-node failed-request bookkeeping: (attempts so far, earliest
    /// next retry). Looked up by id only, never iterated, so it cannot
    /// perturb determinism.
    retry: HashMap<ShgNodeId, (u32, SimTime)>,
    /// Processes killed by fault injection.
    dead_procs: Vec<ProcId>,
    /// Resource names of everything that died, for the report.
    unreachable: Vec<ResourceName>,
    /// Backpressure: while the admission controller reports pressure,
    /// refinement fan-out is cut to one probe per tick (persistent/High
    /// pairs keep the full pool), resuming once the pressure drains —
    /// the overload mirror of the cost model's halt/resume hysteresis.
    throttled: bool,
    /// Resource names whose admission breaker opened, for the report.
    saturated: Vec<ResourceName>,
    /// When set, [`Consultant::refine`] is a no-op: the search stays on
    /// the top-level hypotheses at the whole-program focus.
    top_level_only: bool,
    /// Shadow-audit slots available (0 = auditing off; the audit maps
    /// below then stay empty and every audit branch is dead code).
    audit_budget: u32,
    /// Shadow-audit slots consumed so far.
    audits_assigned: u32,
    /// Probe nodes standing in for history-pruned pairs: if one tests
    /// True, its prune lied and is revoked.
    prune_audits: HashMap<ShgNodeId, AuditTag>,
    /// Probe nodes promoted from history-lowered priority: if one tests
    /// True, the "unimportant" claim lied and is revoked.
    low_audits: HashMap<ShgNodeId, AuditTag>,
    /// Canonical lines of every pair prune ever armed as a probe.
    /// Pair prunes whose line is absent keep a budget slot reserved
    /// (see [`Consultant::reserved_prune_slots`]) so the unbounded
    /// lowered-pair class cannot starve them.
    probed_prune_lines: std::collections::HashSet<String>,
    /// Raised-threshold watches, one per suspect hypothesis: a False
    /// conclusion whose value clears the *default* threshold convicts
    /// the raise. Vec (not map) for deterministic report ordering.
    threshold_audits: Vec<(HypothesisId, AuditTag)>,
    /// Concluded audits, in conclusion order.
    audit_outcomes: Vec<AuditOutcome>,
    /// Failed audits per source run this session, feeding the
    /// wholesale-distrust escalation ([`SOURCE_REVOCATION_FAILURES`]).
    audit_failures: HashMap<String, u32>,
    /// Source runs already revoked wholesale this session.
    revoked_sources: Vec<String>,
}

/// Once a single session has caught this many of a source run's
/// directives lying, the session stops auditing the source one
/// directive at a time and revokes everything it contributed: each
/// audit costs a probe's conclusion window, and a source with three
/// independent convictions has forfeited the benefit of the doubt for
/// the rest of its guidance.
pub const SOURCE_REVOCATION_FAILURES: u32 = 3;

impl Consultant {
    /// Creates a consultant and performs the initial expansion: the SHG
    /// root, its base-hypothesis children, and the High-priority seeds.
    pub fn new(
        tree: HypothesisTree,
        directives: SearchDirectives,
        window: SimDuration,
        collector: &Collector,
    ) -> Consultant {
        let mut shg = Shg::new();
        let whole = collector.space().whole_program();
        let (root, _) = shg.add(
            tree.root(),
            whole.clone(),
            NodeState::True,
            PriorityLevel::Medium,
            false,
            None,
            SimTime::ZERO,
        );
        shg.node_mut(root).first_true_at = Some(SimTime::ZERO);
        shg.node_mut(root).concluded_at = Some(SimTime::ZERO);

        let defaults = SearchConfig::default();
        let mut c = Consultant {
            tree,
            directives,
            window,
            shg,
            pending: Vec::new(),
            halted: false,
            peak_cost: 0.0,
            quiesced_at: None,
            data_timeout: defaults.data_timeout,
            retry_base: defaults.retry_base,
            retry_cap: defaults.retry_cap,
            retry_max_attempts: defaults.retry_max_attempts,
            retry: HashMap::new(),
            dead_procs: Vec::new(),
            unreachable: Vec::new(),
            throttled: false,
            saturated: Vec::new(),
            top_level_only: false,
            audit_budget: 0,
            audits_assigned: 0,
            prune_audits: HashMap::new(),
            low_audits: HashMap::new(),
            probed_prune_lines: std::collections::HashSet::new(),
            threshold_audits: Vec::new(),
            audit_outcomes: Vec::new(),
            audit_failures: HashMap::new(),
            revoked_sources: Vec::new(),
        };

        // Base hypotheses for the whole program.
        for h in c.tree.children(c.tree.root()) {
            c.create_child(h, whole.clone(), Some(root), SimTime::ZERO);
        }

        // High-priority seeds: instrumented at search start, persistent.
        for p in c
            .directives
            .high_priority_pairs()
            .cloned()
            .collect::<Vec<_>>()
        {
            let Some(h) = c.tree.by_name(&p.hypothesis) else {
                continue; // stale directive for an unknown hypothesis
            };
            // Attach under the base node of the same hypothesis if the
            // focus is a refinement; the base node itself just becomes
            // persistent.
            if let Some(id) = c.shg.find(h, &p.focus) {
                c.shg.node_mut(id).persistent = true;
                c.shg.node_mut(id).priority = PriorityLevel::High;
            } else if !c.directives.is_pruned(&p.hypothesis, &p.focus) {
                let parent = c.shg.find(h, &whole);
                let (id, created) = c.shg.add(
                    h,
                    p.focus.clone(),
                    NodeState::Pending,
                    PriorityLevel::High,
                    true,
                    parent,
                    SimTime::ZERO,
                );
                if created {
                    c.pending.push(id);
                }
            }
        }
        c
    }

    /// The search history graph.
    pub fn shg(&self) -> &Shg {
        &self.shg
    }

    /// The hypothesis tree.
    pub fn tree(&self) -> &HypothesisTree {
        &self.tree
    }

    /// True once the search has no pending or testing nodes left.
    pub fn is_quiescent(&self) -> bool {
        self.quiesced_at.is_some()
    }

    /// Adopts the degradation policy knobs (timeouts, backoff) from a
    /// config. Only [`Consultant::tick_faulted`] consults them.
    pub fn set_fault_policy(&mut self, config: &SearchConfig) {
        self.data_timeout = config.data_timeout;
        self.retry_base = config.retry_base;
        self.retry_cap = config.retry_cap;
        self.retry_max_attempts = config.retry_max_attempts;
        self.top_level_only = config.top_level_only;
    }

    /// Restricts (or un-restricts) the search to the top-level
    /// hypotheses at the whole-program focus. Both drivers apply
    /// `config.top_level_only` through this before the first tick.
    pub fn set_top_level_only(&mut self, on: bool) {
        self.top_level_only = on;
    }

    /// Arms the shadow-audit loop with `budget` probe slots. Both
    /// drivers call this right after construction and before the first
    /// tick — including on resume, so replayed digests stay comparable.
    /// Budget 0 returns immediately: every audit structure stays empty
    /// and the search is bit-identical to a pre-audit consultant.
    ///
    /// Only directives that carry [`Provenance`] are auditable — an
    /// audit that cannot name a source run has nobody to hold
    /// accountable, and hand-written directive files stay exempt.
    pub fn enable_audits(&mut self, budget: u32, collector: &Collector) {
        self.audit_budget = budget;
        if budget == 0 {
            return;
        }
        // Stale mappings first, and statically: a directive whose focus
        // names a resource this program does not have was harvested
        // against another code version and can never match an interval.
        // The binder already knows every name, so detection costs no
        // probe slot and draws nothing from the budget.
        self.detect_stale_mappings(collector);
        // Raised-threshold watches: a provenance-carrying threshold
        // above the hypothesis default silently converts true
        // conclusions into false ones, so watch every conclusion under
        // it for values that clear the default.
        let suspects: Vec<(HypothesisId, AuditTag)> = self
            .directives
            .thresholds
            .iter()
            .filter_map(|t| {
                let hyp = self.tree.by_name(&t.hypothesis)?;
                if t.value <= self.tree.get(hyp).default_threshold {
                    return None;
                }
                let line = t.line();
                let provenance = self.directives.provenance_of(&line)?.clone();
                Some((
                    hyp,
                    AuditTag {
                        line,
                        provenance,
                        max_seen: 0.0,
                    },
                ))
            })
            .collect();
        for s in suspects {
            if self.audits_assigned >= self.audit_budget {
                break;
            }
            self.audits_assigned += 1;
            self.threshold_audits.push(s);
        }
        // The initial expansion ran before audits were armed: convert
        // nodes pruned by provenance-carrying directives into probes.
        for id in self.shg.ids().collect::<Vec<_>>() {
            if self.audits_assigned >= self.audit_budget {
                break;
            }
            if self.shg.node(id).state != NodeState::Pruned {
                continue;
            }
            let hyp = self.shg.node(id).hypothesis;
            if self.tree.get(hyp).metric.is_none() {
                continue;
            }
            let name = self.tree.get(hyp).name.clone();
            let focus = self.shg.node(id).focus.clone();
            let Some(tag) = self.prune_audit_tag(&name, &focus) else {
                continue;
            };
            self.audits_assigned += 1;
            self.probed_prune_lines.insert(tag.line.clone());
            let node = self.shg.node_mut(id);
            node.state = NodeState::Pending;
            // High priority: a probe is only worth its slot if it
            // concludes before the search has spent the time the prune
            // claimed to save. The budget bounds how many pairs this
            // front-loads.
            node.priority = PriorityLevel::High;
            self.pending.push(id);
            self.prune_audits.insert(id, tag);
        }
        // Ditto for history-lowered pairs: promote an audited sample to
        // Medium so the claim "this pair doesn't matter" actually gets
        // tested this run instead of starving behind its siblings.
        // Lowered-pair audits draw only on what the pair prunes — the
        // lies that hide bottlenecks outright — have not reserved.
        let lowered_budget = self
            .audit_budget
            .saturating_sub(self.reserved_prune_slots());
        for id in self.pending.clone() {
            if self.audits_assigned >= lowered_budget {
                break;
            }
            if self.shg.node(id).priority != PriorityLevel::Low
                || self.prune_audits.contains_key(&id)
            {
                continue;
            }
            let name = self.tree.get(self.shg.node(id).hypothesis).name.clone();
            let line = PriorityDirective {
                hypothesis: name,
                focus: self.shg.node(id).focus.clone(),
                level: PriorityLevel::Low,
            }
            .line();
            let Some(provenance) = self.directives.provenance_of(&line).cloned() else {
                continue;
            };
            self.audits_assigned += 1;
            self.shg.node_mut(id).priority = PriorityLevel::Medium;
            self.low_audits.insert(
                id,
                AuditTag {
                    line,
                    provenance,
                    max_seen: 0.0,
                },
            );
        }
    }

    /// Budget slots held back for pair prunes whose probe has not been
    /// armed yet. An exact-pair prune hides a bottleneck outright — the
    /// most dangerous lie history can tell — but its SHG node often
    /// does not exist until the search refines down to it, while the
    /// lowered-pair promotions (an unbounded class: every Low priority
    /// is a candidate) arm eagerly. Without the reservation a modest
    /// budget is gone before the first pruned pair is ever created and
    /// the lie is applied unprobed.
    fn reserved_prune_slots(&self) -> u32 {
        self.directives
            .prunes
            .iter()
            .filter(|p| matches!(p.target, PruneTarget::Pair(_)))
            .filter(|p| {
                let line = p.line();
                !self.probed_prune_lines.contains(&line)
                    && self.directives.provenance_of(&line).is_some()
            })
            .count() as u32
    }

    /// Convicts every provenance-carrying directive whose focus names a
    /// resource absent from the bound application. Each detection is
    /// recorded as a failed audit at t=0, the directive is dropped, and
    /// the failures count toward the source's wholesale-revocation
    /// escalation — a source that shipped three stale mappings loses
    /// every directive before the search spends a single probe on it.
    fn detect_stale_mappings(&mut self, collector: &Collector) {
        let wp = Focus::whole_program([CODE, MACHINE, PROCESS, SYNC_OBJECT]);
        let mut stale: Vec<(String, Provenance, String, Focus)> = Vec::new();
        for p in &self.directives.prunes {
            let line = p.line();
            let Some(prov) = self.directives.provenance_of(&line) else {
                continue;
            };
            let focus = match &p.target {
                PruneTarget::Pair(f) => f.clone(),
                PruneTarget::Resource(r) => wp.with_selection(r.clone()),
            };
            if collector.binder().compile(&focus).names_unknown_resource() {
                let hyp = p.hypothesis.clone().unwrap_or_else(|| "*".to_string());
                stale.push((line, prov.clone(), hyp, focus));
            }
        }
        for p in &self.directives.priorities {
            let line = p.line();
            let Some(prov) = self.directives.provenance_of(&line) else {
                continue;
            };
            if collector
                .binder()
                .compile(&p.focus)
                .names_unknown_resource()
            {
                stale.push((line, prov.clone(), p.hypothesis.clone(), p.focus.clone()));
            }
        }
        let mut sources: Vec<String> = Vec::new();
        for (line, prov, hypothesis, focus) in stale {
            self.audit_outcomes.push(AuditOutcome {
                directive: line.clone(),
                source_run: prov.source_run.clone(),
                generation: prov.generation,
                hypothesis,
                focus,
                passed: false,
                observed: 0.0,
                at: SimTime::ZERO,
            });
            *self
                .audit_failures
                .entry(prov.source_run.clone())
                .or_insert(0) += 1;
            self.directives.remove_by_line(&line);
            if !sources.contains(&prov.source_run) {
                sources.push(prov.source_run.clone());
            }
        }
        for s in sources {
            self.escalate_distrust(&s, SimTime::ZERO, collector);
        }
    }

    /// The audit tag for the prune currently hiding (name, focus), if
    /// that prune is an exact-pair claim carrying provenance.
    ///
    /// Only pair prunes are falsifiable by a single probe: they claim
    /// one specific pair is false. Subtree prunes (the redundant
    /// Machine hierarchy, trivial functions, the SyncObject policy
    /// prunes) encode structural claims — a True probe under one
    /// proves duplication, not a lie — so they are cross-checked
    /// statically (HL030 trust conflicts) rather than probed.
    fn prune_audit_tag(&self, name: &str, focus: &histpc_resources::Focus) -> Option<AuditTag> {
        let p = self.directives.prune_matching(name, focus)?;
        if !matches!(p.target, PruneTarget::Pair(_)) {
            return None;
        }
        let line = p.line();
        let provenance = self.directives.provenance_of(&line)?.clone();
        Some(AuditTag {
            line,
            provenance,
            max_seen: 0.0,
        })
    }

    /// Records one concluded audit.
    fn record_audit(
        &mut self,
        tag: &AuditTag,
        id: ShgNodeId,
        passed: bool,
        observed: f64,
        at: SimTime,
    ) {
        let n = self.shg.node(id);
        self.audit_outcomes.push(AuditOutcome {
            directive: tag.line.clone(),
            source_run: tag.provenance.source_run.clone(),
            generation: tag.provenance.generation,
            hypothesis: self.tree.get(n.hypothesis).name.clone(),
            focus: n.focus.clone(),
            passed,
            observed,
            at,
        });
        if !passed {
            *self
                .audit_failures
                .entry(tag.provenance.source_run.clone())
                .or_insert(0) += 1;
        }
    }

    /// The wholesale-distrust escalation: once `source` has
    /// [`SOURCE_REVOCATION_FAILURES`] convictions this session, every
    /// directive it contributed is revoked at once — its pruned
    /// subtrees reopen, its raised thresholds fall back to the
    /// defaults (rescuing the conclusions they buried), and its
    /// priorities stop steering. Convicting lies one probe at a time
    /// costs a conclusion window each; a source caught lying three
    /// times has forfeited the benefit of the doubt.
    fn escalate_distrust(&mut self, source: &str, now: SimTime, collector: &Collector) {
        if self.audit_failures.get(source).copied().unwrap_or(0) < SOURCE_REVOCATION_FAILURES
            || self.revoked_sources.iter().any(|s| s == source)
        {
            return;
        }
        self.revoked_sources.push(source.to_string());
        let doomed: Vec<String> = self
            .directives
            .lines()
            .into_iter()
            .filter(|l| {
                self.directives
                    .provenance_of(l)
                    .is_some_and(|p| p.source_run == source)
            })
            .collect();
        let rescue: Vec<HypothesisId> = self
            .directives
            .thresholds
            .iter()
            .filter(|t| doomed.contains(&t.line()))
            .filter_map(|t| self.tree.by_name(&t.hypothesis))
            .collect();
        for line in &doomed {
            self.directives.remove_by_line(line);
        }
        self.reopen_pruned(now);
        for hyp in rescue {
            let default = self.tree.get(hyp).default_threshold;
            self.requeue_hidden(hyp, None, default, now, collector);
        }
    }

    /// After a prune revocation: every Pruned node no longer covered by
    /// any surviving prune goes back to Pending — the subtree the lie
    /// was hiding reopens.
    fn reopen_pruned(&mut self, _now: SimTime) {
        for id in self.shg.ids().collect::<Vec<_>>() {
            if self.shg.node(id).state != NodeState::Pruned {
                continue;
            }
            let hyp = self.shg.node(id).hypothesis;
            if self.tree.get(hyp).metric.is_none() {
                continue;
            }
            let name = self.tree.get(hyp).name.clone();
            let focus = self.shg.node(id).focus.clone();
            if self.directives.is_pruned(&name, &focus) {
                continue;
            }
            // The node was parked at whatever priority it held when the
            // prune hit it; the surviving directives may rank it High
            // (a truth pair whose poisoned prune just fell) — re-ask
            // them, or the reopened pair queues behind the entire
            // Medium class and the revocation saves nothing.
            let priority = self.directives.priority_of(&name, &focus);
            let node = self.shg.node_mut(id);
            node.state = NodeState::Pending;
            node.priority = priority;
            self.pending.push(id);
        }
    }

    /// After a threshold revocation: False non-persistent conclusions
    /// of the same hypothesis whose honestly-measured value clears the
    /// restored default were hidden by the same lie — flip them and
    /// resume the search under them.
    fn requeue_hidden(
        &mut self,
        hyp: HypothesisId,
        except: Option<ShgNodeId>,
        default: f64,
        now: SimTime,
        collector: &Collector,
    ) {
        for id in self.shg.ids().collect::<Vec<_>>() {
            if Some(id) == except {
                continue;
            }
            let node = self.shg.node(id);
            if node.hypothesis != hyp
                || node.state != NodeState::False
                || node.persistent
                || node.last_value <= default
            {
                continue;
            }
            let node = self.shg.node_mut(id);
            node.state = NodeState::True;
            node.first_true_at = Some(now);
            self.refine(id, now, collector);
        }
    }

    /// Audit bookkeeping for a node that just concluded in phase 1.
    /// Probe audits (prune/low) conclude with their node: True convicts
    /// the directive, False vindicates it. Threshold watches trip when
    /// the node tested False but its value clears the default — the
    /// raise was hiding a well-observed bottleneck.
    fn note_audit_conclusion(
        &mut self,
        id: ShgNodeId,
        fraction: f64,
        now: SimTime,
        collector: &Collector,
    ) {
        let state = self.shg.node(id).state;
        if let Some(tag) = self
            .prune_audits
            .remove(&id)
            .or_else(|| self.low_audits.remove(&id))
        {
            let convicted = state == NodeState::True;
            self.record_audit(&tag, id, !convicted, fraction, now);
            if convicted {
                self.directives.remove_by_line(&tag.line);
                self.reopen_pruned(now);
                self.escalate_distrust(&tag.provenance.source_run, now, collector);
            }
        }
        let hyp = self.shg.node(id).hypothesis;
        let Some(pos) = self.threshold_audits.iter().position(|(h, _)| *h == hyp) else {
            return;
        };
        let default = self.tree.get(hyp).default_threshold;
        if state == NodeState::False && fraction > default {
            let (_, tag) = self.threshold_audits.remove(pos);
            self.record_audit(&tag, id, false, fraction, now);
            self.directives.remove_by_line(&tag.line);
            // The convicted threshold was hiding this very conclusion:
            // flip it, resume the search under it, and rescue any other
            // conclusion the same lie already buried.
            let node = self.shg.node_mut(id);
            node.state = NodeState::True;
            node.first_true_at = Some(now);
            self.refine(id, now, collector);
            self.requeue_hidden(hyp, Some(id), default, now, collector);
            self.escalate_distrust(&tag.provenance.source_run, now, collector);
        } else {
            let tag = &mut self.threshold_audits[pos].1;
            tag.max_seen = tag.max_seen.max(fraction);
        }
    }

    /// Records that `procs` died (with the resource names they and their
    /// node answer to). Subsequent faulted ticks mark every unconcluded
    /// experiment stranded on dead processes as `Unreachable`.
    pub fn note_dead(&mut self, procs: &[ProcId], resources: Vec<ResourceName>) {
        for &p in procs {
            if !self.dead_procs.contains(&p) {
                self.dead_procs.push(p);
            }
        }
        for r in resources {
            if !self.unreachable.contains(&r) {
                self.unreachable.push(r);
            }
        }
    }

    /// A deterministic fingerprint of the search state (FNV-1a over every
    /// node's state, conclusion time and value, plus the expansion queue
    /// length). A resumed run replays to the checkpoint time and compares
    /// digests to prove it reconstructed the interrupted search exactly.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let fold = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for id in self.shg.ids() {
            let n = self.shg.node(id);
            fold(&mut h, &[n.state.marker() as u8]);
            let concluded = n.concluded_at.map_or(u64::MAX, SimTime::as_micros);
            fold(&mut h, &concluded.to_le_bytes());
            fold(&mut h, &n.last_value.to_bits().to_le_bytes());
        }
        fold(&mut h, &(self.pending.len() as u64).to_le_bytes());
        h
    }

    /// Creates (or links) a child node, honouring prunes and priorities.
    fn create_child(
        &mut self,
        hyp: HypothesisId,
        focus: histpc_resources::Focus,
        parent: Option<ShgNodeId>,
        now: SimTime,
    ) {
        let name = self.tree.get(hyp).name.clone();
        if let Some(existing) = self.shg.find(hyp, &focus) {
            // Link only; state unchanged.
            let _ = self.shg.add(
                hyp,
                focus,
                self.shg.node(existing).state,
                self.shg.node(existing).priority,
                false,
                parent,
                now,
            );
            return;
        }
        if self.directives.is_pruned(&name, &focus) {
            // Shadow audit: within budget, a pruned pair with
            // provenance becomes a probe instead of a dead node — if
            // the probe tests True, the prune lied and is revoked.
            if self.audits_assigned < self.audit_budget && self.tree.get(hyp).metric.is_some() {
                if let Some(tag) = self.prune_audit_tag(&name, &focus) {
                    self.audits_assigned += 1;
                    self.probed_prune_lines.insert(tag.line.clone());
                    let (id, created) = self.shg.add(
                        hyp,
                        focus,
                        NodeState::Pending,
                        // High, as at arm time: a conviction is only
                        // useful before the prune's savings are spent.
                        PriorityLevel::High,
                        false,
                        parent,
                        now,
                    );
                    if created {
                        self.pending.push(id);
                        self.prune_audits.insert(id, tag);
                    }
                    return;
                }
            }
            self.shg.add(
                hyp,
                focus,
                NodeState::Pruned,
                PriorityLevel::Medium,
                false,
                parent,
                now,
            );
            return;
        }
        let priority = self.directives.priority_of(&name, &focus);
        // Shadow audit: within budget, a history-lowered pair with
        // provenance is promoted back to Medium so the "unimportant"
        // claim actually gets tested this run. Slots reserved for
        // not-yet-armed pair-prune probes are off limits here too.
        if priority == PriorityLevel::Low
            && self.audits_assigned + self.reserved_prune_slots() < self.audit_budget
        {
            let line = PriorityDirective {
                hypothesis: name.clone(),
                focus: focus.clone(),
                level: PriorityLevel::Low,
            }
            .line();
            if let Some(provenance) = self.directives.provenance_of(&line).cloned() {
                self.audits_assigned += 1;
                let (id, created) = self.shg.add(
                    hyp,
                    focus,
                    NodeState::Pending,
                    PriorityLevel::Medium,
                    false,
                    parent,
                    now,
                );
                if created {
                    self.pending.push(id);
                    self.low_audits.insert(
                        id,
                        AuditTag {
                            line,
                            provenance,
                            max_seen: 0.0,
                        },
                    );
                }
                return;
            }
        }
        let (id, created) =
            self.shg
                .add(hyp, focus, NodeState::Pending, priority, false, parent, now);
        if created {
            self.pending.push(id);
        }
    }

    /// Refines a true node along both axes.
    fn refine(&mut self, id: ShgNodeId, now: SimTime, collector: &Collector) {
        if self.top_level_only {
            return;
        }
        let hyp = self.shg.node(id).hypothesis;
        let focus = self.shg.node(id).focus.clone();
        // "Why" axis: more specific hypotheses at the same focus.
        for h in self.tree.children(hyp) {
            self.create_child(h, focus.clone(), Some(id), now);
        }
        // "Where" axis: more specific foci for the same hypothesis —
        // but only for real (metric-bearing) hypotheses.
        if self.tree.get(hyp).metric.is_some() {
            for child in collector.space().refine(&focus) {
                self.create_child(hyp, child, Some(id), now);
            }
        }
    }

    /// Evaluates a node's current fraction-of-execution-time value.
    fn evaluate(&self, id: ShgNodeId, now: SimTime, collector: &Collector) -> f64 {
        let node = self.shg.node(id);
        let Some(pid) = node.pair else { return 0.0 };
        let pair = collector.pair(pid);
        let procs = pair.compiled.procs().len();
        if procs == 0 {
            return 0.0;
        }
        let value = collector.value(pid, window_start(now, self.window), now);
        value / (self.window.as_secs_f64() * procs as f64)
    }

    fn threshold_of(&self, hyp: HypothesisId) -> f64 {
        let h = self.tree.get(hyp);
        self.directives
            .threshold_for(&h.name)
            .unwrap_or(h.default_threshold)
    }

    /// One driver step at application time `now`: conclude ready nodes,
    /// re-evaluate persistent ones, expand the search under the cost
    /// budget.
    pub fn tick(&mut self, now: SimTime, collector: &mut Collector) {
        self.tick_impl(now, collector, None);
    }

    /// [`Consultant::tick`] with a fault injector supplying request
    /// outcomes, plus the degradation phases (unreachable marking,
    /// starvation timeouts, retry backoff). With a disabled injector the
    /// behaviour is identical to the plain tick.
    pub fn tick_faulted(
        &mut self,
        now: SimTime,
        collector: &mut Collector,
        inj: &mut FaultInjector,
    ) {
        self.tick_impl(now, collector, Some(inj));
    }

    fn tick_impl(
        &mut self,
        now: SimTime,
        collector: &mut Collector,
        mut faults: Option<&mut FaultInjector>,
    ) {
        // 0a. Admission housekeeping (all of it no-ops while admission is
        //     disabled, keeping this path bit-identical to the
        //     pre-admission driver): expire completed in-flight entries,
        //     half-open cooled breakers, and surface newly saturated
        //     resources for the report.
        collector.admission_mut().tick(now);
        for p in collector.admission_mut().drain_newly_saturated() {
            let app = collector.binder().app();
            let mut names = vec![format!("/Process/{}", app.processes[p])];
            // The machine is only saturated once every process it hosts is.
            let node = app.node_of(ProcId(p as u16));
            let blocked = collector.admission().blocked_procs();
            let node_procs =
                (0..app.process_count()).filter(|&q| app.node_of(ProcId(q as u16)) == node);
            if node_procs
                .clone()
                .all(|q| blocked.contains(&ProcId(q as u16)))
            {
                names.push(format!("/Machine/{}", app.nodes[node]));
            }
            for name in names {
                if let Ok(r) = ResourceName::parse(&name) {
                    if !self.saturated.contains(&r) {
                        self.saturated.push(r);
                    }
                }
            }
        }

        // 0b. Experiments whose processes are all behind open breakers
        //     cannot be honestly served: conclude them Saturated and free
        //     their instrumentation (the overload mirror of the
        //     unreachable sweep below). Persistent pairs are spared —
        //     they keep measuring and recover when the breaker re-admits.
        if collector.admission().any_breaker_open() {
            let blocked = collector.admission().blocked_procs();
            for id in self.shg.ids().collect::<Vec<_>>() {
                let node = self.shg.node(id);
                let state = node.state;
                if node.persistent || (state != NodeState::Pending && state != NodeState::Testing) {
                    continue;
                }
                let focus = self.shg.node(id).focus.clone();
                let procs = collector.binder().compile(&focus).procs().to_vec();
                if procs.is_empty() || !procs.iter().all(|p| blocked.contains(p)) {
                    continue;
                }
                let pair = self.shg.node(id).pair;
                let node = self.shg.node_mut(id);
                node.state = NodeState::Saturated;
                node.concluded_at = Some(now);
                if let Some(pid) = pair {
                    collector.release(pid, now);
                }
                self.pending.retain(|&p| p != id);
                self.retry.remove(&id);
            }
        }

        // 0c. Backpressure hysteresis: trickle refinement fan-out while
        //     the admission layer reports pressure, resume once it
        //     drains.
        if self.throttled {
            if collector.admission().drained() {
                self.throttled = false;
            }
        } else if collector.admission().under_pressure() {
            self.throttled = true;
        }

        // 0. (Faulted only.) Experiments stranded entirely on dead
        //    processes can never conclude honestly: mark them Unreachable
        //    and free their instrumentation.
        if faults.is_some() && !self.dead_procs.is_empty() {
            for id in self.shg.ids().collect::<Vec<_>>() {
                let state = self.shg.node(id).state;
                if state != NodeState::Pending && state != NodeState::Testing {
                    continue;
                }
                let focus = self.shg.node(id).focus.clone();
                let procs = collector.binder().compile(&focus).procs().to_vec();
                if procs.is_empty() || !procs.iter().all(|p| self.dead_procs.contains(p)) {
                    continue;
                }
                let pair = self.shg.node(id).pair;
                let node = self.shg.node_mut(id);
                node.state = NodeState::Unreachable;
                node.concluded_at = Some(now);
                if let Some(pid) = pair {
                    collector.release(pid, now);
                }
                self.pending.retain(|&p| p != id);
                self.retry.remove(&id);
            }
        }

        // 1. Conclude nodes that have a full window of data.
        for id in self.shg.in_state(NodeState::Testing) {
            let Some(pid) = self.shg.node(id).pair else {
                continue;
            };
            let active_from = collector.pair(pid).active_from;
            if now < active_from + self.window {
                continue;
            }
            // (Faulted only.) A window with no fresh data from any of the
            // experiment's processes is not evidence of anything: defer
            // the conclusion, and past the data timeout give up with
            // Unknown rather than a false "false".
            if faults.is_some() {
                let procs = collector.pair(pid).compiled.procs().to_vec();
                if !procs.is_empty() {
                    let ws = window_start(now, self.window);
                    let fresh = procs.iter().any(|&p| collector.last_data_at(p) >= ws);
                    if !fresh {
                        let last_seen = procs
                            .iter()
                            .map(|&p| collector.last_data_at(p))
                            .max()
                            .unwrap_or(SimTime::ZERO)
                            .max(active_from);
                        if now > last_seen + self.data_timeout {
                            let node = self.shg.node_mut(id);
                            node.state = NodeState::Unknown;
                            node.concluded_at = Some(now);
                            collector.release(pid, now);
                        }
                        continue;
                    }
                }
            }
            let fraction = self.evaluate(id, now, collector);
            let threshold = self.threshold_of(self.shg.node(id).hypothesis);
            let node = self.shg.node_mut(id);
            node.last_value = fraction;
            node.concluded_at = Some(now);
            let persistent = node.persistent;
            if fraction > threshold {
                node.state = NodeState::True;
                node.first_true_at = Some(now);
                // Free the pair's budget for the refinement's children;
                // persistent pairs keep monitoring for the whole run.
                // (Deviation from Paradyn, which kept true nodes
                // instrumented: releasing concluded pairs keeps the cost
                // economics workable with our cost constants, while
                // preserving the paper's key asymmetry — false conclusions
                // free budget and stop, true conclusions spawn children.)
                if !persistent {
                    collector.release(pid, now);
                } else {
                    collector.settle(pid);
                }
                self.refine(id, now, collector);
            } else {
                node.state = NodeState::False;
                if !persistent {
                    collector.release(pid, now);
                } else {
                    collector.settle(pid);
                }
            }
            self.note_audit_conclusion(id, fraction, now, collector);
        }

        // 2. Persistent pairs keep testing for the entire run: a False
        //    persistent node that crosses its threshold later flips to
        //    True and is refined.
        for id in self.shg.ids().collect::<Vec<_>>() {
            let node = self.shg.node(id);
            if !node.persistent || node.pair.is_none() {
                continue;
            }
            if node.state == NodeState::False {
                let Some(pid) = node.pair else { continue };
                let active_from = collector.pair(pid).active_from;
                if now < active_from + self.window {
                    continue;
                }
                let fraction = self.evaluate(id, now, collector);
                let threshold = self.threshold_of(node.hypothesis);
                if fraction > threshold {
                    let node = self.shg.node_mut(id);
                    node.state = NodeState::True;
                    node.last_value = fraction;
                    node.first_true_at = Some(now);
                    self.refine(id, now, collector);
                }
            } else if node.state == NodeState::True {
                let fraction = self.evaluate(id, now, collector);
                self.shg.node_mut(id).last_value = fraction;
            }
        }

        // 3. Expansion under the cost budget, with halt/resume hysteresis.
        if self.halted && collector.cost().can_resume() {
            self.halted = false;
        }
        if !self.halted && !self.pending.is_empty() {
            // High before Medium before Low; then oldest first.
            self.pending.sort_by_key(|&id| {
                let n = self.shg.node(id);
                (std::cmp::Reverse(n.priority), n.created_at, id)
            });
            let mut i = 0;
            let mut throttled_refinements = 0usize;
            while i < self.pending.len() {
                let id = self.pending[i];
                // A node in retry backoff stays queued but is skipped
                // until its retry time arrives.
                if let Some(&(_, next_at)) = self.retry.get(&id) {
                    if next_at > now {
                        i += 1;
                        continue;
                    }
                }
                // Pairs backing active SHG nodes (persistent, or seeded
                // High priority) keep the full admission pool; everything
                // else is a refinement probe, shed first under pressure
                // and cut to a trickle of one probe per tick while
                // throttled — sustained overload must slow the search,
                // not stop it, or a long flood would starve every
                // untested hypothesis into `Unknown`.
                // Audit probes also ride the reserved Backing class:
                // shedding them under the very overload history
                // mispredicted would blind the audit exactly when it
                // matters most.
                let class = {
                    let n = self.shg.node(id);
                    if n.persistent
                        || n.priority == PriorityLevel::High
                        || self.prune_audits.contains_key(&id)
                        || self.low_audits.contains_key(&id)
                    {
                        RequestClass::Backing
                    } else {
                        RequestClass::Refinement
                    }
                };
                if self.throttled && class == RequestClass::Refinement {
                    if throttled_refinements >= 1 {
                        i += 1;
                        continue;
                    }
                    throttled_refinements += 1;
                }
                let focus = self.shg.node(id).focus.clone();
                let compiled = collector.binder().compile(&focus);
                if collector.cost().would_exceed(&compiled) {
                    self.halted = true;
                    break;
                }
                let hyp = self.shg.node(id).hypothesis;
                let metric = self
                    .tree
                    .get(hyp)
                    .metric
                    .expect("only metric hypotheses are queued");
                let fate = match faults.as_deref_mut() {
                    Some(inj) => inj.request_outcome(),
                    None => RequestFault::Deliver,
                };
                match collector.request_admitted(metric, focus, now, fate, class) {
                    AdmitOutcome::Granted(pid) => {
                        self.pending.remove(i);
                        self.retry.remove(&id);
                        let node = self.shg.node_mut(id);
                        node.pair = Some(pid);
                        node.state = NodeState::Testing;
                    }
                    AdmitOutcome::Saturated => {
                        // Every process under the focus is behind an open
                        // breaker: refusing is terminal for this
                        // experiment (half-open probes re-admit the
                        // processes for later experiments).
                        self.pending.remove(i);
                        self.retry.remove(&id);
                        let node = self.shg.node_mut(id);
                        node.state = NodeState::Saturated;
                        node.concluded_at = Some(now);
                    }
                    AdmitOutcome::Failed | AdmitOutcome::Shed => {
                        // Failed insertion: retry with capped exponential
                        // backoff; past the attempt budget the pair
                        // concludes Unknown (never false).
                        let attempts = self.retry.get(&id).map(|&(a, _)| a).unwrap_or(0) + 1;
                        if attempts >= self.retry_max_attempts {
                            self.pending.remove(i);
                            self.retry.remove(&id);
                            let node = self.shg.node_mut(id);
                            node.state = NodeState::Unknown;
                            node.concluded_at = Some(now);
                        } else {
                            let exp = (attempts - 1).min(16);
                            let backoff = SimDuration::from_micros(
                                self.retry_base
                                    .as_micros()
                                    .saturating_mul(1 << exp)
                                    .min(self.retry_cap.as_micros()),
                            );
                            self.retry.insert(id, (attempts, now + backoff));
                            i += 1;
                        }
                    }
                }
            }
        }

        self.peak_cost = self.peak_cost.max(collector.cost().total_cost());

        // 4. Quiescence.
        if self.quiesced_at.is_none()
            && self.pending.is_empty()
            && self.shg.count_state(NodeState::Testing) == 0
        {
            self.quiesced_at = Some(now);
        }
    }

    /// Builds the final report at application time `now`.
    pub fn report(&self, collector: &Collector, now: SimTime) -> DiagnosisReport {
        let root = self
            .shg
            .find(self.tree.root(), &collector.space().whole_program());
        let outcomes = self
            .shg
            .ids()
            .filter(|id| Some(*id) != root)
            .map(|id| {
                let n = self.shg.node(id);
                NodeOutcome {
                    hypothesis: self.tree.get(n.hypothesis).name.clone(),
                    focus: n.focus.clone(),
                    outcome: match n.state {
                        NodeState::True => Outcome::True,
                        NodeState::False => Outcome::False,
                        NodeState::Pruned => Outcome::Pruned,
                        NodeState::Pending | NodeState::Testing => Outcome::Untested,
                        NodeState::Unknown => Outcome::Unknown,
                        NodeState::Unreachable => Outcome::Unreachable,
                        NodeState::Saturated => Outcome::Saturated,
                    },
                    first_true_at: n.first_true_at,
                    concluded_at: n.concluded_at,
                    last_value: n.last_value,
                    samples: n.pair.map(|p| collector.pair(p).observations).unwrap_or(0),
                }
            })
            .collect();
        // Untripped raised-threshold watches pass: across the whole
        // run, nothing the default threshold would have caught was
        // hidden. Their evidence is the best fraction observed.
        let mut audits = self.audit_outcomes.clone();
        for (hyp, tag) in &self.threshold_audits {
            audits.push(AuditOutcome {
                directive: tag.line.clone(),
                source_run: tag.provenance.source_run.clone(),
                generation: tag.provenance.generation,
                hypothesis: self.tree.get(*hyp).name.clone(),
                focus: collector.space().whole_program(),
                passed: true,
                observed: tag.max_seen,
                at: self.quiesced_at.unwrap_or(now),
            });
        }
        DiagnosisReport {
            app_name: collector.binder().app().name.clone(),
            app_version: collector.binder().app().version.clone(),
            outcomes,
            pairs_tested: collector.pairs_requested(),
            end_time: self.quiesced_at.unwrap_or(now),
            peak_cost: self.peak_cost,
            quiescent: self.quiesced_at.is_some(),
            unreachable: self.unreachable.clone(),
            saturated: self.saturated.clone(),
            admission: *collector.admission().stats(),
            shg_rendering: self.shg.render(&self.tree),
            audits,
        }
    }
}

/// Runs a full online diagnosis session: drives the engine in sampling
/// steps, feeds intervals to the collector, ticks the consultant, and
/// applies instrumentation perturbation back to the application.
pub fn drive_diagnosis(engine: &mut Engine, config: &SearchConfig) -> DiagnosisReport {
    let mut collector = Collector::new(engine.app().clone(), config.collector.clone());
    let mut consultant = Consultant::new(
        HypothesisTree::standard(),
        config.directives.clone(),
        config.window,
        &collector,
    );
    // Initial expansion at t=0: high-priority pairs are instrumented at
    // search start (paper §3.1).
    consultant.set_top_level_only(config.top_level_only);
    consultant.enable_audits(config.audit_budget, &collector);
    consultant.tick(SimTime::ZERO, &mut collector);
    collector.apply_perturbation(engine);

    let mut now = SimTime::ZERO;
    let max = SimTime::ZERO + config.max_time;
    loop {
        now += config.sample;
        let status = engine.run_until(now);
        let batch = SampleBatch::drain(engine);
        collector.ingest(&batch);
        consultant.tick(now, &mut collector);
        collector.apply_perturbation(engine);
        config.hooks.beat(now);
        if consultant.is_quiescent() && !config.run_full_program {
            break;
        }
        if status != EngineStatus::Running {
            break;
        }
        if now >= max {
            break;
        }
    }
    consultant.report(&collector, now)
}

/// A checkpoint of an interrupted diagnosis session.
///
/// Resume works by deterministic replay: the whole session re-runs from
/// t=0 on the same seed with the crash suppressed, and at the checkpoint
/// time the reconstructed search state's [`Consultant::digest`] is
/// compared against the recorded one to prove the resume is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchCheckpoint {
    /// Application time at which the tool crashed.
    pub at: SimTime,
    /// Search-state digest at that time.
    pub digest: u64,
}

impl SearchCheckpoint {
    /// Serializes to the `histpc-ckpt v1` text format.
    pub fn to_text(&self) -> String {
        format!(
            "histpc-ckpt v1\nat_us {}\ndigest {}\n",
            self.at.as_micros(),
            self.digest
        )
    }

    /// Parses the `histpc-ckpt v1` text format.
    pub fn parse(text: &str) -> Result<SearchCheckpoint, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some("histpc-ckpt v1") {
            return Err("missing 'histpc-ckpt v1' header".into());
        }
        let mut at = None;
        let mut digest = None;
        for line in lines {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("at_us"), Some(v)) => {
                    at = Some(v.parse::<u64>().map_err(|e| format!("bad at_us: {e}"))?);
                }
                (Some("digest"), Some(v)) => {
                    digest = Some(v.parse::<u64>().map_err(|e| format!("bad digest: {e}"))?);
                }
                _ => return Err(format!("unrecognized checkpoint line: {line}")),
            }
        }
        match (at, digest) {
            (Some(at), Some(digest)) => Ok(SearchCheckpoint {
                at: SimTime(at),
                digest,
            }),
            _ => Err("checkpoint needs both at_us and digest lines".into()),
        }
    }
}

/// Why a faulted drive loop stopped at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// An injected tool crash fired (`FaultPlan::tool_crash_at`).
    Crash,
    /// The watchdog stall deadline expired: no observable search
    /// progress for `SearchConfig::stall` of application time.
    Stall,
    /// An external supervisor set the cancellation hook.
    Cancelled,
}

impl fmt::Display for HaltReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HaltReason::Crash => write!(f, "crash"),
            HaltReason::Stall => write!(f, "stall"),
            HaltReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// The result of a fault-injected diagnosis session.
#[derive(Debug, Clone)]
pub struct DegradedRun {
    /// The diagnosis report (partial if the tool crashed).
    pub report: DiagnosisReport,
    /// Present iff the session was interrupted (crash, stall, or
    /// cancellation); feed it back as `resume_from` to finish the
    /// diagnosis.
    pub checkpoint: Option<SearchCheckpoint>,
    /// Why the session stopped at [`DegradedRun::checkpoint`]; `None`
    /// when it ran to completion.
    pub halted: Option<HaltReason>,
    /// What the injector actually did.
    pub stats: FaultStats,
    /// On a resumed run: whether the replayed search state matched the
    /// checkpoint digest at the crash time. Always true otherwise.
    pub resumed_digest_ok: bool,
}

/// [`drive_diagnosis`] through a fault-injection layer.
///
/// With a disabled plan and no checkpoint this delegates to the plain
/// driver, so results are bit-identical to a healthy run. Otherwise
/// samples pass through the injector, scheduled kills are applied to the
/// engine (and reported to the consultant as unreachable resources), and
/// an injected tool crash returns early with a [`SearchCheckpoint`].
/// Passing that checkpoint back as `resume_from` replays the session
/// deterministically with the crash suppressed.
pub fn drive_diagnosis_faulted(
    engine: &mut Engine,
    config: &SearchConfig,
    resume_from: Option<&SearchCheckpoint>,
) -> DegradedRun {
    if config.faults.is_disabled() && resume_from.is_none() {
        return DegradedRun {
            report: drive_diagnosis(engine, config),
            checkpoint: None,
            halted: None,
            stats: FaultStats::default(),
            resumed_digest_ok: true,
        };
    }

    let mut injector = FaultInjector::new(config.faults.clone());
    let mut collector = Collector::new(engine.app().clone(), config.collector.clone());
    let mut consultant = Consultant::new(
        HypothesisTree::standard(),
        config.directives.clone(),
        config.window,
        &collector,
    );
    consultant.set_fault_policy(config);
    consultant.enable_audits(config.audit_budget, &collector);
    consultant.tick_faulted(SimTime::ZERO, &mut collector, &mut injector);
    collector.apply_perturbation(engine);

    let mut now = SimTime::ZERO;
    let max = SimTime::ZERO + config.max_time;
    let mut digest_ok = true;
    // A crash scheduled at or before the resume point was already taken
    // on the interrupted run; replay suppresses it. A crash scheduled
    // *after* the resume point is still armed, so chained
    // crash/resume/crash sequences replay exactly.
    let crash_armed = config
        .faults
        .tool_crash_at
        .is_some_and(|t| resume_from.is_none_or(|c| t > c.at));
    // Watchdog stall tracking: "progress" is any change in the search
    // state digest. All in application time, so detection is
    // deterministic and replays identically on resume.
    let mut last_digest = consultant.digest();
    let mut last_progress_at = SimTime::ZERO;
    loop {
        now += config.sample;
        for kill in injector.due_kills(now) {
            let (victims, mut resources) = match &kill.target {
                KillTarget::Node(name) => match engine.node_index(name) {
                    Some(idx) => (engine.kill_node(idx), vec![format!("/Machine/{name}")]),
                    None => (Vec::new(), Vec::new()),
                },
                KillTarget::Proc(rank) => {
                    let p = ProcId(*rank);
                    if (*rank as usize) < engine.app().process_count() {
                        engine.kill_proc(p);
                        (vec![p], Vec::new())
                    } else {
                        (Vec::new(), Vec::new())
                    }
                }
            };
            for &p in &victims {
                resources.push(format!("/Process/{}", engine.app().processes[p.0 as usize]));
            }
            let resources = resources
                .iter()
                .filter_map(|r| ResourceName::parse(r).ok())
                .collect();
            consultant.note_dead(&victims, resources);
        }
        let status = engine.run_until(now);
        let batch = SampleBatch::new(
            injector.filter_intervals(engine.drain_intervals(), now),
            engine.app().process_count(),
        );
        // Overload faults press on the admission layer: flood units
        // compete with the real stream for the sample budget, storm
        // requests occupy in-flight slots. Both draws happen even with
        // admission disabled (keeping RNG streams stable); the collector
        // then absorbs them as no-ops.
        let flood = injector.flood_units(batch.len());
        collector.admission_mut().note_phantom_samples(flood);
        let storm = injector.storm_requests();
        collector.admission_mut().absorb_storm(storm, now);
        collector.ingest(&batch);
        consultant.tick_faulted(now, &mut collector, &mut injector);
        collector.apply_perturbation(engine);
        config.hooks.beat(now);
        if crash_armed && injector.crash_due(now) {
            // The tool "crashes": checkpoint the search and stop.
            let checkpoint = SearchCheckpoint {
                at: now,
                digest: consultant.digest(),
            };
            return DegradedRun {
                report: consultant.report(&collector, now),
                checkpoint: Some(checkpoint),
                halted: Some(HaltReason::Crash),
                stats: injector.stats(),
                resumed_digest_ok: digest_ok,
            };
        }
        if let Some(ckpt) = resume_from {
            if now == ckpt.at {
                digest_ok = consultant.digest() == ckpt.digest;
            }
        }
        if config.hooks.cancelled() {
            // Cancelled from outside (watchdog or operator): stop at a
            // tick boundary with a resumable checkpoint.
            let checkpoint = SearchCheckpoint {
                at: now,
                digest: consultant.digest(),
            };
            return DegradedRun {
                report: consultant.report(&collector, now),
                checkpoint: Some(checkpoint),
                halted: Some(HaltReason::Cancelled),
                stats: injector.stats(),
                resumed_digest_ok: digest_ok,
            };
        }
        if let Some(deadline) = config.stall {
            let digest = consultant.digest();
            if digest != last_digest {
                last_digest = digest;
                last_progress_at = now;
            } else if now.as_micros() - last_progress_at.as_micros() >= deadline.as_micros() {
                // Dead drive loop or hung collector: nothing about the
                // search has changed for a full stall deadline. Stop at
                // a checkpoint rather than spinning until max_time.
                return DegradedRun {
                    report: consultant.report(&collector, now),
                    checkpoint: Some(SearchCheckpoint { at: now, digest }),
                    halted: Some(HaltReason::Stall),
                    stats: injector.stats(),
                    resumed_digest_ok: digest_ok,
                };
            }
        }
        // Unlike the healthy driver there is no bare "engine stopped"
        // break: starving experiments must be given time to resolve to
        // Unknown even after the program (or what's left of it) exits.
        if consultant.is_quiescent()
            && (!config.run_full_program || status != EngineStatus::Running)
        {
            break;
        }
        if now >= max {
            break;
        }
    }
    DegradedRun {
        report: consultant.report(&collector, now),
        checkpoint: None,
        halted: None,
        stats: injector.stats(),
        resumed_digest_ok: digest_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directive::{PriorityDirective, Prune, PruneTarget, ThresholdDirective};
    use histpc_resources::ResourceName;
    use histpc_sim::workloads::{SyntheticWorkload, Workload};

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).expect("test resource names are literal and valid")
    }

    /// A fast config for tests: short windows and steps.
    fn fast_config() -> SearchConfig {
        SearchConfig {
            window: SimDuration::from_millis(800),
            sample: SimDuration::from_millis(100),
            max_time: SimDuration::from_secs(120),
            ..SearchConfig::default()
        }
    }

    /// Two processes, f1 is a clear CPU hotspot, light ring traffic.
    fn hotspot_workload() -> SyntheticWorkload {
        SyntheticWorkload::balanced(2, 3, 0.05).with_hotspot(0, 1, 3.0)
    }

    #[test]
    fn finds_planted_cpu_bottleneck_and_refines() {
        let wl = hotspot_workload();
        let mut engine = wl.build_engine();
        let report = drive_diagnosis(&mut engine, &fast_config());
        assert!(report.quiescent, "search should quiesce");
        let b = report.bottleneck_set();
        // Whole-program CPUbound must be true...
        assert!(
            b.iter()
                .any(|(h, f)| h == "CPUbound" && f.is_whole_program()),
            "whole-program CPUbound missing; found {b:?}"
        );
        // ...and refined down to the hotspot function f1.
        assert!(
            b.iter().any(|(h, f)| {
                h == "CPUbound"
                    && f.selection("Code").map(|s| s.to_string())
                        == Some("/Code/app.c/f1".to_string())
            }),
            "function-level CPUbound missing; found {b:?}"
        );
        // The sync and IO hypotheses are false at the whole program and
        // must not have been refined below it.
        assert!(!b.iter().any(|(h, _)| h == "ExcessiveIOBlockingTime"));
    }

    #[test]
    fn false_nodes_are_not_refined() {
        let wl = hotspot_workload();
        let mut engine = wl.build_engine();
        let report = drive_diagnosis(&mut engine, &fast_config());
        // No IO bottleneck exists, so only the single whole-program IO
        // node may mention the hypothesis.
        let io_nodes: Vec<_> = report
            .outcomes
            .iter()
            .filter(|o| o.hypothesis == "ExcessiveIOBlockingTime")
            .collect();
        assert_eq!(io_nodes.len(), 1, "IO was refined: {io_nodes:?}");
        assert_eq!(io_nodes[0].outcome, Outcome::False);
    }

    #[test]
    fn prune_directive_excludes_subtree() {
        let wl = hotspot_workload();
        let mut engine = wl.build_engine();
        let mut directives = SearchDirectives::none();
        // Prune the hotspot function from the CPU hypothesis.
        directives.add_prune(Prune {
            hypothesis: Some("CPUbound".into()),
            target: PruneTarget::Resource(n("/Code/app.c/f1")),
        });
        let config = fast_config().with_directives(directives);
        let report = drive_diagnosis(&mut engine, &config);
        let b = report.bottleneck_set();
        assert!(
            !b.iter().any(|(_, f)| f
                .selection("Code")
                .is_some_and(|s| s.to_string() == "/Code/app.c/f1")),
            "pruned function was still reported: {b:?}"
        );
        // The prune is recorded in the SHG.
        assert!(report.outcomes.iter().any(|o| o.outcome == Outcome::Pruned));
    }

    #[test]
    fn machine_hierarchy_prune_blocks_descent() {
        let wl = hotspot_workload();
        let mut engine = wl.build_engine();
        let mut directives = SearchDirectives::none();
        directives.add_prune(Prune {
            hypothesis: None,
            target: PruneTarget::Resource(n("/Machine")),
        });
        let config = fast_config().with_directives(directives);
        let report = drive_diagnosis(&mut engine, &config);
        for o in &report.outcomes {
            if o.outcome != Outcome::Pruned {
                let m = o
                    .focus
                    .selection("Machine")
                    .expect("every focus carries a Machine selection");
                assert!(m.is_root(), "machine refinement leaked: {}", o.focus);
            }
        }
    }

    #[test]
    fn high_priority_pairs_found_faster() {
        // Base run.
        let wl = hotspot_workload();
        let mut engine = wl.build_engine();
        let base = drive_diagnosis(&mut engine, &fast_config());
        let hotspot = base
            .bottlenecks()
            .iter()
            .find(|o| {
                o.focus
                    .selection("Code")
                    .is_some_and(|s| s.to_string() == "/Code/app.c/f1")
                    && o.focus.depth() == 2 // only the Code selection is refined
            })
            .map(|o| {
                (
                    o.hypothesis.clone(),
                    o.focus.clone(),
                    o.first_true_at
                        .expect("bottlenecks always carry a first-true timestamp"),
                )
            })
            .expect("base run finds the hotspot");

        // Directed run: the hotspot pair is high priority.
        let mut directives = SearchDirectives::none();
        directives.add_priority(PriorityDirective {
            hypothesis: hotspot.0.clone(),
            focus: hotspot.1.clone(),
            level: PriorityLevel::High,
        });
        let mut engine2 = wl.build_engine();
        let config = fast_config().with_directives(directives);
        let directed = drive_diagnosis(&mut engine2, &config);
        let t_directed = directed
            .outcomes
            .iter()
            .find(|o| o.hypothesis == hotspot.0 && o.focus == hotspot.1)
            .and_then(|o| o.first_true_at)
            .expect("directed run finds the hotspot");
        assert!(
            t_directed < hotspot.2,
            "high priority not faster: {} vs {}",
            t_directed,
            hotspot.2
        );
    }

    #[test]
    fn threshold_directive_changes_conclusions() {
        let wl = SyntheticWorkload::balanced(2, 2, 1.0).with_hotspot(0, 1, 0.9);
        // f1's CPU fraction on proc 0 is high, but the whole-program CPU
        // fraction per process is ~100% (compute-bound): pick a sub-
        // hypothesis effect instead — ring sync is tiny, so with a huge
        // threshold nothing but CPU is true; with a tiny threshold the
        // sync hypothesis also fires.
        let wl = wl.with_ring(64);
        let mut d_strict = SearchDirectives::none();
        d_strict.add_threshold(ThresholdDirective {
            hypothesis: "ExcessiveSyncWaitingTime".into(),
            value: 0.9,
        });
        let mut engine = wl.build_engine();
        let strict = drive_diagnosis(&mut engine, &fast_config().with_directives(d_strict));

        let mut d_lax = SearchDirectives::none();
        d_lax.add_threshold(ThresholdDirective {
            hypothesis: "ExcessiveSyncWaitingTime".into(),
            value: 0.001,
        });
        let mut engine = wl.build_engine();
        let lax = drive_diagnosis(&mut engine, &fast_config().with_directives(d_lax));

        let strict_sync = strict
            .bottleneck_set()
            .iter()
            .filter(|(h, _)| h == "ExcessiveSyncWaitingTime")
            .count();
        let lax_sync = lax
            .bottleneck_set()
            .iter()
            .filter(|(h, _)| h == "ExcessiveSyncWaitingTime")
            .count();
        assert_eq!(strict_sync, 0);
        assert!(lax_sync > 0, "lax threshold found no sync bottlenecks");
        assert!(lax.pairs_tested > strict.pairs_tested);
    }

    #[test]
    fn cost_stays_bounded() {
        let wl = hotspot_workload();
        let mut engine = wl.build_engine();
        let config = fast_config();
        let report = drive_diagnosis(&mut engine, &config);
        let halt = config.collector.cost.halt_threshold;
        let slack = config.collector.cost.base_pair_cost;
        assert!(
            report.peak_cost <= halt + slack,
            "peak cost {} exceeded halt {} + slack",
            report.peak_cost,
            halt
        );
        assert!(report.peak_cost > 0.0);
    }

    #[test]
    fn report_includes_shg_rendering() {
        let wl = hotspot_workload();
        let mut engine = wl.build_engine();
        let report = drive_diagnosis(&mut engine, &fast_config());
        assert!(report.shg_rendering.contains("TopLevelHypothesis"));
        assert!(report.shg_rendering.contains("CPUbound"));
        assert!(report.pairs_tested >= 3);
    }

    #[test]
    fn persistent_pair_flips_true_when_bottleneck_appears_late() {
        // The paper: "High priority pairs are instrumented at search
        // start and are persistent (i.e., testing continues throughout
        // the entire program run, regardless of whether a true or false
        // conclusion is reached)." A bottleneck that only exists in the
        // later phase of the run is missed by the one-shot search but
        // caught by a persistent pair.
        // f2 burns nothing until iteration 100 (~9s at ~90ms/iter), then
        // becomes a hotspot on proc 0.
        let mut wl = SyntheticWorkload::balanced(2, 3, 45.0).with_phase_change(100, 0, 2, 300.0);
        // Only f0 and f1 run in the early phase; f2 is idle until the
        // phase change.
        wl.compute = vec![vec![(0, 45.0), (1, 45.0)]; 2];
        let f2 = {
            let collector = Collector::new(wl.app_spec(), CollectorConfig::default());
            collector
                .space()
                .whole_program()
                .with_selection(n("/Code/app.c/f2"))
        };

        // Base run: (CPUbound, f2) never tests true — it is either
        // concluded false early or never reached (the parent module node
        // concludes before the phase change).
        let config = SearchConfig {
            window: SimDuration::from_millis(800),
            sample: SimDuration::from_millis(100),
            max_time: SimDuration::from_secs(30),
            run_full_program: true,
            ..SearchConfig::default()
        };
        let mut engine = wl.build_engine();
        let base = drive_diagnosis(&mut engine, &config);
        let base_f2 = base
            .outcomes
            .iter()
            .find(|o| o.hypothesis == "CPUbound" && o.focus == f2);
        assert!(
            base_f2.is_none_or(|o| o.outcome != Outcome::True),
            "base run unexpectedly caught the late hotspot: {base_f2:?}"
        );

        // Directed run with a persistent high-priority pair on f2: the
        // pair concludes false early, keeps testing, and flips true once
        // the phase change hits.
        let mut directives = SearchDirectives::none();
        directives.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: f2.clone(),
            level: PriorityLevel::High,
        });
        let mut engine = wl.build_engine();
        let directed = drive_diagnosis(&mut engine, &config.with_directives(directives));
        let o = directed
            .outcomes
            .iter()
            .find(|o| o.hypothesis == "CPUbound" && o.focus == f2)
            .expect("persistent pair recorded");
        assert_eq!(o.outcome, Outcome::True, "persistent pair did not flip");
        let t = o.first_true_at.expect("flip timestamp recorded");
        assert!(
            t > SimTime::from_secs(9),
            "flip happened before the phase change: {t}"
        );
    }

    #[test]
    fn contradictory_prune_and_priority_prune_wins() {
        let wl = hotspot_workload();
        let f = {
            // Build a focus naming the hotspot function.
            let collector = Collector::new(wl.app_spec(), CollectorConfig::default());
            collector
                .space()
                .whole_program()
                .with_selection(n("/Code/app.c/f1"))
        };
        let mut directives = SearchDirectives::none();
        directives.add_prune(Prune {
            hypothesis: Some("CPUbound".into()),
            target: PruneTarget::Pair(f.clone()),
        });
        directives.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: f.clone(),
            level: PriorityLevel::High,
        });
        let mut engine = wl.build_engine();
        let report = drive_diagnosis(&mut engine, &fast_config().with_directives(directives));
        let o = report
            .outcomes
            .iter()
            .find(|o| o.focus == f && o.hypothesis == "CPUbound")
            .expect("node recorded");
        assert_eq!(o.outcome, Outcome::Pruned);
    }

    #[test]
    fn stall_deadline_cancels_a_dead_drive_loop() {
        // Every sample dropped and a data timeout past the horizon: no
        // experiment ever concludes, the digest never changes, and
        // without the watchdog the loop would spin until max_time.
        let wl = hotspot_workload();
        let mut config = fast_config();
        config.faults.drop_rate = 1.0;
        config.data_timeout = SimDuration::from_secs(600);
        config.max_time = SimDuration::from_secs(300);
        config.stall = Some(SimDuration::from_secs(2));
        let mut engine = wl.build_engine();
        let run = drive_diagnosis_faulted(&mut engine, &config, None);
        assert_eq!(run.halted, Some(HaltReason::Stall));
        let ckpt = run.checkpoint.expect("stall leaves a checkpoint");
        assert!(
            ckpt.at < SimTime::ZERO + SimDuration::from_secs(10),
            "stall detected far too late: {}",
            ckpt.at
        );
    }

    #[test]
    fn cancel_hook_stops_at_a_checkpoint() {
        let wl = hotspot_workload();
        let mut config = fast_config();
        config.faults.drop_rate = 0.01; // non-disabled plan, faulted loop
        let cancel = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        config.hooks.cancel = Some(cancel);
        let mut engine = wl.build_engine();
        let run = drive_diagnosis_faulted(&mut engine, &config, None);
        assert_eq!(run.halted, Some(HaltReason::Cancelled));
        let ckpt = run.checkpoint.expect("cancellation leaves a checkpoint");
        assert_eq!(
            ckpt.at,
            SimTime::ZERO + config.sample,
            "first tick boundary"
        );
    }

    #[test]
    fn top_level_only_restricts_instrumentation_to_whole_program() {
        let wl = hotspot_workload();
        let mut config = fast_config();
        config.top_level_only = true;
        let mut engine = wl.build_engine();
        let report = drive_diagnosis(&mut engine, &config);
        assert!(report.quiescent);
        assert!(
            report.outcomes.iter().all(|o| o.focus.is_whole_program()),
            "refined focus escaped top-level-only mode"
        );
        assert!(!report.outcomes.is_empty());
    }

    #[test]
    fn a_later_crash_after_resume_fires_and_replays() {
        // crash -> resume with a later crash -> crash again -> resume:
        // the chained replay must end bit-identical to a run that never
        // crashed (same faulted loop, crash armed past the horizon).
        let wl = hotspot_workload();
        let mut config = fast_config();
        config.faults.seed = 3;
        config.faults.tool_crash_at = Some(SimTime::from_micros(u64::MAX / 2));
        let mut engine = wl.build_engine();
        let reference = drive_diagnosis_faulted(&mut engine, &config, None);
        assert!(reference.checkpoint.is_none());

        config.faults.tool_crash_at = Some(SimTime::from_micros(1_000_000));
        let mut engine = wl.build_engine();
        let first = drive_diagnosis_faulted(&mut engine, &config, None);
        assert_eq!(first.halted, Some(HaltReason::Crash));
        let ckpt1 = first.checkpoint.expect("first crash checkpoints");

        config.faults.tool_crash_at = Some(SimTime::from_micros(2_000_000));
        let mut engine = wl.build_engine();
        let second = drive_diagnosis_faulted(&mut engine, &config, Some(&ckpt1));
        assert_eq!(second.halted, Some(HaltReason::Crash));
        assert!(second.resumed_digest_ok, "replay diverged before 2nd crash");
        let ckpt2 = second.checkpoint.expect("second crash checkpoints");
        assert!(ckpt2.at > ckpt1.at);

        config.faults.tool_crash_at = Some(SimTime::from_micros(u64::MAX / 2));
        let mut engine = wl.build_engine();
        let done = drive_diagnosis_faulted(&mut engine, &config, Some(&ckpt2));
        assert!(done.checkpoint.is_none());
        assert!(done.resumed_digest_ok);
        assert_eq!(
            done.report.shg_rendering, reference.report.shg_rendering,
            "chained crash/resume diverged from the uncrashed run"
        );
    }

    #[test]
    fn audited_poison_prune_is_revoked_and_bottleneck_recovered() {
        let wl = hotspot_workload();
        let mut engine = wl.build_engine();
        let base = drive_diagnosis(&mut engine, &fast_config());
        let truth = base.bottleneck_set();
        assert!(!truth.is_empty());

        // Poison: prune every true pair, with provenance naming the liar.
        let mut directives = SearchDirectives::none();
        for (h, f) in &truth {
            directives.add_prune(Prune {
                hypothesis: Some(h.clone()),
                target: PruneTarget::Pair(f.clone()),
            });
        }
        directives.stamp_provenance("app/evil", 7);

        let mut config = fast_config().with_directives(directives);
        config.audit_budget = 64;
        let mut engine = wl.build_engine();
        let audited = drive_diagnosis(&mut engine, &config);
        let found = audited.bottleneck_set();
        for t in &truth {
            assert!(found.contains(t), "poisoned prune still hid {t:?}");
        }
        let revs = audited.revocations();
        assert!(!revs.is_empty(), "no revocations despite lying prunes");
        for r in revs {
            assert_eq!(r.source_run, "app/evil");
            assert_eq!(r.generation, 7);
            assert!(r.directive.starts_with("prune "));
        }
    }

    #[test]
    fn audited_raised_threshold_is_revoked_and_conclusions_flip() {
        let wl = hotspot_workload();
        let mut engine = wl.build_engine();
        let base = drive_diagnosis(&mut engine, &fast_config());
        let cpu_truth: Vec<_> = base
            .bottleneck_set()
            .into_iter()
            .filter(|(h, _)| h == "CPUbound")
            .collect();
        assert!(!cpu_truth.is_empty());

        // Poison: a near-1.0 CPUbound threshold hides every CPU
        // conclusion; the raised-threshold watch must catch the first
        // well-observed False that clears the default and revoke it.
        let mut directives = SearchDirectives::none();
        directives.add_threshold(ThresholdDirective {
            hypothesis: "CPUbound".into(),
            value: 0.99,
        });
        directives.stamp_provenance("app/evil", 3);
        let mut config = fast_config().with_directives(directives);
        config.audit_budget = 4;
        let mut engine = wl.build_engine();
        let audited = drive_diagnosis(&mut engine, &config);
        let found = audited.bottleneck_set();
        for t in &cpu_truth {
            assert!(found.contains(t), "raised threshold still hid {t:?}");
        }
        let revs = audited.revocations();
        assert_eq!(revs.len(), 1, "expected exactly the threshold revocation");
        assert_eq!(revs[0].source_run, "app/evil");
        assert_eq!(revs[0].directive, "threshold CPUbound 0.99");
        assert!(revs[0].observed > 0.2, "revocation carries the evidence");
    }

    #[test]
    fn honest_prune_audit_passes_and_keeps_the_directive() {
        let wl = hotspot_workload();
        let mut engine = wl.build_engine();
        let base = drive_diagnosis(&mut engine, &fast_config());
        let io_focus = base
            .outcomes
            .iter()
            .find(|o| o.hypothesis == "ExcessiveIOBlockingTime")
            .expect("base run tests the IO hypothesis")
            .focus
            .clone();

        // An honest prune: there is no IO bottleneck, so the probe
        // vindicates the directive and nothing is revoked.
        let mut directives = SearchDirectives::none();
        directives.add_prune(Prune {
            hypothesis: Some("ExcessiveIOBlockingTime".into()),
            target: PruneTarget::Pair(io_focus),
        });
        directives.stamp_provenance("app/honest", 2);
        let mut config = fast_config().with_directives(directives);
        config.audit_budget = 2;
        let mut engine = wl.build_engine();
        let r = drive_diagnosis(&mut engine, &config);
        assert!(r.revocations().is_empty());
        assert_eq!(r.audits.len(), 1);
        assert!(r.audits[0].passed);
        assert_eq!(r.audits[0].source_run, "app/honest");
        assert_eq!(r.audits[0].generation, 2);
    }

    #[test]
    fn budget_zero_is_bit_identical_to_unstamped_run() {
        let wl = hotspot_workload();
        let mut directives = SearchDirectives::none();
        directives.add_prune(Prune {
            hypothesis: Some("CPUbound".into()),
            target: PruneTarget::Resource(n("/Code/app.c/f1")),
        });
        let mut engine = wl.build_engine();
        let plain = drive_diagnosis(
            &mut engine,
            &fast_config().with_directives(directives.clone()),
        );

        // Same directives, provenance-stamped, audits armed at budget 0:
        // the report must be indistinguishable from the unstamped run.
        let mut stamped = directives.clone();
        stamped.stamp_provenance("app/run1", 5);
        let mut config = fast_config().with_directives(stamped);
        config.audit_budget = 0;
        let mut engine = wl.build_engine();
        let audited = drive_diagnosis(&mut engine, &config);
        assert_eq!(plain.outcomes, audited.outcomes);
        assert_eq!(plain.end_time, audited.end_time);
        assert_eq!(plain.pairs_tested, audited.pairs_tested);
        assert_eq!(plain.shg_rendering, audited.shg_rendering);
        assert!(audited.audits.is_empty());
    }
}
