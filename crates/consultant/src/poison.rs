//! Adversarial directive poisoning: the attack half of the trust loop.
//!
//! The shadow-audit machinery ([`crate::search`]) and the trust ledger
//! (`histpc-history::trust`) exist to catch historical guidance that
//! lies. This module *makes* guidance lie, deterministically, so the
//! `poison_soak` bench and the fault-injection suite can prove the
//! defenses work: given a harvested directive set and the run's known
//! true bottlenecks, it applies the history-poison rates of a
//! [`FaultPlan`] (`poison-prune`, `poison-threshold`, `stale-mapping`)
//! and stamps every injected or mangled directive with a recognizable
//! poisoned [`Provenance`] — which is exactly what lets the acceptance
//! gate check that every revocation in the final report names the
//! poisoned source run.
//!
//! All draws come from dedicated substreams of the plan's seed, so a
//! given (plan, truth) pair poisons identically on every run.

use crate::directive::{Provenance, Prune, PruneTarget, SearchDirectives, ThresholdDirective};
use histpc_faults::FaultPlan;
use histpc_resources::{Focus, ResourceName};
use histpc_sim::Rng;

/// Selection every stale-mapped directive is re-pointed at: a module
/// that exists in no workload, modelling a resource mapping carried
/// across a code version that renamed everything.
pub const STALE_SELECTION: &str = "/Code/__stale__.f";

/// What [`poison_directives`] did, for soak-harness logging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoisonSummary {
    /// Adversarial pair prunes injected (each hides a true bottleneck).
    pub prunes_injected: usize,
    /// Adversarial near-1.0 thresholds injected.
    pub thresholds_raised: usize,
    /// Harvested directives re-pointed at a nonexistent resource.
    pub mappings_staled: usize,
}

impl PoisonSummary {
    /// Total adversarial edits.
    pub fn total(&self) -> usize {
        self.prunes_injected + self.thresholds_raised + self.mappings_staled
    }
}

/// Applies a plan's history-poison rates to a harvested directive set.
///
/// * `poison-prune` — for each (hypothesis, focus) in `truth`, inject
///   an exact-pair prune with that probability: the most damaging lie
///   history can tell, silently hiding a true bottleneck.
/// * `poison-threshold` — for each distinct hypothesis in `truth`,
///   raise its threshold to 0.95 with that probability, so genuine
///   bottlenecks test false.
/// * `stale-mapping` — re-point each harvested directive's resource or
///   focus at [`STALE_SELECTION`] with that probability: a mapping
///   applied across a renamed code base. Stale prunes stop protecting
///   anything; stale priorities aim instrumentation at nothing.
///
/// Every injected or mangled directive carries
/// `Provenance::new(source_run, generation)`, so audits downstream can
/// hold the poisoned run accountable. The input set's own provenance
/// is preserved for untouched directives.
pub fn poison_directives(
    directives: &SearchDirectives,
    plan: &FaultPlan,
    truth: &[(String, Focus)],
    source_run: &str,
    generation: u64,
) -> (SearchDirectives, PoisonSummary) {
    let mut summary = PoisonSummary::default();
    let poisoned = Provenance::new(source_run, generation);
    let stale = ResourceName::parse(STALE_SELECTION).expect("stale selection parses");
    let root = Rng::new(plan.seed);
    let mut stale_rng = root.substream(11);
    let mut prune_rng = root.substream(12);
    let mut threshold_rng = root.substream(13);

    // Stage 1: stale-mapping rewrites over the harvested set.
    let mut out = SearchDirectives::none();
    for p in &directives.prunes {
        if plan.stale_mapping_rate > 0.0 && stale_rng.next_f64() < plan.stale_mapping_rate {
            let target = match &p.target {
                PruneTarget::Resource(_) => PruneTarget::Resource(stale.clone()),
                PruneTarget::Pair(f) => PruneTarget::Pair(f.with_selection(stale.clone())),
            };
            let mangled = Prune {
                hypothesis: p.hypothesis.clone(),
                target,
            };
            let line = mangled.line();
            out.add_prune(mangled);
            out.set_provenance(line, poisoned.clone());
            summary.mappings_staled += 1;
        } else {
            out.add_prune(p.clone());
        }
    }
    for p in &directives.priorities {
        if plan.stale_mapping_rate > 0.0 && stale_rng.next_f64() < plan.stale_mapping_rate {
            let mut mangled = p.clone();
            mangled.focus = p.focus.with_selection(stale.clone());
            let line = mangled.line();
            out.add_priority(mangled);
            out.set_provenance(line, poisoned.clone());
            summary.mappings_staled += 1;
        } else {
            out.add_priority(p.clone());
        }
    }
    for t in &directives.thresholds {
        out.add_threshold(t.clone());
    }
    out.adopt_provenance(directives);

    // Stage 2: adversarial pair prunes over the true bottlenecks.
    if plan.poison_prune_rate > 0.0 {
        for (hyp, focus) in truth {
            if prune_rng.next_f64() >= plan.poison_prune_rate {
                continue;
            }
            let prune = Prune {
                hypothesis: Some(hyp.clone()),
                target: PruneTarget::Pair(focus.clone()),
            };
            if out.prunes.contains(&prune) {
                continue;
            }
            let line = prune.line();
            out.add_prune(prune);
            out.set_provenance(line, poisoned.clone());
            summary.prunes_injected += 1;
        }
    }

    // Stage 3: adversarial thresholds per bottlenecked hypothesis.
    if plan.poison_threshold_rate > 0.0 {
        let mut seen = Vec::new();
        for (hyp, _) in truth {
            if seen.contains(hyp) {
                continue;
            }
            seen.push(hyp.clone());
            if threshold_rng.next_f64() >= plan.poison_threshold_rate {
                continue;
            }
            let t = ThresholdDirective {
                hypothesis: hyp.clone(),
                value: 0.95,
            };
            let line = t.line();
            out.add_threshold(t);
            out.set_provenance(line, poisoned.clone());
            summary.thresholds_raised += 1;
        }
    }

    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directive::PriorityLevel;
    use crate::PriorityDirective;

    fn wp() -> Focus {
        Focus::whole_program(["Code", "Machine", "Process", "SyncObject"])
    }

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).unwrap()
    }

    fn truth() -> Vec<(String, Focus)> {
        vec![
            ("CPUbound".into(), wp().with_selection(n("/Code/diff.f"))),
            (
                "ExcessiveSyncWaitingTime".into(),
                wp().with_selection(n("/Code/exchng1.f")),
            ),
        ]
    }

    #[test]
    fn zero_rates_are_an_identity() {
        let mut d = SearchDirectives::none();
        d.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: wp(),
            level: PriorityLevel::High,
        });
        d.stamp_provenance("app/clean", 2);
        let (out, summary) = poison_directives(&d, &FaultPlan::none(), &truth(), "app/evil", 9);
        assert_eq!(summary.total(), 0);
        assert_eq!(out.to_text(), d.to_text());
        assert_eq!(out.to_annotated_text(), d.to_annotated_text());
    }

    #[test]
    fn full_rate_prunes_every_true_bottleneck_with_poisoned_provenance() {
        let mut plan = FaultPlan::none();
        plan.poison_prune_rate = 1.0;
        let (out, summary) =
            poison_directives(&SearchDirectives::none(), &plan, &truth(), "app/evil", 9);
        assert_eq!(summary.prunes_injected, 2);
        for (hyp, focus) in truth() {
            assert!(out.is_pruned(&hyp, &focus));
            let p = out.prune_matching(&hyp, &focus).unwrap();
            assert_eq!(
                out.provenance_of(&p.line()),
                Some(&Provenance::new("app/evil", 9))
            );
        }
    }

    #[test]
    fn thresholds_raised_once_per_hypothesis() {
        let mut plan = FaultPlan::none();
        plan.poison_threshold_rate = 1.0;
        let many_truth = vec![truth()[0].clone(), truth()[0].clone(), truth()[1].clone()];
        let (out, summary) =
            poison_directives(&SearchDirectives::none(), &plan, &many_truth, "app/evil", 1);
        assert_eq!(summary.thresholds_raised, 2);
        assert_eq!(out.threshold_for("CPUbound"), Some(0.95));
        assert_eq!(out.threshold_for("ExcessiveSyncWaitingTime"), Some(0.95));
    }

    #[test]
    fn stale_mapping_points_directives_nowhere_and_is_deterministic() {
        let mut d = SearchDirectives::none();
        d.add_prune(Prune {
            hypothesis: Some("CPUbound".into()),
            target: PruneTarget::Resource(n("/Code/diff.f")),
        });
        d.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: wp().with_selection(n("/Code/diff.f")),
            level: PriorityLevel::High,
        });
        let mut plan = FaultPlan::none();
        plan.stale_mapping_rate = 1.0;
        plan.seed = 5;
        let (a, summary) = poison_directives(&d, &plan, &[], "app/evil", 3);
        assert_eq!(summary.mappings_staled, 2);
        // The original pruned subtree is no longer protected...
        assert!(!a.is_pruned("CPUbound", &wp().with_selection(n("/Code/diff.f/diff"))));
        // ...and the mangled directives point at the stale module.
        assert!(a.is_pruned("CPUbound", &wp().with_selection(n(STALE_SELECTION))));
        let (b, _) = poison_directives(&d, &plan, &[], "app/evil", 3);
        assert_eq!(a.to_annotated_text(), b.to_annotated_text());
    }
}
