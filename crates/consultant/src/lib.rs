//! `histpc-consultant`: the Performance Consultant.
//!
//! An implementation of Paradyn's online automated bottleneck search
//! (paper §2), extended with the paper's contribution: **search
//! directives** — prunes, priorities and thresholds harvested from
//! historical performance data (§3) — that steer the search.
//!
//! The search walks a space of (hypothesis, focus) pairs organized as the
//! **Search History Graph**: starting from
//! `(TopLevelHypothesis, WholeProgram)`, true nodes are refined along two
//! axes — a more specific hypothesis, or a more specific focus (one edge
//! down one resource hierarchy). Every tested node requires live
//! instrumentation, whose cost is modelled and throttled exactly as in
//! Paradyn: expansion halts when instrumentation cost crosses a critical
//! threshold and resumes when deletions bring it back down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directive;
pub mod hypothesis;
pub mod poison;
pub mod report;
pub mod search;
pub mod shg;

pub use directive::{
    Directive, LocatedDirective, PriorityDirective, PriorityLevel, Provenance, Prune, PruneTarget,
    SearchDirectives, ThresholdDirective,
};
pub use hypothesis::{Hypothesis, HypothesisId, HypothesisTree};
pub use poison::{poison_directives, PoisonSummary};
pub use report::{DiagnosisReport, NodeOutcome, Outcome};
pub use search::{
    drive_diagnosis, drive_diagnosis_faulted, Consultant, DegradedRun, DriveHooks, HaltReason,
    SearchCheckpoint, SearchConfig,
};
pub use shg::{NodeState, Shg, ShgNodeId};
