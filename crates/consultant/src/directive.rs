//! Search directives: prunes, priorities, and thresholds (paper §3.1).
//!
//! * **Pruning directives** instruct the tool to ignore a subtree of a
//!   resource hierarchy (or one exact focus) in its evaluation of a
//!   specific hypothesis — or of all hypotheses (`*`).
//! * **Priorities** assign High or Low importance to specific
//!   hypothesis/focus pairs; High pairs are instrumented at search start
//!   and are persistent, Low pairs are tested after their Medium siblings.
//! * **Thresholds** replace a hypothesis's default test level.
//!
//! The textual form is line-oriented, one directive per line, matching
//! the spirit of the paper's input files:
//!
//! ```text
//! # comment
//! prune * resource /SyncObject
//! prune CPUbound resource /Code/diff.f/diff
//! prune ExcessiveSyncWaitingTime pair </Code/oned.f,/Machine,/Process,/SyncObject>
//! priority high ExcessiveSyncWaitingTime </Code/exchng1.f/exchng1,/Machine,/Process,/SyncObject>
//! priority low CPUbound </Code/diff.f,/Machine,/Process,/SyncObject>
//! threshold ExcessiveSyncWaitingTime 0.12
//! ```

use histpc_resources::diag::{did_you_mean, tokenize, Diagnostic, Span, MEMORY_FILE};
use histpc_resources::{Focus, ResourceName};
use std::collections::HashMap;

/// Priority of a hypothesis/focus pair in the search order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityLevel {
    /// Tested after Medium siblings.
    Low,
    /// The default.
    Medium,
    /// Instrumented at search start; persistent for the whole run.
    High,
}

impl PriorityLevel {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            PriorityLevel::High => "high",
            PriorityLevel::Medium => "medium",
            PriorityLevel::Low => "low",
        }
    }

    /// Parses the lowercase name.
    pub fn from_name(s: &str) -> Option<PriorityLevel> {
        match s {
            "high" => Some(PriorityLevel::High),
            "medium" => Some(PriorityLevel::Medium),
            "low" => Some(PriorityLevel::Low),
            _ => None,
        }
    }
}

/// Where a directive came from: the stored run whose extraction
/// produced it and the store manifest generation current at harvest
/// time. Provenance rides beside the directives in a side table keyed
/// by canonical line (see [`SearchDirectives::provenance_of`]) so that
/// directive equality, hashing, and `to_text` never see it — a
/// provenance-stamped set serializes byte-identically to an unstamped
/// one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Provenance {
    /// Source run id, `app/label` (daemon harvests prefix the tenant).
    pub source_run: String,
    /// Store manifest generation at harvest time (0 for v0 stores).
    pub generation: u64,
}

impl Provenance {
    /// A provenance marker.
    pub fn new(source_run: impl Into<String>, generation: u64) -> Provenance {
        Provenance {
            source_run: source_run.into(),
            generation,
        }
    }

    /// Stable `source@generation` rendering, as written by
    /// [`SearchDirectives::to_annotated_text`].
    pub fn tag(&self) -> String {
        format!("{}@{}", self.source_run, self.generation)
    }

    /// Parses the `source@generation` form (the generation is the part
    /// after the *last* `@`, so source run ids may contain `@`).
    pub fn parse_tag(s: &str) -> Option<Provenance> {
        let (source, gen) = s.rsplit_once('@')?;
        if source.is_empty() {
            return None;
        }
        Some(Provenance {
            source_run: source.to_string(),
            generation: gen.parse().ok()?,
        })
    }
}

/// What a pruning directive removes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PruneTarget {
    /// A resource subtree: any focus whose selection descends into the
    /// subtree is pruned. Pruning a hierarchy root (e.g. `/Machine`)
    /// blocks refinement *into* that hierarchy while keeping foci whose
    /// selection is the root itself.
    Resource(ResourceName),
    /// One exact focus.
    Pair(Focus),
}

/// A pruning directive.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Prune {
    /// Hypothesis name the prune applies to; `None` means all hypotheses
    /// (written `*`).
    pub hypothesis: Option<String>,
    /// What is pruned.
    pub target: PruneTarget,
}

impl Prune {
    /// True if this prune removes (hypothesis `hyp`, focus `f`).
    pub fn matches(&self, hyp: &str, f: &Focus) -> bool {
        if let Some(h) = &self.hypothesis {
            if h != hyp {
                return false;
            }
        }
        match &self.target {
            PruneTarget::Pair(p) => p == f,
            PruneTarget::Resource(r) => match f.selection(r.hierarchy()) {
                None => false,
                Some(sel) => {
                    if r.is_root() {
                        // Pruning a hierarchy root blocks descent into it,
                        // not the unconstrained root selection itself.
                        r.is_ancestor_of(sel)
                    } else {
                        r.is_prefix_of(sel)
                    }
                }
            },
        }
    }

    /// The canonical `prune ...` line this directive serializes to (no
    /// trailing newline) — the stable key for provenance and trust
    /// bookkeeping.
    pub fn line(&self) -> String {
        let hyp = self.hypothesis.as_deref().unwrap_or("*");
        match &self.target {
            PruneTarget::Resource(r) => format!("prune {hyp} resource {r}"),
            PruneTarget::Pair(f) => format!("prune {hyp} pair {f}"),
        }
    }
}

/// A priority directive for one hypothesis/focus pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PriorityDirective {
    /// Hypothesis name.
    pub hypothesis: String,
    /// Exact focus.
    pub focus: Focus,
    /// High or Low (Medium is the default and never written).
    pub level: PriorityLevel,
}

impl PriorityDirective {
    /// The canonical `priority ...` line (no trailing newline).
    pub fn line(&self) -> String {
        format!(
            "priority {} {} {}",
            self.level.name(),
            self.hypothesis,
            self.focus
        )
    }
}

/// A threshold directive for one hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdDirective {
    /// Hypothesis name.
    pub hypothesis: String,
    /// Fraction of execution time (0..1).
    pub value: f64,
}

impl ThresholdDirective {
    /// The canonical `threshold ...` line (no trailing newline).
    pub fn line(&self) -> String {
        format!("threshold {} {}", self.hypothesis, self.value)
    }
}

/// A complete set of search directives.
#[derive(Debug, Clone, Default)]
pub struct SearchDirectives {
    /// Pruning directives.
    pub prunes: Vec<Prune>,
    /// Priority directives.
    pub priorities: Vec<PriorityDirective>,
    /// Threshold directives.
    pub thresholds: Vec<ThresholdDirective>,
    /// Index for exact-pair priority lookups.
    priority_index: HashMap<(String, Focus), PriorityLevel>,
    /// Provenance side table, keyed by canonical directive line. Never
    /// consulted by equality or serialization (`to_text`): a stamped
    /// set and an unstamped one are byte-identical on disk unless the
    /// caller asks for [`to_annotated_text`](Self::to_annotated_text).
    provenance: HashMap<String, Provenance>,
}

impl SearchDirectives {
    /// An empty directive set (the unmodified Performance Consultant).
    pub fn none() -> SearchDirectives {
        SearchDirectives::default()
    }

    /// Adds a prune.
    pub fn add_prune(&mut self, p: Prune) {
        self.prunes.push(p);
    }

    /// Adds a priority directive (replacing an earlier one for the same
    /// pair).
    pub fn add_priority(&mut self, p: PriorityDirective) {
        self.priority_index
            .insert((p.hypothesis.clone(), p.focus.clone()), p.level);
        self.priorities
            .retain(|q| !(q.hypothesis == p.hypothesis && q.focus == p.focus));
        self.priorities.push(p);
    }

    /// Adds a threshold directive (replacing an earlier one for the same
    /// hypothesis).
    pub fn add_threshold(&mut self, t: ThresholdDirective) {
        self.thresholds.retain(|q| q.hypothesis != t.hypothesis);
        self.thresholds.push(t);
    }

    /// True if (hypothesis, focus) is pruned.
    pub fn is_pruned(&self, hyp: &str, focus: &Focus) -> bool {
        self.prunes.iter().any(|p| p.matches(hyp, focus))
    }

    /// The first prune that removes (hypothesis, focus), if any — the
    /// one a shadow audit would hold accountable.
    pub fn prune_matching(&self, hyp: &str, focus: &Focus) -> Option<&Prune> {
        self.prunes.iter().find(|p| p.matches(hyp, focus))
    }

    /// Removes the directive serializing to `line`, along with its
    /// provenance entry. Returns true if anything was removed. This is
    /// how a shadow audit **revokes** a convicted directive mid-search:
    /// once removed, `is_pruned`/`threshold_for` stop honouring it and
    /// the consultant can reopen the subtree it was hiding.
    pub fn remove_by_line(&mut self, line: &str) -> bool {
        let before = self.len();
        self.prunes.retain(|p| p.line() != line);
        let mut removed_pairs = Vec::new();
        self.priorities.retain(|p| {
            if p.line() == line {
                removed_pairs.push((p.hypothesis.clone(), p.focus.clone()));
                false
            } else {
                true
            }
        });
        for key in removed_pairs {
            self.priority_index.remove(&key);
        }
        self.thresholds.retain(|t| t.line() != line);
        self.provenance.remove(line);
        self.len() != before
    }

    /// Records where the directive serializing to `line` came from.
    pub fn set_provenance(&mut self, line: impl Into<String>, p: Provenance) {
        self.provenance.insert(line.into(), p);
    }

    /// The recorded provenance of the directive serializing to `line`.
    pub fn provenance_of(&self, line: &str) -> Option<&Provenance> {
        self.provenance.get(line)
    }

    /// Stamps every directive that does not yet carry provenance with
    /// `source_run@generation`. Harvest calls this so each applied
    /// prune/priority/threshold can name the run that caused it.
    pub fn stamp_provenance(&mut self, source_run: &str, generation: u64) {
        for line in self.lines() {
            self.provenance
                .entry(line)
                .or_insert_with(|| Provenance::new(source_run, generation));
        }
    }

    /// Copies provenance from `from` for every directive present in
    /// `self` that lacks it — used after filtering/merging a stamped
    /// set so the survivors keep naming their source runs.
    pub fn adopt_provenance(&mut self, from: &SearchDirectives) {
        for line in self.lines() {
            if let Some(p) = from.provenance.get(&line) {
                self.provenance.entry(line).or_insert_with(|| p.clone());
            }
        }
    }

    /// Canonical lines of every directive, in serialization order.
    pub fn lines(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.prunes.iter().map(Prune::line));
        out.extend(self.priorities.iter().map(PriorityDirective::line));
        out.extend(self.thresholds.iter().map(ThresholdDirective::line));
        out
    }

    /// The priority of (hypothesis, focus); Medium unless directed.
    pub fn priority_of(&self, hyp: &str, focus: &Focus) -> PriorityLevel {
        self.priority_index
            .get(&(hyp.to_string(), focus.clone()))
            .copied()
            .unwrap_or(PriorityLevel::Medium)
    }

    /// The directed threshold for a hypothesis, if any.
    pub fn threshold_for(&self, hyp: &str) -> Option<f64> {
        self.thresholds
            .iter()
            .find(|t| t.hypothesis == hyp)
            .map(|t| t.value)
    }

    /// All High-priority pairs (instrumented at search start).
    pub fn high_priority_pairs(&self) -> impl Iterator<Item = &PriorityDirective> {
        self.priorities
            .iter()
            .filter(|p| p.level == PriorityLevel::High)
    }

    /// Total number of directives.
    pub fn len(&self) -> usize {
        self.prunes.len() + self.priorities.len() + self.thresholds.len()
    }

    /// True if the set holds no directives.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges another directive set into this one (later wins on
    /// conflicting priorities/thresholds).
    pub fn merge(&mut self, other: &SearchDirectives) {
        for p in &other.prunes {
            if !self.prunes.contains(p) {
                self.prunes.push(p.clone());
            }
        }
        for p in &other.priorities {
            self.add_priority(p.clone());
        }
        for t in &other.thresholds {
            self.add_threshold(t.clone());
        }
        self.adopt_provenance(other);
    }

    /// Serializes to the line-oriented text form. Provenance is never
    /// written — harvest baselines, fact-cache keys, and conflict-pass
    /// dedupe lines all compare this output byte-for-byte.
    pub fn to_text(&self) -> String {
        self.render(false)
    }

    /// Like [`to_text`](Self::to_text) but appends ` from source@gen`
    /// to every directive with recorded provenance. The output is
    /// still parseable: [`parse`](Self::parse) recovers both the
    /// directives and their provenance.
    pub fn to_annotated_text(&self) -> String {
        self.render(true)
    }

    fn render(&self, annotated: bool) -> String {
        let mut out = String::from("# histpc search directives v1\n");
        let mut push = |line: String, prov: &HashMap<String, Provenance>| match prov
            .get(&line)
            .filter(|_| annotated)
        {
            Some(p) => out.push_str(&format!("{line} from {}\n", p.tag())),
            None => {
                out.push_str(&line);
                out.push('\n');
            }
        };
        for p in &self.prunes {
            push(p.line(), &self.provenance);
        }
        for p in &self.priorities {
            push(p.line(), &self.provenance);
        }
        for t in &self.thresholds {
            push(t.line(), &self.provenance);
        }
        out
    }

    /// Parses the line-oriented text form. Unknown lines produce errors;
    /// blank lines and `#` comments are skipped. On failure the first
    /// error-severity [`Diagnostic`] is returned; use [`parse_with_spans`]
    /// to recover all diagnostics at once.
    pub fn parse(text: &str) -> Result<SearchDirectives, Diagnostic> {
        let (located, diags) = parse_with_spans(text, MEMORY_FILE);
        match diags.into_iter().find(|d| d.is_error()) {
            Some(err) => Err(err),
            None => Ok(SearchDirectives::from_located(&located)),
        }
    }

    /// Builds a directive set from located directives (spans discarded,
    /// parsed provenance annotations preserved).
    pub fn from_located(located: &[LocatedDirective]) -> SearchDirectives {
        let mut out = SearchDirectives::none();
        for l in located {
            match &l.directive {
                Directive::Prune(p) => out.add_prune(p.clone()),
                Directive::Priority(p) => out.add_priority(p.clone()),
                Directive::Threshold(t) => out.add_threshold(t.clone()),
            }
            if let Some(p) = &l.provenance {
                out.set_provenance(l.directive.line(), p.clone());
            }
        }
        out
    }
}

/// One directive of any kind, as parsed from a single line.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// A `prune` line.
    Prune(Prune),
    /// A `priority` line.
    Priority(PriorityDirective),
    /// A `threshold` line.
    Threshold(ThresholdDirective),
}

impl Directive {
    /// The hypothesis this directive constrains, if named (`*` prunes
    /// apply to every hypothesis and return `None`).
    pub fn hypothesis(&self) -> Option<&str> {
        match self {
            Directive::Prune(p) => p.hypothesis.as_deref(),
            Directive::Priority(p) => Some(&p.hypothesis),
            Directive::Threshold(t) => Some(&t.hypothesis),
        }
    }

    /// The canonical line this directive serializes to.
    pub fn line(&self) -> String {
        match self {
            Directive::Prune(p) => p.line(),
            Directive::Priority(p) => p.line(),
            Directive::Threshold(t) => t.line(),
        }
    }
}

/// A parsed directive together with the source spans linters need to
/// point at: the whole directive, its hypothesis token, and its value
/// token(s) (resource, focus, or threshold number).
#[derive(Debug, Clone, PartialEq)]
pub struct LocatedDirective {
    /// The directive itself.
    pub directive: Directive,
    /// Span of the whole directive (trimmed line content).
    pub span: Span,
    /// Span of the hypothesis token (the `*` token for wildcard prunes).
    pub hypothesis_span: Span,
    /// Span of the target/value part of the line.
    pub value_span: Span,
    /// Provenance parsed from a trailing ` from source@gen` annotation.
    pub provenance: Option<Provenance>,
}

const DIRECTIVE_KINDS: [&str; 3] = ["prune", "priority", "threshold"];

/// Parses a directive file with error recovery: every line that parses
/// contributes a [`LocatedDirective`], every line that does not
/// contributes an error-severity [`Diagnostic`] (codes `HL001`, `HL003`,
/// `HL007`), and parsing always continues to the end of the input.
pub fn parse_with_spans(text: &str, file: &str) -> (Vec<LocatedDirective>, Vec<Diagnostic>) {
    let mut located = Vec::new();
    let mut diags = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_line(raw, lineno, file) {
            Ok(dir) => located.push(dir),
            Err(diag) => diags.push(diag),
        }
    }
    (located, diags)
}

/// Splits a trailing ` from source@gen` provenance annotation off a
/// token list. Only splits when the annotation actually parses, so a
/// hypothesis or resource that merely resembles one is left alone.
fn split_provenance<'a, 'b>(
    tokens: &'b [histpc_resources::diag::Token<'a>],
) -> (&'b [histpc_resources::diag::Token<'a>], Option<Provenance>) {
    if tokens.len() >= 4 && tokens[tokens.len() - 2].text == "from" {
        if let Some(p) = Provenance::parse_tag(tokens[tokens.len() - 1].text) {
            return (&tokens[..tokens.len() - 2], Some(p));
        }
    }
    (tokens, None)
}

/// Parses one non-blank, non-comment directive line.
fn parse_line(raw: &str, lineno: usize, file: &str) -> Result<LocatedDirective, Diagnostic> {
    let tokens = tokenize(raw);
    let (tokens, provenance) = split_provenance(&tokens);
    let kind = tokens[0];
    let line_span = Span::new(
        lineno,
        kind.col_start,
        tokens.last().expect("non-empty line").col_end,
    );
    // Span pointing just past the last token, for "missing X" errors.
    let eol = Span::new(lineno, line_span.col_end, line_span.col_end + 1);
    let missing = |what: &str| {
        Diagnostic::error(
            "HL001",
            format!("{} directive is missing {what}", kind.text),
        )
        .with_file(file)
        .with_span(eol)
    };
    match kind.text {
        "prune" => {
            let hyp = *tokens.get(1).ok_or_else(|| missing("a hypothesis name"))?;
            let target_kind = *tokens.get(2).ok_or_else(|| missing("a target kind"))?;
            let rest = &tokens[3..];
            if rest.is_empty() {
                return Err(missing("a target"));
            }
            let value_span = Span::new(lineno, rest[0].col_start, rest[rest.len() - 1].col_end);
            let rest_text = rest.iter().map(|t| t.text).collect::<Vec<_>>().join(" ");
            let target = match target_kind.text {
                "resource" => {
                    PruneTarget::Resource(ResourceName::parse(&rest_text).map_err(|e| {
                        Diagnostic::error("HL007", format!("malformed resource name: {e}"))
                            .with_file(file)
                            .with_span(value_span)
                    })?)
                }
                "pair" => PruneTarget::Pair(Focus::parse(&rest_text).map_err(|e| {
                    Diagnostic::error("HL007", format!("malformed focus: {e}"))
                        .with_file(file)
                        .with_span(value_span)
                })?),
                other => {
                    let mut d = Diagnostic::error(
                        "HL001",
                        format!("prune target kind must be `resource` or `pair`, found `{other}`"),
                    )
                    .with_file(file)
                    .with_span(target_kind.span(lineno));
                    if let Some(s) = did_you_mean(other, ["resource", "pair"]) {
                        d = d.with_suggestion(format!("did you mean `{s}`?"));
                    }
                    return Err(d);
                }
            };
            Ok(LocatedDirective {
                directive: Directive::Prune(Prune {
                    hypothesis: (hyp.text != "*").then(|| hyp.text.to_string()),
                    target,
                }),
                span: line_span,
                hypothesis_span: hyp.span(lineno),
                value_span,
                provenance,
            })
        }
        "priority" => {
            let level_tok = *tokens.get(1).ok_or_else(|| missing("a priority level"))?;
            let level = PriorityLevel::from_name(level_tok.text).ok_or_else(|| {
                let mut d = Diagnostic::error(
                    "HL001",
                    format!(
                        "priority level must be `high`, `medium`, or `low`, found `{}`",
                        level_tok.text
                    ),
                )
                .with_file(file)
                .with_span(level_tok.span(lineno));
                if let Some(s) = did_you_mean(level_tok.text, ["high", "medium", "low"]) {
                    d = d.with_suggestion(format!("did you mean `{s}`?"));
                }
                d
            })?;
            let hyp = *tokens.get(2).ok_or_else(|| missing("a hypothesis name"))?;
            let rest = &tokens[3..];
            if rest.is_empty() {
                return Err(missing("a focus"));
            }
            let value_span = Span::new(lineno, rest[0].col_start, rest[rest.len() - 1].col_end);
            let rest_text = rest.iter().map(|t| t.text).collect::<Vec<_>>().join(" ");
            let focus = Focus::parse(&rest_text).map_err(|e| {
                Diagnostic::error("HL007", format!("malformed focus: {e}"))
                    .with_file(file)
                    .with_span(value_span)
            })?;
            Ok(LocatedDirective {
                directive: Directive::Priority(PriorityDirective {
                    hypothesis: hyp.text.to_string(),
                    focus,
                    level,
                }),
                span: line_span,
                hypothesis_span: hyp.span(lineno),
                value_span,
                provenance,
            })
        }
        "threshold" => {
            let hyp = *tokens.get(1).ok_or_else(|| missing("a hypothesis name"))?;
            let value_tok = *tokens.get(2).ok_or_else(|| missing("a value"))?;
            let value: f64 = value_tok.text.parse().map_err(|_| {
                Diagnostic::error(
                    "HL001",
                    format!("threshold value `{}` is not a number", value_tok.text),
                )
                .with_file(file)
                .with_span(value_tok.span(lineno))
            })?;
            if !(value > 0.0 && value <= 1.0) {
                return Err(Diagnostic::error(
                    "HL003",
                    format!("threshold {value} is outside (0, 1]"),
                )
                .with_file(file)
                .with_span(value_tok.span(lineno))
                .with_suggestion(
                    "thresholds are fractions of execution time; use a value in (0, 1]",
                ));
            }
            Ok(LocatedDirective {
                directive: Directive::Threshold(ThresholdDirective {
                    hypothesis: hyp.text.to_string(),
                    value,
                }),
                span: line_span,
                hypothesis_span: hyp.span(lineno),
                value_span: value_tok.span(lineno),
                provenance,
            })
        }
        other => {
            let mut d = Diagnostic::error("HL001", format!("unknown directive kind `{other}`"))
                .with_file(file)
                .with_span(kind.span(lineno));
            if let Some(s) = did_you_mean(other, DIRECTIVE_KINDS) {
                d = d.with_suggestion(format!("did you mean `{s}`?"));
            }
            Err(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp() -> Focus {
        Focus::whole_program(["Code", "Machine", "Process", "SyncObject"])
    }

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).unwrap()
    }

    #[test]
    fn resource_prune_matches_subtree() {
        let p = Prune {
            hypothesis: None,
            target: PruneTarget::Resource(n("/Code/diff.f")),
        };
        let f_mod = wp().with_selection(n("/Code/diff.f"));
        let f_func = wp().with_selection(n("/Code/diff.f/diff"));
        let f_other = wp().with_selection(n("/Code/oned.f"));
        assert!(p.matches("CPUbound", &f_mod));
        assert!(p.matches("CPUbound", &f_func));
        assert!(!p.matches("CPUbound", &f_other));
        assert!(!p.matches("CPUbound", &wp()));
    }

    #[test]
    fn root_prune_blocks_descent_only() {
        // Pruning /Machine (redundant hierarchy) keeps the root selection
        // but blocks any refinement into the hierarchy.
        let p = Prune {
            hypothesis: None,
            target: PruneTarget::Resource(n("/Machine")),
        };
        assert!(!p.matches("CPUbound", &wp()));
        assert!(p.matches("CPUbound", &wp().with_selection(n("/Machine/node01"))));
    }

    #[test]
    fn hypothesis_scoped_prune() {
        // The paper's general prune: /SyncObject from all but sync
        // hypotheses.
        let p = Prune {
            hypothesis: Some("CPUbound".into()),
            target: PruneTarget::Resource(n("/SyncObject")),
        };
        let f = wp().with_selection(n("/SyncObject/Message"));
        assert!(p.matches("CPUbound", &f));
        assert!(!p.matches("ExcessiveSyncWaitingTime", &f));
    }

    #[test]
    fn pair_prune_is_exact() {
        let f = wp().with_selection(n("/Code/oned.f"));
        let p = Prune {
            hypothesis: Some("CPUbound".into()),
            target: PruneTarget::Pair(f.clone()),
        };
        assert!(p.matches("CPUbound", &f));
        assert!(!p.matches("CPUbound", &f.with_selection(n("/Code/oned.f/main"))));
    }

    #[test]
    fn priority_lookup_defaults_to_medium() {
        let mut d = SearchDirectives::none();
        let f = wp().with_selection(n("/Code/oned.f"));
        d.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: f.clone(),
            level: PriorityLevel::High,
        });
        assert_eq!(d.priority_of("CPUbound", &f), PriorityLevel::High);
        assert_eq!(d.priority_of("CPUbound", &wp()), PriorityLevel::Medium);
        assert_eq!(
            d.priority_of("ExcessiveSyncWaitingTime", &f),
            PriorityLevel::Medium
        );
    }

    #[test]
    fn add_priority_replaces_existing() {
        let mut d = SearchDirectives::none();
        let f = wp();
        d.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: f.clone(),
            level: PriorityLevel::High,
        });
        d.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: f.clone(),
            level: PriorityLevel::Low,
        });
        assert_eq!(d.priorities.len(), 1);
        assert_eq!(d.priority_of("CPUbound", &f), PriorityLevel::Low);
    }

    #[test]
    fn threshold_replacement_and_lookup() {
        let mut d = SearchDirectives::none();
        d.add_threshold(ThresholdDirective {
            hypothesis: "ExcessiveSyncWaitingTime".into(),
            value: 0.20,
        });
        d.add_threshold(ThresholdDirective {
            hypothesis: "ExcessiveSyncWaitingTime".into(),
            value: 0.12,
        });
        assert_eq!(d.threshold_for("ExcessiveSyncWaitingTime"), Some(0.12));
        assert_eq!(d.threshold_for("CPUbound"), None);
        assert_eq!(d.thresholds.len(), 1);
    }

    #[test]
    fn text_roundtrip() {
        let mut d = SearchDirectives::none();
        d.add_prune(Prune {
            hypothesis: None,
            target: PruneTarget::Resource(n("/SyncObject")),
        });
        d.add_prune(Prune {
            hypothesis: Some("CPUbound".into()),
            target: PruneTarget::Pair(wp()),
        });
        d.add_priority(PriorityDirective {
            hypothesis: "ExcessiveSyncWaitingTime".into(),
            focus: wp().with_selection(n("/Code/exchng1.f/exchng1")),
            level: PriorityLevel::High,
        });
        d.add_threshold(ThresholdDirective {
            hypothesis: "ExcessiveSyncWaitingTime".into(),
            value: 0.12,
        });
        let text = d.to_text();
        let parsed = SearchDirectives::parse(&text).unwrap();
        assert_eq!(parsed.prunes, d.prunes);
        assert_eq!(parsed.priorities, d.priorities);
        assert_eq!(parsed.thresholds.len(), 1);
        assert_eq!(parsed.threshold_for("ExcessiveSyncWaitingTime"), Some(0.12));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "frobnicate all the things",
            "prune",
            "prune * gadget /Code",
            "priority sideways CPUbound </Code>",
            "threshold CPUbound notanumber",
            "threshold CPUbound 3.5",
        ] {
            assert!(SearchDirectives::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let d = SearchDirectives::parse("# header\n\n  \nthreshold CPUbound 0.3\n").unwrap();
        assert_eq!(d.threshold_for("CPUbound"), Some(0.3));
    }

    #[test]
    fn merge_unions_and_overrides() {
        let mut a = SearchDirectives::none();
        a.add_threshold(ThresholdDirective {
            hypothesis: "CPUbound".into(),
            value: 0.2,
        });
        a.add_prune(Prune {
            hypothesis: None,
            target: PruneTarget::Resource(n("/Machine")),
        });
        let mut b = SearchDirectives::none();
        b.add_threshold(ThresholdDirective {
            hypothesis: "CPUbound".into(),
            value: 0.1,
        });
        b.add_prune(Prune {
            hypothesis: None,
            target: PruneTarget::Resource(n("/Machine")),
        });
        a.merge(&b);
        assert_eq!(a.threshold_for("CPUbound"), Some(0.1));
        assert_eq!(a.prunes.len(), 1);
    }

    #[test]
    fn provenance_is_invisible_to_text_and_survives_annotation() {
        let mut d = SearchDirectives::none();
        d.add_prune(Prune {
            hypothesis: Some("CPUbound".into()),
            target: PruneTarget::Resource(n("/Code/diff.f")),
        });
        d.add_threshold(ThresholdDirective {
            hypothesis: "CPUbound".into(),
            value: 0.25,
        });
        let plain = d.to_text();
        d.stamp_provenance("app/run1", 7);
        // Stamping never perturbs the canonical serialization.
        assert_eq!(d.to_text(), plain);
        let annotated = d.to_annotated_text();
        assert!(annotated.contains("prune CPUbound resource /Code/diff.f from app/run1@7"));
        assert!(annotated.contains("threshold CPUbound 0.25 from app/run1@7"));
        // Round trip: directives and provenance both come back.
        let parsed = SearchDirectives::parse(&annotated).unwrap();
        assert_eq!(parsed.prunes, d.prunes);
        assert_eq!(
            parsed.provenance_of("prune CPUbound resource /Code/diff.f"),
            Some(&Provenance::new("app/run1", 7))
        );
        // And the canonical text of the round-tripped set is unchanged.
        assert_eq!(parsed.to_text(), plain);
    }

    #[test]
    fn stamp_does_not_overwrite_existing_provenance() {
        let mut d = SearchDirectives::none();
        d.add_threshold(ThresholdDirective {
            hypothesis: "CPUbound".into(),
            value: 0.3,
        });
        d.set_provenance("threshold CPUbound 0.3", Provenance::new("app/old", 1));
        d.stamp_provenance("app/new", 9);
        assert_eq!(
            d.provenance_of("threshold CPUbound 0.3"),
            Some(&Provenance::new("app/old", 1))
        );
    }

    #[test]
    fn merge_adopts_provenance_of_adopted_directives() {
        let mut a = SearchDirectives::none();
        let mut b = SearchDirectives::none();
        b.add_prune(Prune {
            hypothesis: None,
            target: PruneTarget::Resource(n("/Machine")),
        });
        b.stamp_provenance("app/src", 3);
        a.merge(&b);
        assert_eq!(
            a.provenance_of("prune * resource /Machine"),
            Some(&Provenance::new("app/src", 3))
        );
    }

    #[test]
    fn provenance_tag_roundtrip_and_rejects_garbage() {
        let p = Provenance::new("tenant/app/run", 12);
        assert_eq!(Provenance::parse_tag(&p.tag()), Some(p));
        assert_eq!(Provenance::parse_tag("nogeneration"), None);
        assert_eq!(Provenance::parse_tag("run@notanumber"), None);
        assert_eq!(Provenance::parse_tag("@7"), None);
    }

    #[test]
    fn remove_by_line_revokes_exactly_one_directive() {
        let mut d = SearchDirectives::none();
        d.add_prune(Prune {
            hypothesis: Some("CPUbound".into()),
            target: PruneTarget::Pair(wp()),
        });
        d.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: wp(),
            level: PriorityLevel::Low,
        });
        d.add_threshold(ThresholdDirective {
            hypothesis: "CPUbound".into(),
            value: 0.9,
        });
        d.stamp_provenance("app/evil", 4);
        assert!(d.remove_by_line("prune CPUbound pair </Code,/Machine,/Process,/SyncObject>"));
        assert!(!d.is_pruned("CPUbound", &wp()));
        assert_eq!(
            d.provenance_of("prune CPUbound pair </Code,/Machine,/Process,/SyncObject>"),
            None
        );
        assert!(d.remove_by_line("priority low CPUbound </Code,/Machine,/Process,/SyncObject>"));
        assert_eq!(d.priority_of("CPUbound", &wp()), PriorityLevel::Medium);
        assert!(d.remove_by_line("threshold CPUbound 0.9"));
        assert_eq!(d.threshold_for("CPUbound"), None);
        assert!(d.is_empty());
        assert!(!d.remove_by_line("threshold CPUbound 0.9"));
    }

    #[test]
    fn high_priority_pairs_iterator() {
        let mut d = SearchDirectives::none();
        d.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: wp(),
            level: PriorityLevel::High,
        });
        d.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: wp().with_selection(n("/Code/diff.f")),
            level: PriorityLevel::Low,
        });
        assert_eq!(d.high_priority_pairs().count(), 1);
        assert_eq!(d.len(), 2);
    }
}
