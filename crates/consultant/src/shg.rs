//! The Search History Graph (SHG).
//!
//! "Each (hypothesis : focus) pair is represented as a node of a directed
//! acyclic graph called the Search History Graph. The root node of the SHG
//! represents the pair (TopLevelHypothesis : WholeProgram), and its child
//! nodes represent the refinements chosen..." (paper §2). The same
//! (hypothesis, focus) pair reached along different refinement paths is a
//! single node with several parents.

use crate::directive::PriorityLevel;
use crate::hypothesis::{HypothesisId, HypothesisTree};
use histpc_instr::PairId;
use histpc_resources::{Focus, FocusId, Interner};
use histpc_sim::SimTime;
use std::borrow::Cow;
use std::collections::HashMap;

/// Index of a node in the SHG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShgNodeId(pub u32);

/// The lifecycle state of an SHG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Created, waiting for instrumentation budget.
    Pending,
    /// Instrumented; collecting data, no conclusion yet.
    Testing,
    /// Concluded true: a bottleneck.
    True,
    /// Concluded false.
    False,
    /// Excluded by a pruning directive.
    Pruned,
    /// The experiment starved: its data stream went quiet past the
    /// timeout, so nothing can honestly be concluded either way.
    Unknown,
    /// Every process the focus covers is dead; the pair can never be
    /// measured again.
    Unreachable,
    /// Every process the focus covers is behind an open admission
    /// circuit breaker: the tool is overloaded there and refuses the
    /// experiment rather than report numbers measured under shedding.
    /// Distinct from `Unknown` (data starved) and `Unreachable` (dead).
    Saturated,
}

impl NodeState {
    /// One-character marker used in the list-box rendering.
    pub fn marker(self) -> char {
        match self {
            NodeState::Pending => '.',
            NodeState::Testing => '?',
            NodeState::True => 'T',
            NodeState::False => 'F',
            NodeState::Pruned => 'P',
            NodeState::Unknown => 'U',
            NodeState::Unreachable => 'X',
            NodeState::Saturated => 'S',
        }
    }
}

/// One SHG node.
#[derive(Debug, Clone)]
pub struct ShgNode {
    /// The hypothesis under test.
    pub hypothesis: HypothesisId,
    /// The focus under test.
    pub focus: Focus,
    /// The focus's id in the graph's interner — the copyable key the
    /// node index uses instead of hashing the name form.
    pub focus_id: FocusId,
    /// Current state.
    pub state: NodeState,
    /// Search priority.
    pub priority: PriorityLevel,
    /// Persistent nodes (from High-priority directives) keep their
    /// instrumentation for the whole run.
    pub persistent: bool,
    /// The live metric-focus pair, when instrumented.
    pub pair: Option<PairId>,
    /// When the node was created.
    pub created_at: SimTime,
    /// When the node first concluded (true or false).
    pub concluded_at: Option<SimTime>,
    /// When the node first tested true (bottleneck report timestamp).
    pub first_true_at: Option<SimTime>,
    /// The last evaluated fraction of execution time.
    pub last_value: f64,
    /// Parents in the DAG.
    pub parents: Vec<ShgNodeId>,
    /// Children in the DAG.
    pub children: Vec<ShgNodeId>,
}

/// The search history graph.
///
/// Foci are interned on first sight: the node index is keyed by
/// `(HypothesisId, FocusId)` — two copyable u32s — so the per-lookup
/// cost on the search hot path is a small-key hash, not a deep
/// compare-and-hash of resource-name paths. The name form stays on the
/// node for reports.
#[derive(Debug, Clone, Default)]
pub struct Shg {
    nodes: Vec<ShgNode>,
    interner: Interner,
    index: HashMap<(HypothesisId, FocusId), ShgNodeId>,
}

impl Shg {
    /// An empty graph.
    pub fn new() -> Shg {
        Shg::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up the node for (hypothesis, focus). Never interns: a focus
    /// the graph has not seen cannot have a node.
    pub fn find(&self, hyp: HypothesisId, focus: &Focus) -> Option<ShgNodeId> {
        let fid = self.interner.lookup_focus(focus)?;
        self.index.get(&(hyp, fid)).copied()
    }

    /// Read access to a node.
    pub fn node(&self, id: ShgNodeId) -> &ShgNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: ShgNodeId) -> &mut ShgNode {
        &mut self.nodes[id.0 as usize]
    }

    /// Adds a node (or links an existing one under a new parent).
    /// Returns `(id, created)`.
    #[allow(clippy::too_many_arguments)] // the SHG node's natural attributes
    pub fn add(
        &mut self,
        hyp: HypothesisId,
        focus: Focus,
        state: NodeState,
        priority: PriorityLevel,
        persistent: bool,
        parent: Option<ShgNodeId>,
        now: SimTime,
    ) -> (ShgNodeId, bool) {
        let fid = self.interner.intern_focus(&focus);
        if let Some(&id) = self.index.get(&(hyp, fid)) {
            if let Some(p) = parent {
                if !self.nodes[id.0 as usize].parents.contains(&p) {
                    self.nodes[id.0 as usize].parents.push(p);
                    self.nodes[p.0 as usize].children.push(id);
                }
            }
            return (id, false);
        }
        let id = ShgNodeId(self.nodes.len() as u32);
        self.nodes.push(ShgNode {
            hypothesis: hyp,
            focus,
            focus_id: fid,
            state,
            priority,
            persistent,
            pair: None,
            created_at: now,
            concluded_at: None,
            first_true_at: None,
            last_value: 0.0,
            parents: parent.into_iter().collect(),
            children: Vec::new(),
        });
        self.index.insert((hyp, fid), id);
        if let Some(p) = parent {
            self.nodes[p.0 as usize].children.push(id);
        }
        (id, true)
    }

    /// All node ids in creation order.
    pub fn ids(&self) -> impl Iterator<Item = ShgNodeId> {
        (0..self.nodes.len() as u32).map(ShgNodeId)
    }

    /// All nodes currently in `state`.
    pub fn in_state(&self, state: NodeState) -> Vec<ShgNodeId> {
        self.ids()
            .filter(|&id| self.node(id).state == state)
            .collect()
    }

    /// Count of nodes in `state`.
    pub fn count_state(&self, state: NodeState) -> usize {
        self.nodes.iter().filter(|n| n.state == state).count()
    }

    /// Renders the graph in Paradyn's list-box form (paper fig. 2):
    /// indented by refinement depth, each line carrying the state marker,
    /// the hypothesis for hypothesis-axis nodes and the changed resource
    /// for focus-axis nodes.
    pub fn render(&self, tree: &HypothesisTree) -> String {
        let mut out = String::new();
        // Roots: nodes with no parents.
        let roots: Vec<ShgNodeId> = self
            .ids()
            .filter(|&id| self.node(id).parents.is_empty())
            .collect();
        for r in roots {
            self.render_node(
                r,
                0,
                None,
                tree,
                &mut out,
                &mut vec![false; self.nodes.len()],
            );
        }
        out
    }

    fn render_node(
        &self,
        id: ShgNodeId,
        depth: usize,
        parent: Option<ShgNodeId>,
        tree: &HypothesisTree,
        out: &mut String,
        visited: &mut Vec<bool>,
    ) {
        let n = self.node(id);
        for _ in 0..depth {
            out.push_str("  ");
        }
        let label = self.label_under(id, parent, tree);
        out.push_str(&format!("[{}] {}", n.state.marker(), label));
        if matches!(n.state, NodeState::True | NodeState::False) {
            out.push_str(&format!(" ({:.1}%)", n.last_value * 100.0));
        }
        out.push('\n');
        if visited[id.0 as usize] {
            return; // DAG: only expand a shared node once
        }
        visited[id.0 as usize] = true;
        for &c in &n.children {
            self.render_node(c, depth + 1, Some(id), tree, out, visited);
        }
    }

    /// The display label of a node: its hypothesis name at the whole
    /// program, otherwise the most recently refined selection's label.
    /// Borrows from the graph/tree; only the parentless-seed fallback
    /// allocates.
    pub fn label_of<'a>(&'a self, id: ShgNodeId, tree: &'a HypothesisTree) -> Cow<'a, str> {
        let parent = self.node(id).parents.first().copied();
        self.label_under(id, parent, tree)
    }

    /// The display label of a node when shown under a specific parent:
    /// the selection that distinguishes it from that parent. Shared DAG
    /// nodes are thus labelled by the edge they are rendered along.
    pub fn label_under<'a>(
        &'a self,
        id: ShgNodeId,
        parent: Option<ShgNodeId>,
        tree: &'a HypothesisTree,
    ) -> Cow<'a, str> {
        let n = self.node(id);
        let hyp_name = tree.get(n.hypothesis).name.as_str();
        if n.focus.is_whole_program() {
            return Cow::Borrowed(hyp_name);
        }
        let candidates = parent
            .into_iter()
            .chain(n.parents.iter().copied().filter(|&p| Some(p) != parent));
        for p in candidates {
            let pf = &self.node(p).focus;
            for sel in n.focus.selections() {
                if pf.selection(sel.hierarchy()) != Some(sel) {
                    return Cow::Borrowed(sel.label());
                }
            }
        }
        // Fallback for parentless non-root nodes (priority seeds).
        Cow::Owned(format!("{hyp_name} {}", n.focus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_resources::ResourceName;

    fn wp() -> Focus {
        Focus::whole_program(["Code", "Machine", "Process", "SyncObject"])
    }

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).unwrap()
    }

    fn tree() -> HypothesisTree {
        HypothesisTree::standard()
    }

    #[test]
    fn add_and_find() {
        let mut g = Shg::new();
        let t = tree();
        let root_h = t.root();
        let (root, created) = g.add(
            root_h,
            wp(),
            NodeState::True,
            PriorityLevel::Medium,
            false,
            None,
            SimTime::ZERO,
        );
        assert!(created);
        assert_eq!(g.find(root_h, &wp()), Some(root));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn duplicate_add_links_new_parent() {
        let mut g = Shg::new();
        let t = tree();
        let cpu = t.by_name("CPUbound").unwrap();
        let (a, _) = g.add(
            cpu,
            wp(),
            NodeState::Testing,
            PriorityLevel::Medium,
            false,
            None,
            SimTime::ZERO,
        );
        let f = wp().with_selection(n("/Code/a.c"));
        let (b, _) = g.add(
            cpu,
            f.clone(),
            NodeState::Pending,
            PriorityLevel::Medium,
            false,
            Some(a),
            SimTime::ZERO,
        );
        // Reaching the same (h, f) from another parent creates no new node.
        let (c, _) = g.add(
            cpu,
            wp(),
            NodeState::Testing,
            PriorityLevel::Medium,
            false,
            None,
            SimTime::ZERO,
        );
        assert_eq!(a, c);
        let (b2, created) = g.add(
            cpu,
            f,
            NodeState::Pending,
            PriorityLevel::Medium,
            false,
            Some(c),
            SimTime::ZERO,
        );
        assert_eq!(b, b2);
        assert!(!created);
        assert_eq!(g.len(), 2);
        assert_eq!(g.node(b).parents, vec![a]);
    }

    #[test]
    fn multi_parent_dag() {
        let mut g = Shg::new();
        let t = tree();
        let cpu = t.by_name("CPUbound").unwrap();
        let f1 = wp().with_selection(n("/Code/a.c"));
        let f2 = wp().with_selection(n("/Process/p1"));
        let f12 = f1.with_selection(n("/Process/p1"));
        let (a, _) = g.add(
            cpu,
            f1,
            NodeState::True,
            PriorityLevel::Medium,
            false,
            None,
            SimTime::ZERO,
        );
        let (b, _) = g.add(
            cpu,
            f2,
            NodeState::True,
            PriorityLevel::Medium,
            false,
            None,
            SimTime::ZERO,
        );
        let (c1, _) = g.add(
            cpu,
            f12.clone(),
            NodeState::Pending,
            PriorityLevel::Medium,
            false,
            Some(a),
            SimTime::ZERO,
        );
        let (c2, _) = g.add(
            cpu,
            f12,
            NodeState::Pending,
            PriorityLevel::Medium,
            false,
            Some(b),
            SimTime::ZERO,
        );
        assert_eq!(c1, c2);
        assert_eq!(g.node(c1).parents, vec![a, b]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn state_counting() {
        let mut g = Shg::new();
        let t = tree();
        let cpu = t.by_name("CPUbound").unwrap();
        let sync = t.by_name("ExcessiveSyncWaitingTime").unwrap();
        g.add(
            cpu,
            wp(),
            NodeState::True,
            PriorityLevel::Medium,
            false,
            None,
            SimTime::ZERO,
        );
        g.add(
            sync,
            wp(),
            NodeState::False,
            PriorityLevel::Medium,
            false,
            None,
            SimTime::ZERO,
        );
        assert_eq!(g.count_state(NodeState::True), 1);
        assert_eq!(g.count_state(NodeState::False), 1);
        assert_eq!(g.in_state(NodeState::True).len(), 1);
    }

    #[test]
    fn render_shows_hierarchy_and_markers() {
        let mut g = Shg::new();
        let t = tree();
        let (root, _) = g.add(
            t.root(),
            wp(),
            NodeState::True,
            PriorityLevel::Medium,
            false,
            None,
            SimTime::ZERO,
        );
        let cpu = t.by_name("CPUbound").unwrap();
        let (c, _) = g.add(
            cpu,
            wp(),
            NodeState::True,
            PriorityLevel::Medium,
            false,
            Some(root),
            SimTime::ZERO,
        );
        g.add(
            cpu,
            wp().with_selection(n("/Code/goat.c")),
            NodeState::False,
            PriorityLevel::Medium,
            false,
            Some(c),
            SimTime::ZERO,
        );
        let text = g.render(&t);
        assert!(text.contains("[T] TopLevelHypothesis"));
        assert!(text.contains("  [T] CPUbound"));
        assert!(text.contains("    [F] goat.c"));
    }
}
