//! The hypothesis tree.
//!
//! "The full collection of hypotheses is organized as a tree, where
//! hypotheses lower in the tree identify more specific problems than those
//! higher up." (paper §2). The standard tree is Paradyn's:
//!
//! ```text
//! TopLevelHypothesis
//! ├── CPUbound                        (cpu_time fraction)
//! ├── ExcessiveSyncWaitingTime        (sync_wait_time fraction)
//! │   ├── ExcessiveMessageWaitingTime (msg_wait_time fraction)
//! │   └── ExcessiveBarrierWaitingTime (barrier_wait_time fraction)
//! └── ExcessiveIOBlockingTime         (io_wait_time fraction)
//! ```
//!
//! The second level gives the "more specific hypothesis" refinement axis
//! real depth: when synchronization waiting tests true, the Consultant
//! asks *what kind* of waiting before (and while) asking *where*.
//!
//! Each non-root hypothesis is "based on a continuously measured value
//! computed by one or more Paradyn metrics, and a fixed threshold": the
//! measured metric value over a time window, normalized to a fraction of
//! execution time, compared against the threshold.

use histpc_instr::Metric;

/// Index of a hypothesis within a [`HypothesisTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HypothesisId(pub u16);

/// One performance hypothesis.
#[derive(Debug, Clone)]
pub struct Hypothesis {
    /// Display and directive-file name, e.g. `CPUbound`.
    pub name: String,
    /// The metric that measures it; `None` for the virtual root.
    pub metric: Option<Metric>,
    /// Default threshold (fraction of execution time under the focus).
    pub default_threshold: f64,
    /// Parent in the hypothesis tree; `None` for the root.
    pub parent: Option<HypothesisId>,
    /// True for synchronization-related hypotheses: the SyncObject
    /// hierarchy is only meaningful for these (basis of the paper's
    /// "general prune" of `/SyncObject` from all other hypotheses).
    pub sync_related: bool,
}

/// The tree of hypotheses the Performance Consultant searches.
#[derive(Debug, Clone)]
pub struct HypothesisTree {
    hyps: Vec<Hypothesis>,
}

impl HypothesisTree {
    /// Paradyn's standard tree (root + CPU/sync/I-O).
    ///
    /// The default thresholds follow the paper: Paradyn's stock setting
    /// is 20% for the synchronization hypothesis (§4.2 calls 20% "the
    /// default Paradyn setting").
    pub fn standard() -> HypothesisTree {
        let root = Hypothesis {
            name: "TopLevelHypothesis".into(),
            metric: None,
            default_threshold: 0.0,
            parent: None,
            sync_related: false,
        };
        let cpu = Hypothesis {
            name: "CPUbound".into(),
            metric: Some(Metric::CpuTime),
            default_threshold: 0.20,
            parent: Some(HypothesisId(0)),
            sync_related: false,
        };
        let sync = Hypothesis {
            name: "ExcessiveSyncWaitingTime".into(),
            metric: Some(Metric::SyncWaitTime),
            default_threshold: 0.20,
            parent: Some(HypothesisId(0)),
            sync_related: true,
        };
        let io = Hypothesis {
            name: "ExcessiveIOBlockingTime".into(),
            metric: Some(Metric::IoWaitTime),
            default_threshold: 0.20,
            parent: Some(HypothesisId(0)),
            sync_related: false,
        };
        // Children of ExcessiveSyncWaitingTime (index 2).
        let msg = Hypothesis {
            name: "ExcessiveMessageWaitingTime".into(),
            metric: Some(Metric::MsgWaitTime),
            default_threshold: 0.20,
            parent: Some(HypothesisId(2)),
            sync_related: true,
        };
        let barrier = Hypothesis {
            name: "ExcessiveBarrierWaitingTime".into(),
            metric: Some(Metric::BarrierWaitTime),
            default_threshold: 0.20,
            parent: Some(HypothesisId(2)),
            // Barrier waits have no message object: refining into the
            // SyncObject hierarchy is meaningless for them.
            sync_related: false,
        };
        HypothesisTree {
            hyps: vec![root, cpu, sync, io, msg, barrier],
        }
    }

    /// The virtual root (`TopLevelHypothesis`).
    pub fn root(&self) -> HypothesisId {
        HypothesisId(0)
    }

    /// Number of hypotheses including the root.
    pub fn len(&self) -> usize {
        self.hyps.len()
    }

    /// True if the tree is empty (never the case for `standard`).
    pub fn is_empty(&self) -> bool {
        self.hyps.is_empty()
    }

    /// The hypothesis record for `id`.
    pub fn get(&self, id: HypothesisId) -> &Hypothesis {
        &self.hyps[id.0 as usize]
    }

    /// Looks a hypothesis up by name.
    pub fn by_name(&self, name: &str) -> Option<HypothesisId> {
        self.hyps
            .iter()
            .position(|h| h.name == name)
            .map(|i| HypothesisId(i as u16))
    }

    /// The child hypotheses of `id` (the "more specific hypothesis"
    /// refinement axis).
    pub fn children(&self, id: HypothesisId) -> Vec<HypothesisId> {
        self.hyps
            .iter()
            .enumerate()
            .filter(|(_, h)| h.parent == Some(id))
            .map(|(i, _)| HypothesisId(i as u16))
            .collect()
    }

    /// The names of every hypothesis in the tree, root included — the
    /// registry directive linters validate hypothesis references against.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.hyps.iter().map(|h| h.name.as_str())
    }

    /// All non-root hypotheses.
    pub fn testable(&self) -> Vec<HypothesisId> {
        self.hyps
            .iter()
            .enumerate()
            .filter(|(_, h)| h.metric.is_some())
            .map(|(i, _)| HypothesisId(i as u16))
            .collect()
    }

    /// Adds a custom hypothesis, returning its id.
    pub fn add(&mut self, hyp: Hypothesis) -> HypothesisId {
        assert!(
            hyp.parent.is_some_and(|p| (p.0 as usize) < self.hyps.len()),
            "custom hypotheses need an existing parent"
        );
        self.hyps.push(hyp);
        HypothesisId(self.hyps.len() as u16 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_tree_shape() {
        let t = HypothesisTree::standard();
        assert_eq!(t.len(), 6);
        let root = t.root();
        assert_eq!(t.get(root).name, "TopLevelHypothesis");
        assert!(t.get(root).metric.is_none());
        let kids = t.children(root);
        assert_eq!(kids.len(), 3);
        let names: Vec<&str> = kids.iter().map(|&k| t.get(k).name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "CPUbound",
                "ExcessiveSyncWaitingTime",
                "ExcessiveIOBlockingTime"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        let t = HypothesisTree::standard();
        let sync = t.by_name("ExcessiveSyncWaitingTime").unwrap();
        assert!(t.get(sync).sync_related);
        assert_eq!(t.get(sync).metric, Some(Metric::SyncWaitTime));
        assert!(t.by_name("Bogus").is_none());
    }

    #[test]
    fn testable_excludes_root() {
        let t = HypothesisTree::standard();
        let testable = t.testable();
        assert_eq!(testable.len(), 5);
        assert!(!testable.contains(&t.root()));
    }

    #[test]
    fn default_thresholds_are_paradyn_stock() {
        let t = HypothesisTree::standard();
        for name in [
            "CPUbound",
            "ExcessiveSyncWaitingTime",
            "ExcessiveIOBlockingTime",
        ] {
            let id = t.by_name(name).unwrap();
            assert_eq!(t.get(id).default_threshold, 0.20);
        }
    }

    #[test]
    fn add_custom_hypothesis() {
        let mut t = HypothesisTree::standard();
        let parent = t.by_name("ExcessiveSyncWaitingTime").unwrap();
        let id = t.add(Hypothesis {
            name: "ExcessiveMessageBytes".into(),
            metric: Some(Metric::MsgBytes),
            default_threshold: 0.5,
            parent: Some(parent),
            sync_related: true,
        });
        // The sync hypothesis already has two standard children.
        assert!(t.children(parent).contains(&id));
        assert_eq!(t.children(parent).len(), 3);
    }

    #[test]
    #[should_panic(expected = "existing parent")]
    fn add_without_parent_panics() {
        let mut t = HypothesisTree::standard();
        t.add(Hypothesis {
            name: "Orphan".into(),
            metric: Some(Metric::CpuTime),
            default_threshold: 0.2,
            parent: None,
            sync_related: false,
        });
    }
}
