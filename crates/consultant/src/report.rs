//! Diagnosis reports.
//!
//! The result of one Performance Consultant session: the outcome of every
//! hypothesis/focus pair the search touched, with the timestamps the paper
//! measures ("we recorded the time each bottleneck was reported by the
//! tool", §4.1), plus instrumentation statistics for Table 2's
//! pairs-tested and efficiency columns.

use histpc_resources::{Focus, ResourceName};
use histpc_sim::SimTime;

/// Final outcome of one hypothesis/focus pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Concluded true: a bottleneck.
    True,
    /// Concluded false.
    False,
    /// Excluded by a pruning directive.
    Pruned,
    /// Created but never concluded (search ended first).
    Untested,
    /// The experiment starved past the data timeout: no honest
    /// conclusion exists. Distinct from false — "we measured nothing"
    /// is not "we measured zero".
    Unknown,
    /// Every process under the focus died before a conclusion.
    Unreachable,
    /// The tool was overloaded on every process under the focus: the
    /// admission layer refused or shed the experiment's instrumentation,
    /// so no honest measurement exists. Distinct from `Unknown` (the
    /// daemon went quiet) and `Unreachable` (the processes died).
    Saturated,
}

impl Outcome {
    /// Stable lowercase name for record files.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::True => "true",
            Outcome::False => "false",
            Outcome::Pruned => "pruned",
            Outcome::Untested => "untested",
            Outcome::Unknown => "unknown",
            Outcome::Unreachable => "unreachable",
            Outcome::Saturated => "saturated",
        }
    }

    /// Parses the lowercase name.
    pub fn from_name(s: &str) -> Option<Outcome> {
        match s {
            "true" => Some(Outcome::True),
            "false" => Some(Outcome::False),
            "pruned" => Some(Outcome::Pruned),
            "untested" => Some(Outcome::Untested),
            "unknown" => Some(Outcome::Unknown),
            "unreachable" => Some(Outcome::Unreachable),
            "saturated" => Some(Outcome::Saturated),
            _ => None,
        }
    }
}

/// The outcome record of one hypothesis/focus pair.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOutcome {
    /// Hypothesis name.
    pub hypothesis: String,
    /// Focus.
    pub focus: Focus,
    /// Final outcome.
    pub outcome: Outcome,
    /// When the pair first tested true (the bottleneck report timestamp).
    pub first_true_at: Option<SimTime>,
    /// When the pair first concluded either way.
    pub concluded_at: Option<SimTime>,
    /// The last evaluated fraction of execution time.
    pub last_value: f64,
    /// Number of samples the pair's instrumentation actually observed.
    /// Degraded runs use this to tell a well-grounded conclusion from
    /// one derived from a trickle of surviving data.
    pub samples: u64,
}

/// The outcome of one shadow audit: a history directive that was
/// probed anyway, and whether the probe vindicated it (`passed`) or
/// convicted it (a **revocation** — the directive was removed from the
/// live set and the affected SHG subtree reopened).
#[derive(Debug, Clone, PartialEq)]
pub struct AuditOutcome {
    /// Canonical line of the audited directive.
    pub directive: String,
    /// Source run the directive was harvested from (provenance).
    pub source_run: String,
    /// Store generation the directive was harvested at (provenance).
    pub generation: u64,
    /// Hypothesis of the probed pair.
    pub hypothesis: String,
    /// Focus of the probed pair (whole-program for threshold audits).
    pub focus: Focus,
    /// True if the probe agreed with the directive.
    pub passed: bool,
    /// The fraction of execution time the probe observed.
    pub observed: f64,
    /// Application time the audit concluded.
    pub at: SimTime,
}

/// The result of one diagnosis session.
#[derive(Debug, Clone)]
pub struct DiagnosisReport {
    /// Application name.
    pub app_name: String,
    /// Application version label.
    pub app_version: String,
    /// Outcomes for every non-root pair the search touched.
    pub outcomes: Vec<NodeOutcome>,
    /// Total hypothesis/focus pairs instrumented (Table 2's
    /// "Total Number of Hypothesis/Focus Pairs Tested").
    pub pairs_tested: usize,
    /// Application time when the search went quiescent (or was stopped).
    pub end_time: SimTime,
    /// Peak instrumentation cost observed (fraction).
    pub peak_cost: f64,
    /// Whether the search reached quiescence (vs. hitting the time limit).
    pub quiescent: bool,
    /// Resources (machines, processes) that died during the run. Empty
    /// for healthy runs; directive extraction refuses to prune anything
    /// under these.
    pub unreachable: Vec<ResourceName>,
    /// Resources whose admission circuit breaker opened during the run
    /// (the tool was overloaded there). Empty for unloaded runs;
    /// directive extraction refuses to prune anything under these.
    pub saturated: Vec<ResourceName>,
    /// What the admission layer did during the run (all zero when
    /// admission control is disabled).
    pub admission: histpc_instr::AdmissionStats,
    /// The rendered Search History Graph (list-box form, fig. 2).
    pub shg_rendering: String,
    /// Shadow-audit outcomes (empty at audit budget 0, keeping
    /// budget-0 runs identical to pre-audit baselines). Failed entries
    /// are revocations: their directive was removed mid-search and the
    /// pruned subtree reopened.
    pub audits: Vec<AuditOutcome>,
}

impl DiagnosisReport {
    /// The bottlenecks found, ordered by discovery time.
    pub fn bottlenecks(&self) -> Vec<&NodeOutcome> {
        let mut v: Vec<&NodeOutcome> = self
            .outcomes
            .iter()
            .filter(|o| o.outcome == Outcome::True)
            .collect();
        v.sort_by_key(|o| o.first_true_at);
        v
    }

    /// Number of bottlenecks found.
    pub fn bottleneck_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.outcome == Outcome::True)
            .count()
    }

    /// Bottlenecks found per pair tested (Table 2's efficiency column).
    pub fn efficiency(&self) -> f64 {
        if self.pairs_tested == 0 {
            0.0
        } else {
            self.bottleneck_count() as f64 / self.pairs_tested as f64
        }
    }

    /// Time at which `frac` (0..=1) of the given ground-truth bottleneck
    /// set had been reported, or `None` if the session never got there.
    ///
    /// `truth` identifies bottlenecks as (hypothesis, focus) pairs.
    pub fn time_to_find(&self, truth: &[(String, Focus)], frac: f64) -> Option<SimTime> {
        if truth.is_empty() {
            return Some(SimTime::ZERO);
        }
        let needed = ((truth.len() as f64) * frac).ceil().max(1.0) as usize;
        let mut times: Vec<SimTime> = truth
            .iter()
            .filter_map(|(h, f)| {
                self.outcomes
                    .iter()
                    .find(|o| &o.hypothesis == h && &o.focus == f)
                    .and_then(|o| o.first_true_at)
            })
            .collect();
        times.sort();
        times.get(needed - 1).copied()
    }

    /// The (hypothesis, focus) list of all found bottlenecks.
    pub fn bottleneck_set(&self) -> Vec<(String, Focus)> {
        self.bottlenecks()
            .into_iter()
            .map(|o| (o.hypothesis.clone(), o.focus.clone()))
            .collect()
    }

    /// Time of the last true conclusion (time to find all bottlenecks the
    /// session itself reported).
    pub fn time_of_last_bottleneck(&self) -> Option<SimTime> {
        self.outcomes.iter().filter_map(|o| o.first_true_at).max()
    }

    /// The audits that convicted their directive: each one names the
    /// source run whose guidance was revoked mid-search.
    pub fn revocations(&self) -> Vec<&AuditOutcome> {
        self.audits.iter().filter(|a| !a.passed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp() -> Focus {
        Focus::whole_program(["Code", "Process"])
    }

    fn outcome(h: &str, f: Focus, out: Outcome, t: Option<u64>) -> NodeOutcome {
        NodeOutcome {
            hypothesis: h.into(),
            focus: f,
            outcome: out,
            first_true_at: t.map(SimTime::from_secs),
            concluded_at: t.map(SimTime::from_secs),
            last_value: 0.3,
            samples: 5,
        }
    }

    fn report(outcomes: Vec<NodeOutcome>, pairs: usize) -> DiagnosisReport {
        DiagnosisReport {
            app_name: "x".into(),
            app_version: "1".into(),
            outcomes,
            pairs_tested: pairs,
            end_time: SimTime::from_secs(100),
            peak_cost: 0.04,
            quiescent: true,
            unreachable: Vec::new(),
            saturated: Vec::new(),
            admission: Default::default(),
            shg_rendering: String::new(),
            audits: Vec::new(),
        }
    }

    fn f(sel: &str) -> Focus {
        wp().with_selection(histpc_resources::ResourceName::parse(sel).unwrap())
    }

    #[test]
    fn bottlenecks_sorted_by_time() {
        let r = report(
            vec![
                outcome("CPUbound", f("/Code/b"), Outcome::True, Some(20)),
                outcome("CPUbound", f("/Code/a"), Outcome::True, Some(10)),
                outcome("CPUbound", f("/Code/c"), Outcome::False, Some(5)),
            ],
            10,
        );
        let b = r.bottlenecks();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].focus, f("/Code/a"));
        assert_eq!(r.bottleneck_count(), 2);
        assert!((r.efficiency() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn time_to_find_percentiles() {
        let truth = vec![
            ("CPUbound".to_string(), f("/Code/a")),
            ("CPUbound".to_string(), f("/Code/b")),
            ("CPUbound".to_string(), f("/Code/c")),
            ("CPUbound".to_string(), f("/Code/d")),
        ];
        let r = report(
            vec![
                outcome("CPUbound", f("/Code/a"), Outcome::True, Some(10)),
                outcome("CPUbound", f("/Code/b"), Outcome::True, Some(20)),
                outcome("CPUbound", f("/Code/c"), Outcome::True, Some(40)),
                // /Code/d never found.
            ],
            10,
        );
        assert_eq!(r.time_to_find(&truth, 0.25), Some(SimTime::from_secs(10)));
        assert_eq!(r.time_to_find(&truth, 0.5), Some(SimTime::from_secs(20)));
        assert_eq!(r.time_to_find(&truth, 0.75), Some(SimTime::from_secs(40)));
        assert_eq!(r.time_to_find(&truth, 1.0), None);
        assert_eq!(r.time_to_find(&[], 1.0), Some(SimTime::ZERO));
    }

    #[test]
    fn efficiency_handles_zero_pairs() {
        let r = report(vec![], 0);
        assert_eq!(r.efficiency(), 0.0);
        assert_eq!(r.time_of_last_bottleneck(), None);
    }

    #[test]
    fn outcome_names_roundtrip() {
        for o in [
            Outcome::True,
            Outcome::False,
            Outcome::Pruned,
            Outcome::Untested,
            Outcome::Unknown,
            Outcome::Unreachable,
            Outcome::Saturated,
        ] {
            assert_eq!(Outcome::from_name(o.name()), Some(o));
        }
        assert_eq!(Outcome::from_name("maybe"), None);
    }
}
