//! `histpc-faults`: deterministic, seeded fault injection for the
//! simulated daemon layer.
//!
//! Paradyn's Performance Consultant ran against real daemons on real
//! SP/2 nodes, where instrumentation requests fail, sample streams
//! stall, and processes die mid-experiment. This crate models that
//! lossy substrate as a reproducible [`FaultPlan`]: every fault draw
//! comes from a seeded [`Rng`](histpc_sim::Rng) substream, so a given
//! plan injects exactly the same faults on every run — which is what
//! lets the test suite assert that a diagnosis *degrades gracefully*
//! rather than merely *differently*.
//!
//! The plan covers four fault surfaces:
//!
//! * **sample stream** — drop, delay, or reorder emitted
//!   [`Interval`]s before the collector sees them
//!   ([`FaultInjector::filter_intervals`]);
//! * **instrumentation requests** — fail or defer
//!   `Collector::request` insertions
//!   ([`FaultInjector::request_outcome`]);
//! * **resource death** — kill a node or a single process at a
//!   scheduled [`SimTime`] ([`FaultInjector::due_kills`]);
//! * **tool crash / store corruption** — crash the consultant itself
//!   mid-search ([`FaultInjector::crash_due`]) and truncate
//!   history-store writes ([`corrupt_text`]);
//! * **history poison** — adversarial harvested directives
//!   (`poison-prune`, `poison-threshold`, `stale-mapping`; applied by
//!   `histpc-consultant`'s poison module before the search starts) and
//!   trust-ledger sidecar corruption (`trust-ledger-corrupt`);
//! * **overload** — flood the collector with phantom sample traffic
//!   ([`FaultInjector::flood_units`]), slow every instrumentation
//!   insertion (`slow-collector`, folded into
//!   [`FaultInjector::request_outcome`]), and fire bursts of phantom
//!   in-flight requests ([`FaultInjector::storm_requests`]) that eat
//!   the admission controller's capacity.
//!
//! A disabled plan ([`FaultPlan::none`]) is guaranteed zero-cost: the
//! drive loop in `histpc-consultant` bypasses the injector entirely,
//! so a faultless run is bit-identical to one that never linked this
//! crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use histpc_sim::{Interval, Rng, SimDuration, SimTime};

/// What a fault plan does to a single `Collector::request` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestFault {
    /// The request is inserted normally.
    Deliver,
    /// The daemon rejects the insertion outright; the caller must retry.
    Fail,
    /// The insertion succeeds but activates late by the given extra delay.
    Defer(SimDuration),
}

/// The resource a scheduled kill removes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KillTarget {
    /// Kill every process placed on the named node.
    Node(String),
    /// Kill the single process with this rank.
    Proc(u16),
}

/// A scheduled death of a node or process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillEvent {
    /// When the target dies.
    pub at: SimTime,
    /// What dies.
    pub target: KillTarget,
}

/// A complete, serialisable description of the faults to inject into
/// one run. Parsed from / written to a small line-oriented text format
/// (see [`FaultPlan::parse`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault draws; independent of the workload seed.
    pub seed: u64,
    /// Probability in `[0,1]` that a sample interval is dropped.
    pub drop_rate: f64,
    /// Probability that a surviving interval is delivered late.
    pub delay_rate: f64,
    /// How late a delayed interval is delivered.
    pub delay: SimDuration,
    /// Probability that a surviving interval is moved to the end of its
    /// delivery batch (out-of-order delivery).
    pub reorder_rate: f64,
    /// Probability that an instrumentation request fails outright.
    pub request_fail_rate: f64,
    /// Probability that an instrumentation request activates late.
    pub request_defer_rate: f64,
    /// Extra activation delay for deferred requests.
    pub request_defer_by: SimDuration,
    /// Scheduled node/process deaths.
    pub kills: Vec<KillEvent>,
    /// When, if ever, the consultant tool itself crashes mid-search.
    pub tool_crash_at: Option<SimTime>,
    /// Truncate the history-store record written at the end of the run.
    pub corrupt_store: bool,
    /// Tear the final record write on disk mid-file, leaving an
    /// uncommitted intent in the store's write-ahead journal — as if the
    /// tool was killed between journaling and finishing the write.
    pub torn_write: bool,
    /// Cut the store's write-ahead journal mid-append — as if the tool
    /// was killed while journaling its intent.
    pub partial_journal: bool,
    /// Sample-pressure multiplier (`>= 1`): a factor of 5 means every
    /// real interval batch arrives with 4× its size in phantom sample
    /// traffic, which counts against the admission controller's
    /// per-interval budget. `1.0` disables the flood.
    pub sample_flood: f64,
    /// Extra activation latency added to *every* instrumentation
    /// insertion — an overloaded daemon that still answers, just
    /// slowly. [`SimDuration::ZERO`] disables it.
    pub slow_collector: SimDuration,
    /// Probability per consultant tick that a burst of phantom
    /// in-flight requests hits the collector.
    pub request_storm_rate: f64,
    /// Size of each storm burst.
    pub request_storm_burst: u64,
    /// Probability that a daemon client's connection drops mid-exchange
    /// (wire level; consumed by [`WireInjector`], never by the sim).
    pub wire_conn_drop_rate: f64,
    /// Probability that a request line is torn mid-byte before the
    /// daemon sees a full line (wire level).
    pub wire_torn_request_rate: f64,
    /// Extra real-time delay a slow client inserts before each request,
    /// in milliseconds (wire level). 0 disables it.
    pub wire_slow_client_ms: u64,
    /// Kill the daemon process after this many accepted sessions
    /// (wire/harness level; consumed by the soak harness, which
    /// SIGKILLs the real `histpcd` child). 0 disables it.
    pub wire_daemon_kill_after: u64,
    /// Probability that a true-bottleneck pair gains an adversarial
    /// pair-prune directive at harvest (history poison; consumed by
    /// `histpc-consultant`'s `poison` module, never by the sim).
    pub poison_prune_rate: f64,
    /// Probability that a bottlenecked hypothesis gains an adversarial
    /// near-1.0 threshold directive at harvest (history poison).
    pub poison_threshold_rate: f64,
    /// Probability that a harvested directive's resource/focus is
    /// rewritten to a nonexistent name — a mapping gone stale across
    /// code versions (history poison).
    pub stale_mapping_rate: f64,
    /// Corrupt the store's `TRUST` sidecar after the run's feedback is
    /// written — as if the tool died mid-save of the trust ledger.
    pub trust_ledger_corrupt: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults at all.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay: SimDuration::ZERO,
            reorder_rate: 0.0,
            request_fail_rate: 0.0,
            request_defer_rate: 0.0,
            request_defer_by: SimDuration::ZERO,
            kills: Vec::new(),
            tool_crash_at: None,
            corrupt_store: false,
            torn_write: false,
            partial_journal: false,
            sample_flood: 1.0,
            slow_collector: SimDuration::ZERO,
            request_storm_rate: 0.0,
            request_storm_burst: 0,
            wire_conn_drop_rate: 0.0,
            wire_torn_request_rate: 0.0,
            wire_slow_client_ms: 0,
            wire_daemon_kill_after: 0,
            poison_prune_rate: 0.0,
            poison_threshold_rate: 0.0,
            stale_mapping_rate: 0.0,
            trust_ledger_corrupt: false,
        }
    }

    /// True if the plan injects nothing *into the simulation*; the
    /// drive loop uses this to bypass the injector entirely.
    ///
    /// Wire-level faults ([`FaultPlan::touches_wire`]) deliberately do
    /// NOT enable the plan here: they perturb the transport between a
    /// daemon client and `histpcd`, never the diagnosis itself, so a
    /// wire-faults-only plan must keep the bit-identical zero-cost sim
    /// path. History-poison rates ([`FaultPlan::touches_poison`]) are
    /// likewise excluded — they corrupt the *harvested guidance* before
    /// the search ever starts, not the simulation under it. The
    /// `trust-ledger-corrupt` fault does enable the plan: like
    /// `corrupt-store` it is staged through the faulted session path,
    /// which damages the sidecar after the run's feedback is saved.
    pub fn is_disabled(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.reorder_rate == 0.0
            && self.request_fail_rate == 0.0
            && self.request_defer_rate == 0.0
            && self.kills.is_empty()
            && self.tool_crash_at.is_none()
            && !self.corrupt_store
            && !self.torn_write
            && !self.partial_journal
            && !self.trust_ledger_corrupt
            && !self.touches_overload()
    }

    /// True if any history-poison rate is set (adversarial directives
    /// injected at harvest; never touches the sim).
    pub fn touches_poison(&self) -> bool {
        self.poison_prune_rate > 0.0
            || self.poison_threshold_rate > 0.0
            || self.stale_mapping_rate > 0.0
    }

    /// True if any overload-class fault is set.
    pub fn touches_overload(&self) -> bool {
        self.sample_flood > 1.0
            || self.slow_collector > SimDuration::ZERO
            || self.request_storm_rate > 0.0
    }

    /// True if any sample-stream fault rate is set.
    pub fn touches_samples(&self) -> bool {
        self.drop_rate > 0.0 || self.delay_rate > 0.0 || self.reorder_rate > 0.0
    }

    /// True if any wire-level (daemon transport) fault is set.
    pub fn touches_wire(&self) -> bool {
        self.wire_conn_drop_rate > 0.0
            || self.wire_torn_request_rate > 0.0
            || self.wire_slow_client_ms > 0
            || self.wire_daemon_kill_after > 0
    }

    /// A copy of the plan with every wire-level fault cleared — the
    /// part of the plan the daemon should feed into the sim-level
    /// injector after the transport has already taken its toll.
    pub fn without_wire(&self) -> FaultPlan {
        FaultPlan {
            wire_conn_drop_rate: 0.0,
            wire_torn_request_rate: 0.0,
            wire_slow_client_ms: 0,
            wire_daemon_kill_after: 0,
            ..self.clone()
        }
    }

    /// Parse a fault plan from its text form.
    ///
    /// The format is line-oriented: a `histpc-faults v1` header, then
    /// one fault per line, with `#` comments and blank lines ignored.
    ///
    /// ```text
    /// histpc-faults v1
    /// seed 42
    /// drop 0.10
    /// delay 0.05 250000
    /// reorder 0.02
    /// request-fail 0.20
    /// request-defer 0.10 160000
    /// kill-node node11 5000000
    /// kill-proc 3 2500000
    /// crash-tool 4000000
    /// corrupt-store
    /// torn-write
    /// partial-journal
    /// sample-flood 5
    /// slow-collector 200000
    /// request-storm 0.25 8
    /// wire-conn-drop 0.10
    /// wire-torn-request 0.05
    /// wire-slow-client 20
    /// wire-daemon-kill 3
    /// poison-prune 0.25
    /// poison-threshold 0.25
    /// stale-mapping 0.10
    /// trust-ledger-corrupt
    /// ```
    ///
    /// Durations and timestamps are in microseconds, matching
    /// [`SimTime`]'s resolution.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut lines = text.lines().enumerate();
        let header = loop {
            match lines.next() {
                Some((_, l)) if meaningful(l).is_some() => break l.trim(),
                Some(_) => continue,
                None => return Err("empty fault plan: missing `histpc-faults v1` header".into()),
            }
        };
        if header != "histpc-faults v1" {
            return Err(format!(
                "bad header `{header}`: expected `histpc-faults v1`"
            ));
        }
        let mut plan = FaultPlan::none();
        for (i, raw) in lines {
            let Some(line) = meaningful(raw) else {
                continue;
            };
            let n = i + 1; // 1-based for messages
            let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
            let words: Vec<&str> = rest.split_whitespace().collect();
            match kind {
                "seed" => plan.seed = parse_u64(&words, 0, n, "seed")?,
                "drop" => plan.drop_rate = parse_rate(&words, 0, n, "drop")?,
                "delay" => {
                    plan.delay_rate = parse_rate(&words, 0, n, "delay")?;
                    plan.delay = SimDuration::from_micros(parse_u64(&words, 1, n, "delay")?);
                }
                "reorder" => plan.reorder_rate = parse_rate(&words, 0, n, "reorder")?,
                "request-fail" => {
                    plan.request_fail_rate = parse_rate(&words, 0, n, "request-fail")?;
                }
                "request-defer" => {
                    plan.request_defer_rate = parse_rate(&words, 0, n, "request-defer")?;
                    plan.request_defer_by =
                        SimDuration::from_micros(parse_u64(&words, 1, n, "request-defer")?);
                }
                "kill-node" => {
                    let name = words
                        .first()
                        .ok_or_else(|| format!("line {n}: kill-node needs a node name"))?;
                    plan.kills.push(KillEvent {
                        at: SimTime::from_micros(parse_u64(&words, 1, n, "kill-node")?),
                        target: KillTarget::Node((*name).to_string()),
                    });
                }
                "kill-proc" => {
                    let rank: u16 = words
                        .first()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| format!("line {n}: kill-proc needs a process rank"))?;
                    plan.kills.push(KillEvent {
                        at: SimTime::from_micros(parse_u64(&words, 1, n, "kill-proc")?),
                        target: KillTarget::Proc(rank),
                    });
                }
                "crash-tool" => {
                    plan.tool_crash_at =
                        Some(SimTime::from_micros(parse_u64(&words, 0, n, "crash-tool")?));
                }
                "corrupt-store" => plan.corrupt_store = true,
                "torn-write" => plan.torn_write = true,
                "partial-journal" => plan.partial_journal = true,
                "sample-flood" => {
                    let f: f64 = words
                        .first()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| format!("line {n}: sample-flood needs a factor"))?;
                    if f < 1.0 {
                        return Err(format!("line {n}: sample-flood factor {f} must be >= 1"));
                    }
                    plan.sample_flood = f;
                }
                "slow-collector" => {
                    plan.slow_collector =
                        SimDuration::from_micros(parse_u64(&words, 0, n, "slow-collector")?);
                }
                "request-storm" => {
                    plan.request_storm_rate = parse_rate(&words, 0, n, "request-storm")?;
                    plan.request_storm_burst = parse_u64(&words, 1, n, "request-storm")?;
                }
                "wire-conn-drop" => {
                    plan.wire_conn_drop_rate = parse_rate(&words, 0, n, "wire-conn-drop")?;
                }
                "wire-torn-request" => {
                    plan.wire_torn_request_rate = parse_rate(&words, 0, n, "wire-torn-request")?;
                }
                "wire-slow-client" => {
                    plan.wire_slow_client_ms = parse_u64(&words, 0, n, "wire-slow-client")?;
                }
                "wire-daemon-kill" => {
                    plan.wire_daemon_kill_after = parse_u64(&words, 0, n, "wire-daemon-kill")?;
                }
                "poison-prune" => {
                    plan.poison_prune_rate = parse_rate(&words, 0, n, "poison-prune")?;
                }
                "poison-threshold" => {
                    plan.poison_threshold_rate = parse_rate(&words, 0, n, "poison-threshold")?;
                }
                "stale-mapping" => {
                    plan.stale_mapping_rate = parse_rate(&words, 0, n, "stale-mapping")?;
                }
                "trust-ledger-corrupt" => plan.trust_ledger_corrupt = true,
                other => return Err(format!("line {n}: unknown fault kind `{other}`")),
            }
        }
        plan.kills.sort_by_key(|k| k.at);
        Ok(plan)
    }

    /// Write the plan back out in the form [`FaultPlan::parse`] accepts.
    pub fn to_text(&self) -> String {
        let mut out = String::from("histpc-faults v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        if self.drop_rate > 0.0 {
            out.push_str(&format!("drop {}\n", self.drop_rate));
        }
        if self.delay_rate > 0.0 {
            out.push_str(&format!(
                "delay {} {}\n",
                self.delay_rate,
                self.delay.as_micros()
            ));
        }
        if self.reorder_rate > 0.0 {
            out.push_str(&format!("reorder {}\n", self.reorder_rate));
        }
        if self.request_fail_rate > 0.0 {
            out.push_str(&format!("request-fail {}\n", self.request_fail_rate));
        }
        if self.request_defer_rate > 0.0 {
            out.push_str(&format!(
                "request-defer {} {}\n",
                self.request_defer_rate,
                self.request_defer_by.as_micros()
            ));
        }
        for k in &self.kills {
            match &k.target {
                KillTarget::Node(name) => {
                    out.push_str(&format!("kill-node {name} {}\n", k.at.as_micros()));
                }
                KillTarget::Proc(rank) => {
                    out.push_str(&format!("kill-proc {rank} {}\n", k.at.as_micros()));
                }
            }
        }
        if let Some(at) = self.tool_crash_at {
            out.push_str(&format!("crash-tool {}\n", at.as_micros()));
        }
        if self.corrupt_store {
            out.push_str("corrupt-store\n");
        }
        if self.torn_write {
            out.push_str("torn-write\n");
        }
        if self.partial_journal {
            out.push_str("partial-journal\n");
        }
        if self.sample_flood > 1.0 {
            out.push_str(&format!("sample-flood {}\n", self.sample_flood));
        }
        if self.slow_collector > SimDuration::ZERO {
            out.push_str(&format!(
                "slow-collector {}\n",
                self.slow_collector.as_micros()
            ));
        }
        if self.request_storm_rate > 0.0 {
            out.push_str(&format!(
                "request-storm {} {}\n",
                self.request_storm_rate, self.request_storm_burst
            ));
        }
        if self.wire_conn_drop_rate > 0.0 {
            out.push_str(&format!("wire-conn-drop {}\n", self.wire_conn_drop_rate));
        }
        if self.wire_torn_request_rate > 0.0 {
            out.push_str(&format!(
                "wire-torn-request {}\n",
                self.wire_torn_request_rate
            ));
        }
        if self.wire_slow_client_ms > 0 {
            out.push_str(&format!("wire-slow-client {}\n", self.wire_slow_client_ms));
        }
        if self.wire_daemon_kill_after > 0 {
            out.push_str(&format!(
                "wire-daemon-kill {}\n",
                self.wire_daemon_kill_after
            ));
        }
        if self.poison_prune_rate > 0.0 {
            out.push_str(&format!("poison-prune {}\n", self.poison_prune_rate));
        }
        if self.poison_threshold_rate > 0.0 {
            out.push_str(&format!(
                "poison-threshold {}\n",
                self.poison_threshold_rate
            ));
        }
        if self.stale_mapping_rate > 0.0 {
            out.push_str(&format!("stale-mapping {}\n", self.stale_mapping_rate));
        }
        if self.trust_ledger_corrupt {
            out.push_str("trust-ledger-corrupt\n");
        }
        out
    }
}

/// The meaningful content of a plan line, or `None` for blank/comment.
fn meaningful(line: &str) -> Option<&str> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') {
        None
    } else {
        Some(t)
    }
}

fn parse_u64(words: &[&str], idx: usize, line: usize, kind: &str) -> Result<u64, String> {
    words
        .get(idx)
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("line {line}: {kind} needs an integer in field {}", idx + 1))
}

fn parse_rate(words: &[&str], idx: usize, line: usize, kind: &str) -> Result<f64, String> {
    let r: f64 = words
        .get(idx)
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("line {line}: {kind} needs a rate in field {}", idx + 1))?;
    if !(0.0..=1.0).contains(&r) {
        return Err(format!("line {line}: {kind} rate {r} outside [0,1]"));
    }
    Ok(r)
}

/// Counters of what a plan actually did during a run; folded into the
/// degraded-run report for tests and the CLI summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Sample intervals dropped.
    pub dropped: u64,
    /// Sample intervals delivered late.
    pub delayed: u64,
    /// Sample intervals moved out of order.
    pub reordered: u64,
    /// Instrumentation requests rejected.
    pub requests_failed: u64,
    /// Instrumentation requests activated late.
    pub requests_deferred: u64,
    /// Kill events fired.
    pub kills_fired: u64,
    /// Phantom sample units injected by a sample flood.
    pub flooded: u64,
    /// Instrumentation requests slowed by the slow-collector fault.
    pub slowed: u64,
    /// Phantom in-flight requests fired by request storms.
    pub storm_requests: u64,
}

/// The run-time half of a [`FaultPlan`]: holds the seeded RNG streams
/// and the fire-once bookkeeping for scheduled events.
///
/// Sample-stream draws and request draws come from independent
/// substreams so that enabling (say) request failures does not shift
/// the drop pattern of the sample stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    sample_rng: Rng,
    request_rng: Rng,
    storm_rng: Rng,
    /// Delayed intervals waiting for their release time.
    held: Vec<(SimTime, Interval)>,
    kill_fired: Vec<bool>,
    crash_fired: bool,
    stats: FaultStats,
}

impl FaultInjector {
    /// Build an injector for a plan. All draws derive from `plan.seed`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let root = Rng::new(plan.seed);
        let kill_fired = vec![false; plan.kills.len()];
        FaultInjector {
            sample_rng: root.substream(1),
            request_rng: root.substream(2),
            storm_rng: root.substream(5),
            held: Vec::new(),
            kill_fired,
            crash_fired: false,
            stats: FaultStats::default(),
            plan,
        }
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What the plan did so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Pass a freshly drained interval batch through the lossy sample
    /// stream: drop, delay (hold until `now + delay`), or reorder
    /// (move to the end of the batch) each interval per the plan's
    /// rates, and release any previously held intervals that are due.
    ///
    /// With no sample-stream faults configured and nothing held this
    /// returns the batch untouched without consuming any randomness.
    pub fn filter_intervals(&mut self, ivs: Vec<Interval>, now: SimTime) -> Vec<Interval> {
        if !self.plan.touches_samples() && self.held.is_empty() {
            return ivs;
        }
        let mut out = Vec::with_capacity(ivs.len() + self.held.len());
        // Release held intervals that are due, preserving hold order.
        let mut still_held = Vec::new();
        for (due, iv) in self.held.drain(..) {
            if due <= now {
                out.push(iv);
            } else {
                still_held.push((due, iv));
            }
        }
        self.held = still_held;
        let mut tail = Vec::new();
        for iv in ivs {
            if self.plan.drop_rate > 0.0 && self.sample_rng.next_f64() < self.plan.drop_rate {
                self.stats.dropped += 1;
                continue;
            }
            if self.plan.delay_rate > 0.0 && self.sample_rng.next_f64() < self.plan.delay_rate {
                self.stats.delayed += 1;
                self.held.push((now + self.plan.delay, iv));
                continue;
            }
            if self.plan.reorder_rate > 0.0 && self.sample_rng.next_f64() < self.plan.reorder_rate {
                self.stats.reordered += 1;
                tail.push(iv);
                continue;
            }
            out.push(iv);
        }
        out.extend(tail);
        out
    }

    /// Draw the fate of one instrumentation request. A configured
    /// `slow-collector` fault adds its latency to every non-failed
    /// outcome on top of any drawn deferral.
    pub fn request_outcome(&mut self) -> RequestFault {
        if self.plan.request_fail_rate > 0.0
            && self.request_rng.next_f64() < self.plan.request_fail_rate
        {
            self.stats.requests_failed += 1;
            return RequestFault::Fail;
        }
        let mut extra = SimDuration::ZERO;
        if self.plan.request_defer_rate > 0.0
            && self.request_rng.next_f64() < self.plan.request_defer_rate
        {
            self.stats.requests_deferred += 1;
            extra = self.plan.request_defer_by;
        }
        if self.plan.slow_collector > SimDuration::ZERO {
            self.stats.slowed += 1;
            extra += self.plan.slow_collector;
        }
        if extra > SimDuration::ZERO {
            RequestFault::Defer(extra)
        } else {
            RequestFault::Deliver
        }
    }

    /// Phantom sample units accompanying a batch of `real` intervals
    /// under a sample flood: `(factor - 1) × real`, rounded. Zero when
    /// the flood is disabled. Deterministic — no randomness consumed.
    pub fn flood_units(&mut self, real: usize) -> u64 {
        if self.plan.sample_flood <= 1.0 {
            return 0;
        }
        let phantom = ((self.plan.sample_flood - 1.0) * real as f64).round() as u64;
        self.stats.flooded += phantom;
        phantom
    }

    /// Phantom in-flight requests striking this consultant tick: a
    /// burst with probability `request_storm_rate`, else zero. Draws
    /// from its own substream, so enabling storms never shifts the
    /// sample or request fault patterns.
    pub fn storm_requests(&mut self) -> u64 {
        if self.plan.request_storm_rate == 0.0 {
            return 0;
        }
        if self.storm_rng.next_f64() < self.plan.request_storm_rate {
            self.stats.storm_requests += self.plan.request_storm_burst;
            self.plan.request_storm_burst
        } else {
            0
        }
    }

    /// Kill events scheduled at or before `now` that have not fired
    /// yet. Each event fires exactly once.
    pub fn due_kills(&mut self, now: SimTime) -> Vec<KillEvent> {
        let mut due = Vec::new();
        for (i, k) in self.plan.kills.iter().enumerate() {
            if !self.kill_fired[i] && k.at <= now {
                self.kill_fired[i] = true;
                self.stats.kills_fired += 1;
                due.push(k.clone());
            }
        }
        due
    }

    /// True exactly once: at the first call where `now` has reached the
    /// plan's scheduled tool crash.
    pub fn crash_due(&mut self, now: SimTime) -> bool {
        match self.plan.tool_crash_at {
            Some(at) if !self.crash_fired && at <= now => {
                self.crash_fired = true;
                true
            }
            _ => false,
        }
    }
}

/// What the wire does to one client→daemon exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The exchange goes through untouched.
    Clean,
    /// The request line is torn mid-byte: the daemon receives a
    /// truncated line (or nothing) and must answer with a protocol
    /// error the client can retry on.
    TornRequest,
    /// The connection drops before the response arrives; the client
    /// must reconnect and retry (idempotently).
    ConnDrop,
}

/// Counters of what the wire injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Exchanges whose request line was torn.
    pub torn_requests: u64,
    /// Exchanges whose connection was dropped.
    pub conn_drops: u64,
    /// Exchanges delayed by the slow-client fault.
    pub slowed: u64,
}

/// Client-side injector for the wire-level fault kinds: connection
/// drops, torn request lines, and slow-client delays, drawn from their
/// own seeded substream (6) so enabling wire faults never perturbs the
/// sim-level fault pattern. The `wire-daemon-kill` kind is not drawn
/// here — the soak harness consumes it directly (it SIGKILLs the real
/// daemon process after N accepted sessions).
#[derive(Debug, Clone)]
pub struct WireInjector {
    plan: FaultPlan,
    rng: Rng,
    stats: WireStats,
}

impl WireInjector {
    /// Build a wire injector for a plan; draws derive from `plan.seed`.
    pub fn new(plan: FaultPlan) -> WireInjector {
        let root = Rng::new(plan.seed);
        WireInjector {
            rng: root.substream(6),
            stats: WireStats::default(),
            plan,
        }
    }

    /// What the injector did so far.
    pub fn stats(&self) -> WireStats {
        self.stats
    }

    /// Draw the fate of one request exchange. With no wire fault rates
    /// configured this returns [`WireFault::Clean`] without consuming
    /// randomness.
    pub fn next_fault(&mut self) -> WireFault {
        if self.plan.wire_torn_request_rate > 0.0
            && self.rng.next_f64() < self.plan.wire_torn_request_rate
        {
            self.stats.torn_requests += 1;
            return WireFault::TornRequest;
        }
        if self.plan.wire_conn_drop_rate > 0.0
            && self.rng.next_f64() < self.plan.wire_conn_drop_rate
        {
            self.stats.conn_drops += 1;
            return WireFault::ConnDrop;
        }
        WireFault::Clean
    }

    /// Real-time delay a slow client inserts before each request, if
    /// configured. Counted per call.
    pub fn slow_client_delay(&mut self) -> Option<std::time::Duration> {
        if self.plan.wire_slow_client_ms == 0 {
            return None;
        }
        self.stats.slowed += 1;
        Some(std::time::Duration::from_millis(
            self.plan.wire_slow_client_ms,
        ))
    }

    /// Tear a request line at a seed-drawn byte offset (at least one
    /// byte short of complete; possibly empty), modelling a client cut
    /// off mid-send.
    pub fn tear_line(&mut self, line: &str) -> String {
        if line.is_empty() {
            return String::new();
        }
        let mut cut = self.rng.next_below(line.len() as u64) as usize;
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        line[..cut].to_string()
    }
}

/// Deterministically corrupt a history-store text artifact: truncate it
/// at a seed-drawn point between 20 % and 80 % of its length, modelling
/// a crash mid-write. The result is guaranteed to differ from `text`
/// for any non-trivial input.
pub fn corrupt_text(seed: u64, text: &str) -> String {
    let mut rng = Rng::new(seed).substream(3);
    let len = text.len() as u64;
    if len < 2 {
        return String::new();
    }
    let lo = len / 5;
    let span = (len * 4 / 5).saturating_sub(lo).max(1);
    let mut cut = (lo + rng.next_below(span)) as usize;
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

/// Seed-drawn tear point for torn-write / partial-journal faults: a
/// fraction in `[0.2, 0.8)` of the target's byte length, drawn from its
/// own substream so it never perturbs the other fault draws.
pub fn torn_cut_fraction(seed: u64) -> f64 {
    let mut rng = Rng::new(seed).substream(4);
    0.2 + 0.6 * (rng.next_below(1_000_000) as f64 / 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_sim::{ActivityKind, FuncId, ProcId};

    fn iv(proc: u16, start_us: u64, end_us: u64) -> Interval {
        Interval {
            proc: ProcId(proc),
            func: FuncId(0),
            kind: ActivityKind::Cpu,
            tag: None,
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(end_us),
            bytes: 0,
        }
    }

    fn lossy_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            drop_rate: 0.25,
            delay_rate: 0.25,
            delay: SimDuration::from_millis(5),
            reorder_rate: 0.25,
            request_fail_rate: 0.5,
            request_defer_rate: 0.25,
            request_defer_by: SimDuration::from_millis(1),
            kills: vec![
                KillEvent {
                    at: SimTime::from_micros(5_000_000),
                    target: KillTarget::Node("node11".into()),
                },
                KillEvent {
                    at: SimTime::from_micros(2_500_000),
                    target: KillTarget::Proc(3),
                },
            ],
            tool_crash_at: Some(SimTime::from_micros(4_000_000)),
            corrupt_store: true,
            torn_write: true,
            partial_journal: true,
            sample_flood: 5.0,
            slow_collector: SimDuration::from_millis(2),
            request_storm_rate: 0.5,
            request_storm_burst: 4,
            wire_conn_drop_rate: 0.0,
            wire_torn_request_rate: 0.0,
            wire_slow_client_ms: 0,
            wire_daemon_kill_after: 0,
            poison_prune_rate: 0.25,
            poison_threshold_rate: 0.25,
            stale_mapping_rate: 0.25,
            trust_ledger_corrupt: true,
        }
    }

    #[test]
    fn plan_text_round_trips() {
        let plan = lossy_plan();
        let parsed = FaultPlan::parse(&plan.to_text()).unwrap();
        // to_text sorts kills by time on parse.
        let mut want = plan.clone();
        want.kills.sort_by_key(|k| k.at);
        assert_eq!(parsed, want);
    }

    #[test]
    fn poison_only_plan_stays_disabled_for_the_sim() {
        // History poison corrupts harvested guidance, not the sim: a
        // poison-rates-only plan must keep the zero-cost drive path.
        let mut plan = FaultPlan::none();
        plan.poison_prune_rate = 0.25;
        plan.poison_threshold_rate = 0.1;
        plan.stale_mapping_rate = 0.1;
        assert!(plan.is_disabled());
        assert!(plan.touches_poison());
        let parsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(parsed, plan);
        // Ledger corruption is store-level, staged like corrupt-store:
        // it must force the faulted session path.
        plan.trust_ledger_corrupt = true;
        assert!(!plan.is_disabled());
    }

    #[test]
    fn empty_plan_round_trips_and_is_disabled() {
        let plan = FaultPlan::none();
        assert!(plan.is_disabled());
        let parsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(parsed, plan);
        assert!(!lossy_plan().is_disabled());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("who goes there\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\nflood 0.5\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\ndrop 1.5\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\ndrop\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\nkill-node\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\nsample-flood 0.5\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\nsample-flood\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\nslow-collector\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\nrequest-storm 0.5\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\nrequest-storm 1.5 4\n").is_err());
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let plan =
            FaultPlan::parse("# lossy daemon\n\nhistpc-faults v1\n# 10% loss\ndrop 0.1\n").unwrap();
        assert_eq!(plan.drop_rate, 0.1);
    }

    #[test]
    fn disabled_injector_is_identity_and_draws_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        let batch = vec![iv(0, 0, 100), iv(1, 50, 150)];
        let out = inj.filter_intervals(batch.clone(), SimTime::from_micros(200));
        assert_eq!(out, batch);
        assert_eq!(inj.request_outcome(), RequestFault::Deliver);
        assert!(inj.due_kills(SimTime::from_micros(u64::MAX)).is_empty());
        assert!(!inj.crash_due(SimTime::from_micros(u64::MAX)));
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let batch: Vec<Interval> = (0..200).map(|i| iv(0, i * 100, i * 100 + 90)).collect();
        let run = |seed: u64| {
            let mut plan = lossy_plan();
            plan.seed = seed;
            let mut inj = FaultInjector::new(plan);
            let mut out = Vec::new();
            for chunk in batch.chunks(20) {
                let now = chunk.last().unwrap().end;
                out.extend(inj.filter_intervals(chunk.to_vec(), now));
            }
            (out, inj.stats())
        };
        let (a, sa) = run(7);
        let (b, sb) = run(7);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = run(8);
        assert_ne!(a, c, "different seed, different loss pattern");
        assert!(sa.dropped > 0 && sa.delayed > 0 && sa.reordered > 0);
    }

    #[test]
    fn delayed_intervals_are_released_when_due() {
        let plan = FaultPlan {
            seed: 1,
            delay_rate: 1.0,
            delay: SimDuration::from_millis(10),
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan);
        let t0 = SimTime::from_micros(1_000);
        assert!(inj.filter_intervals(vec![iv(0, 0, 500)], t0).is_empty());
        // Not due yet half-way through the delay.
        let t1 = t0 + SimDuration::from_millis(5);
        assert!(inj.filter_intervals(Vec::new(), t1).is_empty());
        let t2 = t0 + SimDuration::from_millis(10);
        let released = inj.filter_intervals(Vec::new(), t2);
        assert_eq!(released, vec![iv(0, 0, 500)]);
        assert_eq!(inj.stats().delayed, 1);
    }

    #[test]
    fn kills_fire_once_in_schedule_order() {
        let mut plan = FaultPlan::none();
        plan.kills = vec![
            KillEvent {
                at: SimTime::from_micros(100),
                target: KillTarget::Proc(1),
            },
            KillEvent {
                at: SimTime::from_micros(200),
                target: KillTarget::Node("n0".into()),
            },
        ];
        let mut inj = FaultInjector::new(plan);
        assert!(inj.due_kills(SimTime::from_micros(50)).is_empty());
        let first = inj.due_kills(SimTime::from_micros(150));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].target, KillTarget::Proc(1));
        let second = inj.due_kills(SimTime::from_micros(10_000));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].target, KillTarget::Node("n0".into()));
        assert!(inj.due_kills(SimTime::from_micros(u64::MAX)).is_empty());
        assert_eq!(inj.stats().kills_fired, 2);
    }

    #[test]
    fn tool_crash_fires_exactly_once() {
        let mut plan = FaultPlan::none();
        plan.tool_crash_at = Some(SimTime::from_micros(500));
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.crash_due(SimTime::from_micros(400)));
        assert!(inj.crash_due(SimTime::from_micros(600)));
        assert!(!inj.crash_due(SimTime::from_micros(700)));
    }

    #[test]
    fn overload_faults_round_trip_and_enable_the_plan() {
        let mut plan = FaultPlan::none();
        plan.sample_flood = 5.0;
        assert!(!plan.is_disabled() && plan.touches_overload());
        let mut plan = FaultPlan::none();
        plan.slow_collector = SimDuration::from_millis(1);
        assert!(!plan.is_disabled() && plan.touches_overload());
        let mut plan = FaultPlan::none();
        plan.request_storm_rate = 0.25;
        plan.request_storm_burst = 8;
        assert!(!plan.is_disabled() && plan.touches_overload());
        let parsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn flood_units_scale_with_the_batch() {
        let mut plan = FaultPlan::none();
        plan.sample_flood = 5.0;
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.flood_units(10), 40);
        assert_eq!(inj.flood_units(0), 0);
        assert_eq!(inj.stats().flooded, 40);
        let mut off = FaultInjector::new(FaultPlan::none());
        assert_eq!(off.flood_units(1000), 0);
        assert_eq!(off.stats().flooded, 0);
    }

    #[test]
    fn slow_collector_defers_every_delivered_request() {
        let mut plan = FaultPlan::none();
        plan.slow_collector = SimDuration::from_millis(3);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..5 {
            assert_eq!(
                inj.request_outcome(),
                RequestFault::Defer(SimDuration::from_millis(3))
            );
        }
        assert_eq!(inj.stats().slowed, 5);
        // Stacks on top of a drawn deferral.
        let mut plan = FaultPlan::none();
        plan.slow_collector = SimDuration::from_millis(3);
        plan.request_defer_rate = 1.0;
        plan.request_defer_by = SimDuration::from_millis(2);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.request_outcome(),
            RequestFault::Defer(SimDuration::from_millis(5))
        );
    }

    #[test]
    fn request_storms_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::none();
            plan.seed = seed;
            plan.request_storm_rate = 0.5;
            plan.request_storm_burst = 4;
            let mut inj = FaultInjector::new(plan);
            (0..64).map(|_| inj.storm_requests()).collect::<Vec<_>>()
        };
        let a = run(3);
        assert_eq!(a, run(3));
        assert_ne!(a, run(4));
        assert!(a.contains(&4) && a.contains(&0));
    }

    #[test]
    fn wire_faults_round_trip_but_do_not_enable_the_sim_plan() {
        let mut plan = FaultPlan::none();
        plan.wire_conn_drop_rate = 0.1;
        plan.wire_torn_request_rate = 0.05;
        plan.wire_slow_client_ms = 20;
        plan.wire_daemon_kill_after = 3;
        assert!(plan.touches_wire());
        // Wire faults live on the transport, not in the sim: the plan
        // still counts as disabled so a zero-sim-fault remote run keeps
        // the bit-identical bypass path.
        assert!(plan.is_disabled());
        let parsed = FaultPlan::parse(&plan.to_text()).unwrap();
        assert_eq!(parsed, plan);
        let stripped = plan.without_wire();
        assert!(!stripped.touches_wire());
        assert_eq!(stripped, FaultPlan::none());
        // And a mixed plan strips to its sim half.
        plan.drop_rate = 0.2;
        assert!(!plan.is_disabled());
        assert_eq!(plan.without_wire().drop_rate, 0.2);
    }

    #[test]
    fn wire_parse_rejects_garbage() {
        assert!(FaultPlan::parse("histpc-faults v1\nwire-conn-drop 1.5\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\nwire-torn-request\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\nwire-slow-client x\n").is_err());
        assert!(FaultPlan::parse("histpc-faults v1\nwire-daemon-kill\n").is_err());
    }

    #[test]
    fn wire_injector_is_deterministic_and_independent() {
        let mut plan = FaultPlan::none();
        plan.seed = 11;
        plan.wire_conn_drop_rate = 0.3;
        plan.wire_torn_request_rate = 0.2;
        let run = |plan: &FaultPlan| {
            let mut w = WireInjector::new(plan.clone());
            (0..64).map(|_| w.next_fault()).collect::<Vec<_>>()
        };
        let a = run(&plan);
        assert_eq!(a, run(&plan));
        let mut other = plan.clone();
        other.seed = 12;
        assert_ne!(a, run(&other));
        assert!(a.contains(&WireFault::Clean));
        assert!(a.contains(&WireFault::ConnDrop));
        assert!(a.contains(&WireFault::TornRequest));
        // Enabling wire faults must not shift sim-level draws: the
        // sample substream is independent of substream 6.
        let base: Vec<Interval> = (0..50).map(|i| iv(0, i * 100, i * 100 + 90)).collect();
        let mut sim_plan = lossy_plan();
        sim_plan.kills.clear();
        let mut with_wire = sim_plan.clone();
        with_wire.wire_conn_drop_rate = 0.5;
        let drain = |p: FaultPlan| {
            let mut inj = FaultInjector::new(p);
            inj.filter_intervals(base.clone(), SimTime::from_micros(10_000))
        };
        assert_eq!(drain(sim_plan), drain(with_wire));
    }

    #[test]
    fn wire_injector_clean_plan_draws_nothing() {
        let mut w = WireInjector::new(FaultPlan::none());
        for _ in 0..8 {
            assert_eq!(w.next_fault(), WireFault::Clean);
        }
        assert_eq!(w.slow_client_delay(), None);
        assert_eq!(w.stats(), WireStats::default());
    }

    #[test]
    fn slow_client_and_tear_line_behave() {
        let mut plan = FaultPlan::none();
        plan.wire_slow_client_ms = 15;
        plan.wire_torn_request_rate = 1.0;
        let mut w = WireInjector::new(plan);
        assert_eq!(
            w.slow_client_delay(),
            Some(std::time::Duration::from_millis(15))
        );
        let line = "start tenant=alpha app=poisson-a label=r1";
        let torn = w.tear_line(line);
        assert!(torn.len() < line.len());
        assert!(line.starts_with(&torn));
        assert_eq!(w.tear_line(""), "");
        assert!(w.stats().slowed == 1);
    }

    #[test]
    fn corrupt_text_truncates_deterministically() {
        let text = "histpc-record v1\napp poisson\nlots of important lines\n".repeat(10);
        let a = corrupt_text(9, &text);
        let b = corrupt_text(9, &text);
        assert_eq!(a, b);
        assert!(a.len() < text.len());
        assert!(!a.is_empty());
        assert!(text.starts_with(&a));
    }

    proptest::proptest! {
        #[test]
        fn any_plan_round_trips(
            seed in 0u64..1000,
            drop in 0u32..=100,
            fail in 0u32..=100,
            kill_at in 0u64..10_000_000,
        ) {
            let plan = FaultPlan {
                seed,
                drop_rate: f64::from(drop) / 100.0,
                request_fail_rate: f64::from(fail) / 100.0,
                kills: vec![KillEvent {
                    at: SimTime::from_micros(kill_at),
                    target: KillTarget::Proc(0),
                }],
                ..FaultPlan::none()
            };
            let parsed = FaultPlan::parse(&plan.to_text()).unwrap();
            proptest::prop_assert_eq!(parsed, plan);
        }
    }
}
