//! Simulated time.
//!
//! All simulation timestamps are microsecond ticks from the start of the
//! run. The Performance Consultant reports bottleneck times in these
//! application timestamps, matching the paper's methodology ("the times we
//! recorded are the timestamps assigned by Paradyn to the data, and reflect
//! application execution time", §4.1).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulated instant, in microseconds since run start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the run.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from microsecond ticks.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Microsecond tick count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration since `earlier`; saturates to zero when `earlier` is
    /// later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Pointwise maximum.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Pointwise minimum.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from microsecond ticks.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Builds a duration from fractional seconds (rounded to the nearest
    /// microsecond, saturating at zero for negative input).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microsecond tick count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reports and ratios).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the duration is zero ticks.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float, rounding to the nearest tick.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, t: SimTime) -> SimDuration {
        self.since(t)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert!((SimTime::from_secs(5).as_secs_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!((t - SimTime::from_secs(1)).as_micros(), 500_000);
        // Subtraction saturates rather than panicking.
        assert_eq!(SimTime::ZERO - t, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration(10).mul_f64(1.26).as_micros(), 13);
        assert_eq!(SimDuration(10).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_and_ordering() {
        let total: SimDuration = [SimDuration(1), SimDuration(2), SimDuration(3)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration(6));
        assert!(SimTime(5).max(SimTime(9)) == SimTime(9));
        assert!(SimTime(5).min(SimTime(9)) == SimTime(5));
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }
}
