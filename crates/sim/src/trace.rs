//! Execution traces: per-process timelines and cumulative totals.
//!
//! The engine emits an [`Interval`] each time a process finishes a
//! contiguous stretch of one activity (CPU burst, synchronization wait,
//! I/O wait). The instrumentation layer consumes intervals online; the
//! engine also maintains a full-resolution [`TraceAccumulator`], the
//! "ground truth" a postmortem analysis (or a historical record) is built
//! from.

use crate::program::{FuncId, ProcId, TagId};
use crate::time::{SimDuration, SimTime};

/// The kind of activity covered by an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActivityKind {
    /// Executing on the CPU.
    Cpu,
    /// Blocked in synchronization (message wait, rendezvous, barrier).
    SyncWait,
    /// Blocked in I/O.
    IoWait,
}

impl ActivityKind {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ActivityKind::Cpu => "cpu",
            ActivityKind::SyncWait => "sync_wait",
            ActivityKind::IoWait => "io_wait",
        }
    }

    /// Dense index (declaration order, which is also the `Ord` order).
    pub fn index(self) -> usize {
        match self {
            ActivityKind::Cpu => 0,
            ActivityKind::SyncWait => 1,
            ActivityKind::IoWait => 2,
        }
    }

    /// All kinds in `Ord` order.
    pub const ALL: [ActivityKind; 3] = [
        ActivityKind::Cpu,
        ActivityKind::SyncWait,
        ActivityKind::IoWait,
    ];
}

/// One contiguous stretch of a single activity on one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval {
    /// Process the interval belongs to.
    pub proc: ProcId,
    /// Function the activity is attributed to.
    pub func: FuncId,
    /// Kind of activity.
    pub kind: ActivityKind,
    /// Message tag, for communication waits.
    pub tag: Option<TagId>,
    /// Start timestamp.
    pub start: SimTime,
    /// End timestamp (>= start).
    pub end: SimTime,
    /// Message payload bytes moved during the interval (0 otherwise).
    pub bytes: u64,
}

impl Interval {
    /// The interval's length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// The part of this interval overlapping `[from, to)`, as a duration.
    pub fn overlap(&self, from: SimTime, to: SimTime) -> SimDuration {
        let s = self.start.max(from);
        let e = self.end.min(to);
        e - s
    }
}

/// A key of the cumulative totals table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TotalsKey {
    /// Process.
    pub proc: ProcId,
    /// Function.
    pub func: FuncId,
    /// Activity kind.
    pub kind: ActivityKind,
    /// Message tag, if any.
    pub tag: Option<TagId>,
}

/// Per-(proc, func) activity totals: one slot per kind for untagged
/// intervals, plus a short tag-sorted list for tagged ones.
#[derive(Debug, Clone, Default)]
struct FuncCell {
    /// Untagged totals, indexed by [`ActivityKind::index`].
    none: [SimDuration; 3],
    /// Bitmask of kinds observed untagged (so zero totals still list).
    none_seen: u8,
    /// `(tag, per-kind totals, kinds-seen mask)`, sorted by tag.
    tagged: Vec<(TagId, [SimDuration; 3], u8)>,
}

/// Full-resolution cumulative activity totals for a run.
///
/// The accumulator sits on the engine's interval-emission hot path, so
/// totals live in dense per-process, per-function tables (the tag space
/// is tiny) rather than a keyed map; the deterministic key-ordered view
/// is materialized on demand by [`TraceAccumulator::iter`].
#[derive(Debug, Clone, Default)]
pub struct TraceAccumulator {
    /// `[proc][func]`, grown on demand.
    totals: Vec<Vec<FuncCell>>,
    /// `[proc][tag] -> (count, bytes)`, grown on demand.
    msgs: Vec<Vec<(u64, u64)>>,
    proc_end: Vec<SimTime>,
}

impl TraceAccumulator {
    /// An empty accumulator.
    pub fn new() -> TraceAccumulator {
        TraceAccumulator::default()
    }

    /// Folds one interval into the totals.
    pub fn observe(&mut self, iv: &Interval) {
        let p = iv.proc.0 as usize;
        let f = iv.func.0 as usize;
        if p >= self.totals.len() {
            self.totals.resize_with(p + 1, Vec::new);
        }
        let by_func = &mut self.totals[p];
        if f >= by_func.len() {
            by_func.resize_with(f + 1, FuncCell::default);
        }
        let cell = &mut by_func[f];
        let k = iv.kind.index();
        match iv.tag {
            None => {
                cell.none[k] += iv.duration();
                cell.none_seen |= 1 << k;
            }
            Some(tag) => {
                let slot = match cell.tagged.iter_mut().find(|(t, _, _)| *t >= tag) {
                    Some(entry) if entry.0 == tag => entry,
                    _ => {
                        let at = cell.tagged.partition_point(|(t, _, _)| *t < tag);
                        cell.tagged.insert(at, (tag, [SimDuration::ZERO; 3], 0));
                        &mut cell.tagged[at]
                    }
                };
                slot.1[k] += iv.duration();
                slot.2 |= 1 << k;
            }
        }
        if let Some(tag) = iv.tag {
            if iv.bytes > 0 {
                let t = tag.0 as usize;
                if p >= self.msgs.len() {
                    self.msgs.resize_with(p + 1, Vec::new);
                }
                let by_tag = &mut self.msgs[p];
                if t >= by_tag.len() {
                    by_tag.resize(t + 1, (0, 0));
                }
                by_tag[t].0 += 1;
                by_tag[t].1 += iv.bytes;
            }
        }
        if p >= self.proc_end.len() {
            self.proc_end.resize(p + 1, SimTime::ZERO);
        }
        self.proc_end[p] = self.proc_end[p].max(iv.end);
    }

    /// All (key, total) pairs in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (TotalsKey, SimDuration)> + '_ {
        self.totals.iter().enumerate().flat_map(|(p, by_func)| {
            by_func.iter().enumerate().flat_map(move |(f, cell)| {
                ActivityKind::ALL.into_iter().flat_map(move |kind| {
                    let k = kind.index();
                    let none = (cell.none_seen & (1 << k) != 0).then(|| {
                        (
                            TotalsKey {
                                proc: ProcId(p as u16),
                                func: FuncId(f as u16),
                                kind,
                                tag: None,
                            },
                            cell.none[k],
                        )
                    });
                    let tagged = cell
                        .tagged
                        .iter()
                        .filter(move |(_, _, seen)| seen & (1 << k) != 0)
                        .map(move |(tag, durs, _)| {
                            (
                                TotalsKey {
                                    proc: ProcId(p as u16),
                                    func: FuncId(f as u16),
                                    kind,
                                    tag: Some(*tag),
                                },
                                durs[k],
                            )
                        });
                    none.into_iter().chain(tagged)
                })
            })
        })
    }

    /// Total time of `kind` on `proc` across all functions and tags.
    pub fn proc_total(&self, proc: ProcId, kind: ActivityKind) -> SimDuration {
        self.iter()
            .filter(|(k, _)| k.proc == proc && k.kind == kind)
            .map(|(_, d)| d)
            .sum()
    }

    /// Total time of `kind` attributed to `func` across all processes.
    pub fn func_total(&self, func: FuncId, kind: ActivityKind) -> SimDuration {
        self.iter()
            .filter(|(k, _)| k.func == func && k.kind == kind)
            .map(|(_, d)| d)
            .sum()
    }

    /// Total time of `kind` attributed to message tag `tag`.
    pub fn tag_total(&self, tag: TagId, kind: ActivityKind) -> SimDuration {
        self.iter()
            .filter(|(k, _)| k.tag == Some(tag) && k.kind == kind)
            .map(|(_, d)| d)
            .sum()
    }

    /// Grand total of `kind` over the whole program.
    pub fn total(&self, kind: ActivityKind) -> SimDuration {
        self.iter()
            .filter(|(k, _)| k.kind == kind)
            .map(|(_, d)| d)
            .sum()
    }

    /// The last event timestamp seen for `proc` (its busy time so far).
    pub fn proc_end(&self, proc: ProcId) -> SimTime {
        self.proc_end
            .get(proc.0 as usize)
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    /// Wall-clock end of the run seen so far (max over processes).
    pub fn end_time(&self) -> SimTime {
        self.proc_end.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// Number of messages tagged `tag` received by `proc`.
    pub fn msg_count(&self, proc: ProcId, tag: TagId) -> u64 {
        self.msgs
            .get(proc.0 as usize)
            .and_then(|by_tag| by_tag.get(tag.0 as usize))
            .map(|&(count, _)| count)
            .unwrap_or(0)
    }

    /// Bytes of messages tagged `tag` moved by `proc`.
    pub fn msg_byte_total(&self, proc: ProcId, tag: TagId) -> u64 {
        self.msgs
            .get(proc.0 as usize)
            .and_then(|by_tag| by_tag.get(tag.0 as usize))
            .map(|&(_, bytes)| bytes)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(
        proc: u16,
        func: u16,
        kind: ActivityKind,
        tag: Option<u16>,
        start: u64,
        end: u64,
        bytes: u64,
    ) -> Interval {
        Interval {
            proc: ProcId(proc),
            func: FuncId(func),
            kind,
            tag: tag.map(TagId),
            start: SimTime(start),
            end: SimTime(end),
            bytes,
        }
    }

    #[test]
    fn interval_duration_and_overlap() {
        let i = iv(0, 0, ActivityKind::Cpu, None, 100, 200, 0);
        assert_eq!(i.duration(), SimDuration(100));
        assert_eq!(i.overlap(SimTime(150), SimTime(300)), SimDuration(50));
        assert_eq!(i.overlap(SimTime(0), SimTime(100)), SimDuration::ZERO);
        assert_eq!(i.overlap(SimTime(0), SimTime(1000)), SimDuration(100));
        assert_eq!(i.overlap(SimTime(250), SimTime(300)), SimDuration::ZERO);
    }

    #[test]
    fn accumulator_totals_by_dimension() {
        let mut acc = TraceAccumulator::new();
        acc.observe(&iv(0, 1, ActivityKind::Cpu, None, 0, 50, 0));
        acc.observe(&iv(0, 2, ActivityKind::SyncWait, Some(0), 50, 80, 64));
        acc.observe(&iv(1, 2, ActivityKind::SyncWait, Some(0), 0, 40, 64));
        acc.observe(&iv(1, 1, ActivityKind::Cpu, None, 40, 70, 0));

        assert_eq!(
            acc.proc_total(ProcId(0), ActivityKind::Cpu),
            SimDuration(50)
        );
        assert_eq!(
            acc.proc_total(ProcId(1), ActivityKind::SyncWait),
            SimDuration(40)
        );
        assert_eq!(
            acc.func_total(FuncId(2), ActivityKind::SyncWait),
            SimDuration(70)
        );
        assert_eq!(
            acc.tag_total(TagId(0), ActivityKind::SyncWait),
            SimDuration(70)
        );
        assert_eq!(acc.total(ActivityKind::Cpu), SimDuration(80));
        assert_eq!(acc.end_time(), SimTime(80));
        assert_eq!(acc.proc_end(ProcId(1)), SimTime(70));
    }

    #[test]
    fn accumulator_counts_messages() {
        let mut acc = TraceAccumulator::new();
        acc.observe(&iv(0, 2, ActivityKind::SyncWait, Some(1), 0, 10, 128));
        acc.observe(&iv(0, 2, ActivityKind::SyncWait, Some(1), 10, 20, 128));
        // Zero-byte sync waits (barriers) are not messages.
        acc.observe(&iv(0, 2, ActivityKind::SyncWait, Some(1), 20, 30, 0));
        assert_eq!(acc.msg_count(ProcId(0), TagId(1)), 2);
        assert_eq!(acc.msg_byte_total(ProcId(0), TagId(1)), 256);
        assert_eq!(acc.msg_count(ProcId(0), TagId(0)), 0);
    }

    #[test]
    fn accumulator_merges_same_key() {
        let mut acc = TraceAccumulator::new();
        acc.observe(&iv(0, 1, ActivityKind::Cpu, None, 0, 10, 0));
        acc.observe(&iv(0, 1, ActivityKind::Cpu, None, 10, 25, 0));
        assert_eq!(acc.iter().count(), 1);
        assert_eq!(
            acc.func_total(FuncId(1), ActivityKind::Cpu),
            SimDuration(25)
        );
    }
}
