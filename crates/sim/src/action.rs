//! Process actions: the primitive operations a simulated process performs.
//!
//! Each simulated process executes a sequential script of actions. The
//! action vocabulary mirrors the MPI subset used by the paper's Poisson
//! application (Gropp et al., ch. 4): compute bursts, blocking send/receive,
//! non-blocking send/receive with wait, barriers/reductions, and file I/O.

use crate::program::{FuncId, ProcId, TagId};
use crate::time::SimDuration;

/// Identifier of a non-blocking communication request, local to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u32);

/// One primitive operation of a simulated process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Execute on the CPU for `dur` of unperturbed time, attributed to
    /// `func`. (Instrumentation perturbation can stretch the actual time.)
    Compute {
        /// Function the work is attributed to.
        func: FuncId,
        /// Unperturbed CPU time.
        dur: SimDuration,
    },
    /// Blocking send of `bytes` to `to` with message tag `tag`.
    /// Eager below the machine's threshold, rendezvous above it.
    Send {
        /// Function issuing the send.
        func: FuncId,
        /// Destination rank.
        to: ProcId,
        /// Message tag.
        tag: TagId,
        /// Payload size.
        bytes: u64,
    },
    /// Blocking receive of the next message from `from` with tag `tag`.
    Recv {
        /// Function issuing the receive.
        func: FuncId,
        /// Source rank.
        from: ProcId,
        /// Message tag.
        tag: TagId,
    },
    /// Non-blocking send; completes locally, transfer proceeds in the
    /// background. The request can be waited on with [`Action::WaitAll`].
    Isend {
        /// Function issuing the send.
        func: FuncId,
        /// Destination rank.
        to: ProcId,
        /// Message tag.
        tag: TagId,
        /// Payload size.
        bytes: u64,
        /// Local request handle.
        req: ReqId,
    },
    /// Non-blocking receive posting.
    Irecv {
        /// Function issuing the receive.
        func: FuncId,
        /// Source rank.
        from: ProcId,
        /// Message tag.
        tag: TagId,
        /// Local request handle.
        req: ReqId,
    },
    /// Block until all listed requests complete.
    WaitAll {
        /// Function issuing the wait.
        func: FuncId,
        /// Requests to complete.
        reqs: Vec<ReqId>,
    },
    /// Block until every process has entered the barrier; models both
    /// `MPI_Barrier` and (cost-wise) small collective reductions.
    Barrier {
        /// Function issuing the barrier.
        func: FuncId,
    },
    /// A data-carrying collective (`MPI_Allreduce` / `MPI_Bcast`-class):
    /// all processes block until everyone arrives, then pay a log-tree
    /// transfer cost for `bytes` of payload.
    AllReduce {
        /// Function issuing the collective.
        func: FuncId,
        /// Per-process payload size.
        bytes: u64,
    },
    /// Blocking sequential I/O of `bytes`.
    Io {
        /// Function issuing the I/O.
        func: FuncId,
        /// Bytes read or written.
        bytes: u64,
    },
}

impl Action {
    /// The function this action is attributed to.
    pub fn func(&self) -> FuncId {
        match self {
            Action::Compute { func, .. }
            | Action::Send { func, .. }
            | Action::Recv { func, .. }
            | Action::Isend { func, .. }
            | Action::Irecv { func, .. }
            | Action::WaitAll { func, .. }
            | Action::Barrier { func }
            | Action::AllReduce { func, .. }
            | Action::Io { func, .. } => *func,
        }
    }

    /// The message tag, for communication actions.
    pub fn tag(&self) -> Option<TagId> {
        match self {
            Action::Send { tag, .. }
            | Action::Recv { tag, .. }
            | Action::Isend { tag, .. }
            | Action::Irecv { tag, .. } => Some(*tag),
            _ => None,
        }
    }
}

/// A sequential generator of actions for one process.
///
/// Scripts may be infinite (iterative applications that run until the
/// diagnosis session ends) or finite (the process exits when `next`
/// returns `None`).
pub trait ProcessScript {
    /// The next action, or `None` when the process has finished.
    fn next_action(&mut self) -> Option<Action>;
}

/// A script backed by a fixed action list; convenient in tests.
#[derive(Debug, Clone)]
pub struct VecScript {
    actions: std::vec::IntoIter<Action>,
}

impl VecScript {
    /// Wraps a fixed action list.
    pub fn new(actions: Vec<Action>) -> VecScript {
        VecScript {
            actions: actions.into_iter(),
        }
    }
}

impl ProcessScript for VecScript {
    fn next_action(&mut self) -> Option<Action> {
        self.actions.next()
    }
}

/// A script that repeats one iteration body forever (or `max_iters` times),
/// useful for modelling fixed-iteration loops.
pub struct LoopScript<F: FnMut(u64) -> Vec<Action>> {
    body: F,
    iter: u64,
    max_iters: Option<u64>,
    buffer: std::collections::VecDeque<Action>,
}

impl<F: FnMut(u64) -> Vec<Action>> LoopScript<F> {
    /// Creates a loop script; `body(i)` yields the actions of iteration `i`.
    pub fn new(max_iters: Option<u64>, body: F) -> Self {
        LoopScript {
            body,
            iter: 0,
            max_iters,
            buffer: std::collections::VecDeque::new(),
        }
    }
}

impl<F: FnMut(u64) -> Vec<Action>> ProcessScript for LoopScript<F> {
    fn next_action(&mut self) -> Option<Action> {
        loop {
            if let Some(a) = self.buffer.pop_front() {
                return Some(a);
            }
            if let Some(max) = self.max_iters {
                if self.iter >= max {
                    return None;
                }
            }
            let batch = (self.body)(self.iter);
            self.iter += 1;
            if batch.is_empty() && self.max_iters.is_none() {
                // An empty infinite body would spin forever.
                return None;
            }
            self.buffer.extend(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_accessors() {
        let a = Action::Send {
            func: FuncId(3),
            to: ProcId(1),
            tag: TagId(0),
            bytes: 64,
        };
        assert_eq!(a.func(), FuncId(3));
        assert_eq!(a.tag(), Some(TagId(0)));
        let b = Action::Barrier { func: FuncId(2) };
        assert_eq!(b.func(), FuncId(2));
        assert_eq!(b.tag(), None);
    }

    #[test]
    fn vec_script_drains_in_order() {
        let mut s = VecScript::new(vec![
            Action::Barrier { func: FuncId(0) },
            Action::Io {
                func: FuncId(1),
                bytes: 10,
            },
        ]);
        assert!(matches!(s.next_action(), Some(Action::Barrier { .. })));
        assert!(matches!(s.next_action(), Some(Action::Io { .. })));
        assert!(s.next_action().is_none());
        assert!(s.next_action().is_none());
    }

    #[test]
    fn loop_script_repeats_body() {
        let mut s = LoopScript::new(Some(3), |i| {
            vec![Action::Compute {
                func: FuncId(i as u16),
                dur: SimDuration(1),
            }]
        });
        let mut funcs = vec![];
        while let Some(a) = s.next_action() {
            funcs.push(a.func().0);
        }
        assert_eq!(funcs, vec![0, 1, 2]);
    }

    #[test]
    fn loop_script_stops_on_empty_infinite_body() {
        let mut s = LoopScript::new(None, |_| Vec::new());
        assert!(s.next_action().is_none());
    }
}
