//! The iterative Poisson function decomposition application (Gropp et al.,
//! *Using MPI*, ch. 4), in the four versions studied in the paper's §4.3:
//!
//! * **A** — 1-D decomposition, blocking send/receive (`exchng1`);
//! * **B** — 1-D decomposition, non-blocking operators (`nbexchng1`);
//! * **C** — 2-D decomposition (`exchng2`);
//! * **D** — the same code as C run across 8 nodes (others use 4).
//!
//! Per the paper, all versions compute a fixed number of iterations rather
//! than stopping at convergence. Each iteration sweeps a Jacobi stencil
//! over the local block, exchanges ghost cells with the decomposition
//! neighbours (tags `3_0` for the first dimension and `3_1` for the
//! second), and performs a residual reduction rooted at rank 0 (tag
//! `3_-1`, attributed to `main`). Per-process work skew plus the reduction
//! make the application strongly synchronization-dominated, matching the
//! profile reported in §4.2 (roughly 75% of execution time spent waiting,
//! concentrated in the exchange function and `main`).
//!
//! The module and function names per version match the paper's fig. 3
//! (`oned.f`/`exchng1.f`/`sweep.f` for A, `onednb.f`/`nbexchng.f`/
//! `nbsweep.f` for B), which is what makes the cross-version mapping
//! experiments meaningful.

use crate::action::{Action, LoopScript, ProcessScript, ReqId};
use crate::machine::MachineModel;
use crate::program::{AppSpec, FuncId, ModuleSpec, ProcId, TagId};
use crate::rng::Rng;
use crate::time::SimDuration;
use crate::workloads::Workload;

/// Which version of the Poisson application to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoissonVersion {
    /// 1-D decomposition with blocking send/receive.
    A,
    /// 1-D decomposition with non-blocking operators.
    B,
    /// 2-D decomposition on 4 nodes.
    C,
    /// 2-D decomposition on 8 nodes.
    D,
}

impl PoissonVersion {
    /// The version's label used in reports ("A".."D").
    pub fn label(self) -> &'static str {
        match self {
            PoissonVersion::A => "A",
            PoissonVersion::B => "B",
            PoissonVersion::C => "C",
            PoissonVersion::D => "D",
        }
    }

    /// Number of processes (one per node, MPI-1 static model).
    pub fn procs(self) -> usize {
        match self {
            PoissonVersion::D => 8,
            _ => 4,
        }
    }
}

/// Configurable Poisson workload.
#[derive(Debug, Clone)]
pub struct PoissonWorkload {
    /// Version to simulate.
    pub version: PoissonVersion,
    /// Global grid edge length (points).
    pub grid: usize,
    /// Fixed iteration count, or `None` to iterate until the diagnosis
    /// session stops the run.
    pub max_iters: Option<u64>,
    /// Per-process relative work factors (length = process count). The
    /// defaults reproduce the per-process wait profile of §4.2.
    pub work_skew: Vec<f64>,
    /// Compute jitter amplitude (fraction, e.g. 0.03 = ±3%).
    pub jitter: f64,
    /// RNG seed for the jitter streams.
    pub seed: u64,
    /// First machine-node number; version D defaults to a different base
    /// so machine resources differ across runs, exercising the paper's
    /// node-mapping scenario.
    pub node_base: usize,
    /// Write a checkpoint (I/O on rank 0) every this many iterations.
    pub checkpoint_every: u64,
}

impl PoissonWorkload {
    /// The paper-shaped default configuration for `version`.
    pub fn new(version: PoissonVersion) -> PoissonWorkload {
        let procs = version.procs();
        // Rank work skew: ranks 0 and 1 carry roughly full blocks while
        // ranks 2 and 3 carry light ones, so the light ranks wait ~80-85%
        // of the time and the heavy ones ~45% (cf. §4.2's 81/86/46/47).
        let mut work_skew = vec![1.0, 0.96, 0.35, 0.27];
        if procs == 8 {
            work_skew = vec![1.0, 0.96, 0.35, 0.27, 0.9, 0.5, 0.6, 0.3];
        }
        PoissonWorkload {
            version,
            grid: 96,
            max_iters: None,
            work_skew,
            jitter: 0.03,
            seed: 0x5EED,
            node_base: if version == PoissonVersion::D { 9 } else { 1 },
            checkpoint_every: 400,
        }
    }

    /// Overrides the iteration count.
    pub fn with_max_iters(mut self, iters: Option<u64>) -> Self {
        self.max_iters = iters;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn module_names(&self) -> (&'static str, &'static str, &'static str) {
        // (main module, exchange module, sweep module) per paper fig. 3.
        match self.version {
            PoissonVersion::A => ("oned.f", "exchng1.f", "sweep.f"),
            PoissonVersion::B => ("onednb.f", "nbexchng.f", "nbsweep.f"),
            PoissonVersion::C | PoissonVersion::D => ("twod.f", "exchng2.f", "sweep2d.f"),
        }
    }

    fn function_names(&self) -> (&'static str, &'static str, &'static str) {
        match self.version {
            PoissonVersion::A => ("main", "exchng1", "sweep1d"),
            PoissonVersion::B => ("main", "nbexchng1", "nbsweep"),
            PoissonVersion::C | PoissonVersion::D => ("main", "exchng2", "sweep2d"),
        }
    }

    /// Resolved function ids: (main, exchange, sweep, diff).
    fn funcs(&self, app: &AppSpec) -> (FuncId, FuncId, FuncId, FuncId) {
        let (mm, me, ms) = self.module_names();
        let (fm, fe, fs) = self.function_names();
        (
            app.func_id(mm, fm).expect("main exists"),
            app.func_id(me, fe).expect("exchange exists"),
            app.func_id(ms, fs).expect("sweep exists"),
            app.func_id("diff.f", "diff").expect("diff exists"),
        )
    }

    /// Decomposition shape `(px, py)`; 1-D versions use `(procs, 1)`.
    fn shape(&self) -> (usize, usize) {
        match self.version {
            PoissonVersion::A | PoissonVersion::B => (self.version.procs(), 1),
            PoissonVersion::C => (2, 2),
            PoissonVersion::D => (4, 2),
        }
    }

    /// Unperturbed sweep flops for `rank`, before jitter.
    fn sweep_flops(&self, rank: usize) -> f64 {
        let (px, py) = self.shape();
        let bx = self.grid / px;
        let by = self.grid / py;
        // Five-point stencil: ~5 flops per interior point.
        (bx * by) as f64 * 5.0 * self.work_skew[rank]
    }

    /// Ghost-cell message size for dimension `dim` (0 = x, 1 = y), bytes.
    fn ghost_bytes(&self, dim: usize) -> u64 {
        let (px, py) = self.shape();
        let edge = if dim == 0 {
            self.grid / py // a column of the local block
        } else {
            self.grid / px // a row of the local block
        };
        (edge * 8) as u64
    }
}

/// Ordered blocking exchange with one neighbour: the lower rank sends
/// first, the higher rank receives first (a deadlock-free pairwise
/// ordering in the spirit of Gropp et al.'s parity trick, valid for any
/// neighbour pair regardless of decomposition shape).
fn blocking_exchange(
    out: &mut Vec<Action>,
    func: FuncId,
    me: usize,
    peer: usize,
    tag: TagId,
    bytes: u64,
) {
    let send = Action::Send {
        func,
        to: ProcId(peer as u16),
        tag,
        bytes,
    };
    let recv = Action::Recv {
        func,
        from: ProcId(peer as u16),
        tag,
    };
    if me < peer {
        out.push(send);
        out.push(recv);
    } else {
        out.push(recv);
        out.push(send);
    }
}

impl Workload for PoissonWorkload {
    fn app_spec(&self) -> AppSpec {
        let (mm, me, ms) = self.module_names();
        let (fm, fe, fs) = self.function_names();
        let procs = self.version.procs();
        AppSpec {
            name: "poisson".into(),
            version: self.version.label().into(),
            modules: vec![
                ModuleSpec {
                    name: mm.into(),
                    functions: vec![fm.into()],
                },
                ModuleSpec {
                    name: me.into(),
                    functions: vec![fe.into()],
                },
                ModuleSpec {
                    name: ms.into(),
                    functions: vec![fs.into()],
                },
                ModuleSpec {
                    name: "diff.f".into(),
                    functions: vec!["diff".into()],
                },
                // Setup and helper code from the Gropp et al. program:
                // mostly trivial at run time, but every function enlarges
                // the search space the Performance Consultant must cover
                // (and gives historic trivial-function prunes something
                // to prune).
                ModuleSpec {
                    name: "decomp.f".into(),
                    functions: vec!["mpe_decomp1d".into(), "mpe_decomp2d".into()],
                },
                ModuleSpec {
                    name: "init.f".into(),
                    functions: vec!["initgrid".into(), "initguess".into(), "setparams".into()],
                },
                ModuleSpec {
                    name: "bc.f".into(),
                    functions: vec!["applybc".into(), "cornerfix".into()],
                },
            ],
            processes: (1..=procs).map(|i| format!("poisson:{i}")).collect(),
            nodes: (0..procs)
                .map(|i| format!("node{:02}", self.node_base + i))
                .collect(),
            proc_node: (0..procs).collect(),
            tags: vec!["3_0".into(), "3_1".into(), "3_-1".into()],
        }
    }

    fn machine(&self) -> MachineModel {
        MachineModel::sp2(self.version.procs())
    }

    fn scripts(&self) -> Vec<Box<dyn ProcessScript>> {
        let app = self.app_spec();
        let (f_main, f_exch, f_sweep, f_diff) = self.funcs(&app);
        let f_decomp = app.func_id("decomp.f", "mpe_decomp1d").expect("exists");
        let f_decomp2 = app.func_id("decomp.f", "mpe_decomp2d").expect("exists");
        let f_initgrid = app.func_id("init.f", "initgrid").expect("exists");
        let f_initguess = app.func_id("init.f", "initguess").expect("exists");
        let f_setparams = app.func_id("init.f", "setparams").expect("exists");
        let f_applybc = app.func_id("bc.f", "applybc").expect("exists");
        let f_cornerfix = app.func_id("bc.f", "cornerfix").expect("exists");
        let procs = self.version.procs();
        let (px, py) = self.shape();
        let machine = self.machine();
        let tag_x = TagId(0); // "3_0"
        let tag_y = TagId(1); // "3_1"
        let tag_reduce = TagId(2); // "3_-1"
        let root = Rng::new(self.seed);

        (0..procs)
            .map(|rank| {
                let wl = self.clone();
                let mut rng = root.substream(rank as u64);
                let flops = wl.sweep_flops(rank);
                let rate = machine.flops_per_sec;
                let x = rank % px;
                let y = rank / px;
                let nonblocking = wl.version == PoissonVersion::B;
                let body = move |iter: u64| {
                    let mut acts: Vec<Action> = Vec::with_capacity(16);
                    let jit = rng.jitter(wl.jitter);
                    let sweep_time = SimDuration::from_secs_f64(flops * jit / rate);

                    // One-time setup on the first iteration: domain
                    // decomposition and grid initialization.
                    if iter == 0 {
                        for (f, frac) in [
                            (f_setparams, 0.2),
                            (f_decomp, 0.3),
                            (f_decomp2, 0.3),
                            (f_initgrid, 2.0),
                            (f_initguess, 1.0),
                        ] {
                            acts.push(Action::Compute {
                                func: f,
                                dur: sweep_time.mul_f64(frac),
                            });
                        }
                    }
                    // Boundary conditions: small per-iteration work.
                    acts.push(Action::Compute {
                        func: f_applybc,
                        dur: sweep_time.mul_f64(0.015),
                    });
                    if iter.is_multiple_of(8) {
                        acts.push(Action::Compute {
                            func: f_cornerfix,
                            dur: sweep_time.mul_f64(0.004),
                        });
                    }

                    // Neighbour ranks in the decomposition.
                    let left = (x > 0).then(|| rank - 1);
                    let right = (x + 1 < px).then(|| rank + 1);
                    let down = (y > 0).then(|| rank - px);
                    let up = (y + 1 < py).then(|| rank + px);

                    if nonblocking {
                        // Post receives and sends, overlap the sweep, then
                        // wait and finish the boundary rows.
                        let mut req = 0u32;
                        let mut reqs = Vec::new();
                        for peer in [left, right].into_iter().flatten() {
                            for mk in 0..2 {
                                let r = ReqId(iter as u32 * 64 + req);
                                req += 1;
                                reqs.push(r);
                                if mk == 0 {
                                    acts.push(Action::Irecv {
                                        func: f_exch,
                                        from: ProcId(peer as u16),
                                        tag: tag_x,
                                        req: r,
                                    });
                                } else {
                                    acts.push(Action::Isend {
                                        func: f_exch,
                                        to: ProcId(peer as u16),
                                        tag: tag_x,
                                        bytes: wl.ghost_bytes(0),
                                        req: r,
                                    });
                                }
                            }
                        }
                        // Interior sweep overlaps the transfers.
                        acts.push(Action::Compute {
                            func: f_sweep,
                            dur: sweep_time.mul_f64(0.8),
                        });
                        acts.push(Action::WaitAll { func: f_exch, reqs });
                        // Boundary rows once ghost data has arrived.
                        acts.push(Action::Compute {
                            func: f_sweep,
                            dur: sweep_time.mul_f64(0.2),
                        });
                    } else {
                        acts.push(Action::Compute {
                            func: f_sweep,
                            dur: sweep_time,
                        });
                        // x-dimension ghost exchange, tag 3_0.
                        for peer in [left, right].into_iter().flatten() {
                            blocking_exchange(
                                &mut acts,
                                f_exch,
                                rank,
                                peer,
                                tag_x,
                                wl.ghost_bytes(0),
                            );
                        }
                        // y-dimension ghost exchange, tag 3_1 (2-D only).
                        for peer in [down, up].into_iter().flatten() {
                            blocking_exchange(
                                &mut acts,
                                f_exch,
                                rank,
                                peer,
                                tag_y,
                                wl.ghost_bytes(1),
                            );
                        }
                    }

                    // Local residual, then the reduction rooted at rank 0
                    // (attributed to main, tag 3_-1), as in the paper's
                    // profile where `main` carries ~20% of the wait.
                    acts.push(Action::Compute {
                        func: f_diff,
                        dur: sweep_time.mul_f64(0.06),
                    });
                    if rank == 0 {
                        for p in 1..procs {
                            acts.push(Action::Recv {
                                func: f_main,
                                from: ProcId(p as u16),
                                tag: tag_reduce,
                            });
                        }
                        for p in 1..procs {
                            acts.push(Action::Send {
                                func: f_main,
                                to: ProcId(p as u16),
                                tag: tag_reduce,
                                bytes: 16,
                            });
                        }
                    } else {
                        acts.push(Action::Send {
                            func: f_main,
                            to: ProcId(0),
                            tag: tag_reduce,
                            bytes: 16,
                        });
                        acts.push(Action::Recv {
                            func: f_main,
                            from: ProcId(0),
                            tag: tag_reduce,
                        });
                    }

                    // Periodic checkpoint from rank 0.
                    if rank == 0
                        && wl.checkpoint_every > 0
                        && iter > 0
                        && iter.is_multiple_of(wl.checkpoint_every)
                    {
                        acts.push(Action::Io {
                            func: f_main,
                            bytes: 64 * 1024,
                        });
                    }
                    acts
                };
                Box::new(LoopScript::new(self.max_iters, body)) as Box<dyn ProcessScript>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineStatus;
    use crate::time::SimTime;
    use crate::trace::ActivityKind;

    fn run(version: PoissonVersion, secs: u64) -> crate::engine::Engine {
        let wl = PoissonWorkload::new(version);
        let mut e = wl.build_engine();
        let status = e.run_until(SimTime::from_secs(secs));
        assert_eq!(status, EngineStatus::Running, "workload should be endless");
        e
    }

    #[test]
    fn spec_has_paper_module_names() {
        let a = PoissonWorkload::new(PoissonVersion::A).app_spec();
        assert!(a.func_id("oned.f", "main").is_some());
        assert!(a.func_id("exchng1.f", "exchng1").is_some());
        assert!(a.func_id("sweep.f", "sweep1d").is_some());
        let b = PoissonWorkload::new(PoissonVersion::B).app_spec();
        assert!(b.func_id("onednb.f", "main").is_some());
        assert!(b.func_id("nbexchng.f", "nbexchng1").is_some());
        let c = PoissonWorkload::new(PoissonVersion::C).app_spec();
        assert!(c.func_id("exchng2.f", "exchng2").is_some());
        assert_eq!(c.process_count(), 4);
        let d = PoissonWorkload::new(PoissonVersion::D).app_spec();
        assert_eq!(d.process_count(), 8);
        // D runs on differently-numbered nodes (mapping scenario).
        assert_eq!(d.nodes[0], "node09");
        assert_eq!(c.nodes[0], "node01");
    }

    #[test]
    fn all_versions_run_without_deadlock() {
        for v in [
            PoissonVersion::A,
            PoissonVersion::B,
            PoissonVersion::C,
            PoissonVersion::D,
        ] {
            let e = run(v, 2);
            assert!(e.totals().end_time() >= SimTime::from_secs(2));
        }
    }

    #[test]
    fn version_c_is_sync_dominated() {
        let e = run(PoissonVersion::C, 5);
        let sync = e.totals().total(ActivityKind::SyncWait).as_secs_f64();
        let cpu = e.totals().total(ActivityKind::Cpu).as_secs_f64();
        let io = e.totals().total(ActivityKind::IoWait).as_secs_f64();
        let frac = sync / (sync + cpu + io);
        assert!(
            (0.55..0.92).contains(&frac),
            "sync fraction was {frac:.2} (sync={sync:.2} cpu={cpu:.2})"
        );
    }

    #[test]
    fn light_ranks_wait_more_than_heavy_ranks() {
        let e = run(PoissonVersion::C, 5);
        let wait = |p: u16| {
            e.totals()
                .proc_total(ProcId(p), ActivityKind::SyncWait)
                .as_secs_f64()
        };
        // Ranks 2 and 3 have light blocks; they must wait much more than
        // ranks 0 and 1 (paper §4.2: 81/86% vs 46/47%).
        assert!(wait(2) > wait(0) * 1.3, "w2={} w0={}", wait(2), wait(0));
        assert!(wait(3) > wait(1) * 1.3, "w3={} w1={}", wait(3), wait(1));
    }

    #[test]
    fn nonblocking_version_waits_less_than_blocking() {
        let a = run(PoissonVersion::A, 5);
        let b = run(PoissonVersion::B, 5);
        // Identical decomposition, but B overlaps communication: the
        // exchange function's share of wait time must drop.
        let a_app = a.app().clone();
        let b_app = b.app().clone();
        let a_ex = a_app.func_id("exchng1.f", "exchng1").unwrap();
        let b_ex = b_app.func_id("nbexchng.f", "nbexchng1").unwrap();
        let wa = a
            .totals()
            .func_total(a_ex, ActivityKind::SyncWait)
            .as_secs_f64();
        let wb = b
            .totals()
            .func_total(b_ex, ActivityKind::SyncWait)
            .as_secs_f64();
        assert!(wb < wa, "blocking {wa:.3}s vs non-blocking {wb:.3}s");
    }

    #[test]
    fn deterministic_across_runs() {
        let w = PoissonWorkload::new(PoissonVersion::C);
        let mut e1 = w.build_engine();
        let mut e2 = w.build_engine();
        e1.run_until(SimTime::from_secs(3));
        e2.run_until(SimTime::from_secs(3));
        let t1: Vec<_> = e1.totals().iter().collect();
        let t2: Vec<_> = e2.totals().iter().collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn fixed_iterations_terminate() {
        let w = PoissonWorkload::new(PoissonVersion::A).with_max_iters(Some(50));
        let mut e = w.build_engine();
        assert_eq!(e.run_until(SimTime::from_secs(3600)), EngineStatus::AllDone);
    }

    #[test]
    fn reduce_tag_waits_land_in_main() {
        let e = run(PoissonVersion::C, 5);
        let app = e.app().clone();
        let f_main = app.func_id("twod.f", "main").unwrap();
        let w_main = e.totals().func_total(f_main, ActivityKind::SyncWait);
        assert!(w_main.as_secs_f64() > 0.1, "main wait was {w_main}");
        let t_reduce = app.tag_id("3_-1").unwrap();
        let w_tag = e.totals().tag_total(t_reduce, ActivityKind::SyncWait);
        assert!(w_tag.as_secs_f64() > 0.1);
    }
}
