//! A PVM-era ocean-circulation model on a network of workstations.
//!
//! The paper's §4.2 mentions an earlier threshold study of "an ocean
//! circulation modeling code using PVM, running on SUN SPARCstations",
//! whose optimal synchronization threshold (20%) differed from the MPI
//! application's (12%) — the argument for application-specific historical
//! thresholds. This workload reproduces that *different* bottleneck
//! profile: a master/worker structure over a slow, high-latency network,
//! with a smaller number of larger bottlenecks.

use crate::action::{Action, LoopScript, ProcessScript};
use crate::machine::MachineModel;
use crate::program::{AppSpec, ModuleSpec, ProcId, TagId};
use crate::rng::Rng;
use crate::time::SimDuration;
use crate::workloads::Workload;

/// The ocean-circulation workload.
#[derive(Debug, Clone)]
pub struct OceanWorkload {
    /// Number of processes (master is rank 0).
    pub procs: usize,
    /// Iteration count, or `None` for an endless run.
    pub max_iters: Option<u64>,
    /// Relative work per process.
    pub work_skew: Vec<f64>,
    /// Compute jitter amplitude.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl OceanWorkload {
    /// The default 4-process configuration.
    pub fn new() -> OceanWorkload {
        OceanWorkload {
            procs: 4,
            max_iters: None,
            work_skew: vec![0.85, 1.0, 0.9, 0.8],
            jitter: 0.05,
            seed: 0x0CEA,
        }
    }
}

impl Default for OceanWorkload {
    fn default() -> Self {
        OceanWorkload::new()
    }
}

impl Workload for OceanWorkload {
    fn app_spec(&self) -> AppSpec {
        AppSpec {
            name: "ocean".into(),
            version: "pvm".into(),
            modules: vec![
                ModuleSpec {
                    name: "ocean.c".into(),
                    functions: vec!["main".into()],
                },
                ModuleSpec {
                    name: "currents.c".into(),
                    functions: vec!["compute_currents".into()],
                },
                ModuleSpec {
                    name: "mix.c".into(),
                    functions: vec!["vertical_mix".into()],
                },
                ModuleSpec {
                    name: "state.c".into(),
                    functions: vec!["write_state".into()],
                },
            ],
            processes: (1..=self.procs).map(|i| format!("ocean:{i}")).collect(),
            nodes: (1..=self.procs).map(|i| format!("spark{i:02}")).collect(),
            proc_node: (0..self.procs).collect(),
            tags: vec!["101".into(), "102".into()],
        }
    }

    fn machine(&self) -> MachineModel {
        MachineModel::now_cluster(self.procs)
    }

    fn scripts(&self) -> Vec<Box<dyn ProcessScript>> {
        let app = self.app_spec();
        let f_main = app.func_id("ocean.c", "main").unwrap();
        let f_cur = app.func_id("currents.c", "compute_currents").unwrap();
        let f_mix = app.func_id("mix.c", "vertical_mix").unwrap();
        let f_io = app.func_id("state.c", "write_state").unwrap();
        let machine = self.machine();
        let tag_ring = TagId(0); // "101"
        let tag_gather = TagId(1); // "102"
        let root = Rng::new(self.seed);
        let procs = self.procs;

        (0..procs)
            .map(|rank| {
                let wl = self.clone();
                let mut rng = root.substream(rank as u64);
                let rate = machine.flops_per_sec;
                let body = move |iter: u64| {
                    let mut acts = Vec::with_capacity(12);
                    let jit = rng.jitter(wl.jitter);
                    // A heavier per-iteration block than Poisson: the NOW
                    // network is slow, so iterations are coarser.
                    let base = 250_000.0 * wl.work_skew[rank] * jit; // flops
                    acts.push(Action::Compute {
                        func: f_cur,
                        dur: SimDuration::from_secs_f64(base / rate),
                    });
                    // Ring exchange of boundary currents, tag 101.
                    let next = (rank + 1) % procs;
                    let prev = (rank + procs - 1) % procs;
                    if rank % 2 == 0 {
                        acts.push(Action::Send {
                            func: f_cur,
                            to: ProcId(next as u16),
                            tag: tag_ring,
                            bytes: 512,
                        });
                        acts.push(Action::Recv {
                            func: f_cur,
                            from: ProcId(prev as u16),
                            tag: tag_ring,
                        });
                    } else {
                        acts.push(Action::Recv {
                            func: f_cur,
                            from: ProcId(prev as u16),
                            tag: tag_ring,
                        });
                        acts.push(Action::Send {
                            func: f_cur,
                            to: ProcId(next as u16),
                            tag: tag_ring,
                            bytes: 512,
                        });
                    }
                    // Vertical mixing: CPU-heavy second phase.
                    acts.push(Action::Compute {
                        func: f_mix,
                        dur: SimDuration::from_secs_f64(base * 0.6 / rate),
                    });
                    // Master/worker gather of the surface state, tag 102.
                    if rank == 0 {
                        for p in 1..procs {
                            acts.push(Action::Recv {
                                func: f_main,
                                from: ProcId(p as u16),
                                tag: tag_gather,
                            });
                        }
                        // The master occasionally writes the model state.
                        if iter % 25 == 24 {
                            acts.push(Action::Io {
                                func: f_io,
                                bytes: 256 * 1024,
                            });
                        }
                    } else {
                        acts.push(Action::Send {
                            func: f_main,
                            to: ProcId(0),
                            tag: tag_gather,
                            bytes: 900,
                        });
                    }
                    acts
                };
                Box::new(LoopScript::new(self.max_iters, body)) as Box<dyn ProcessScript>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineStatus;
    use crate::time::SimTime;
    use crate::trace::ActivityKind;

    #[test]
    fn runs_without_deadlock() {
        let wl = OceanWorkload::new();
        let mut e = wl.build_engine();
        assert_eq!(e.run_until(SimTime::from_secs(3)), EngineStatus::Running);
    }

    #[test]
    fn profile_differs_from_poisson() {
        // Ocean has a substantial CPU component (vertical_mix) and a sync
        // component concentrated in the gather, with sync fraction lower
        // than Poisson C's ~75%.
        let wl = OceanWorkload::new();
        let mut e = wl.build_engine();
        e.run_until(SimTime::from_secs(3));
        let sync = e.totals().total(ActivityKind::SyncWait).as_secs_f64();
        let cpu = e.totals().total(ActivityKind::Cpu).as_secs_f64();
        let frac = sync / (sync + cpu);
        assert!((0.25..0.70).contains(&frac), "sync fraction was {frac:.2}");
    }

    #[test]
    fn master_accumulates_gather_waits() {
        let wl = OceanWorkload::new();
        let mut e = wl.build_engine();
        e.run_until(SimTime::from_secs(3));
        let app = e.app().clone();
        let f_main = app.func_id("ocean.c", "main").unwrap();
        let w = e.totals().func_total(f_main, ActivityKind::SyncWait);
        assert!(w.as_secs_f64() > 0.05, "main wait was {w}");
    }

    #[test]
    fn io_appears_on_master_only() {
        let wl = OceanWorkload::new();
        let mut e = wl.build_engine();
        e.run_until(SimTime::from_secs(5));
        let io0 = e.totals().proc_total(ProcId(0), ActivityKind::IoWait);
        let io1 = e.totals().proc_total(ProcId(1), ActivityKind::IoWait);
        assert!(io0 > SimDuration::ZERO);
        assert_eq!(io1, SimDuration::ZERO);
    }
}
