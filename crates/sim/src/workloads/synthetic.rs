//! A configurable synthetic workload with planted bottlenecks.
//!
//! Tests of the instrumentation layer and the Performance Consultant need
//! programs whose true bottlenecks are known by construction. A
//! [`SyntheticWorkload`] plants an explicit per-process compute profile, an
//! optional communication ring, and optional I/O, so tests can assert that
//! the search finds exactly the planted problems.

use crate::action::{Action, LoopScript, ProcessScript};
use crate::machine::MachineModel;
use crate::program::{AppSpec, ModuleSpec, ProcId, TagId};
use crate::time::SimDuration;
use crate::workloads::Workload;

/// Builder for synthetic applications.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    /// Number of processes.
    pub procs: usize,
    /// Function names (all placed in module `app.c`).
    pub functions: Vec<String>,
    /// Per-process compute profile: for each process, a list of
    /// `(function index, milliseconds per iteration)`.
    pub compute: Vec<Vec<(usize, f64)>>,
    /// If nonzero, processes exchange a ring message of this many bytes
    /// each iteration (tag `ring`, attributed to function index 0).
    pub ring_bytes: u64,
    /// If set, process 0 performs `(bytes)` of I/O every `(iters)`
    /// iterations, attributed to function index 0.
    pub io: Option<(u64, u64)>,
    /// A behaviour change mid-run: from iteration `.0` on, process `.1`
    /// burns an extra `.3` ms per iteration in function `.2` — a
    /// bottleneck that exists only in the later phase of the execution.
    pub phase_change: Option<(u64, usize, usize, f64)>,
    /// Iteration count, or `None` for an endless run.
    pub max_iters: Option<u64>,
    /// Machine to run on.
    pub machine: MachineModel,
}

impl SyntheticWorkload {
    /// A balanced `procs`-process compute-only workload with functions
    /// `f0`, `f1`, ... each burning `ms_each` per iteration.
    pub fn balanced(procs: usize, funcs: usize, ms_each: f64) -> SyntheticWorkload {
        SyntheticWorkload {
            procs,
            functions: (0..funcs).map(|i| format!("f{i}")).collect(),
            compute: (0..procs)
                .map(|_| (0..funcs).map(|f| (f, ms_each)).collect())
                .collect(),
            ring_bytes: 0,
            io: None,
            phase_change: None,
            max_iters: None,
            machine: MachineModel::sp2(procs),
        }
    }

    /// Plants a CPU bottleneck: function `func` burns `ms` per iteration
    /// on process `proc` (in addition to the existing profile).
    pub fn with_hotspot(mut self, proc: usize, func: usize, ms: f64) -> Self {
        self.compute[proc].push((func, ms));
        self
    }

    /// Enables the per-iteration message ring.
    pub fn with_ring(mut self, bytes: u64) -> Self {
        self.ring_bytes = bytes;
        self
    }

    /// Enables periodic I/O on process 0.
    pub fn with_io(mut self, every_iters: u64, bytes: u64) -> Self {
        self.io = Some((every_iters, bytes));
        self
    }

    /// Plants a late-phase bottleneck: from iteration `from_iter` on,
    /// process `proc` burns an extra `ms` per iteration in `func`.
    pub fn with_phase_change(mut self, from_iter: u64, proc: usize, func: usize, ms: f64) -> Self {
        self.phase_change = Some((from_iter, proc, func, ms));
        self
    }

    /// Bounds the iteration count.
    pub fn with_max_iters(mut self, iters: u64) -> Self {
        self.max_iters = Some(iters);
        self
    }
}

impl Workload for SyntheticWorkload {
    fn app_spec(&self) -> AppSpec {
        AppSpec {
            name: "synth".into(),
            version: "1".into(),
            modules: vec![ModuleSpec {
                name: "app.c".into(),
                functions: self.functions.clone(),
            }],
            processes: (1..=self.procs).map(|i| format!("synth:{i}")).collect(),
            nodes: (1..=self.procs).map(|i| format!("n{i:02}")).collect(),
            proc_node: (0..self.procs).collect(),
            tags: vec!["ring".into()],
        }
    }

    fn machine(&self) -> MachineModel {
        self.machine.clone()
    }

    fn scripts(&self) -> Vec<Box<dyn ProcessScript>> {
        let procs = self.procs;
        (0..procs)
            .map(|rank| {
                let profile = self.compute[rank].clone();
                let ring = self.ring_bytes;
                let io = self.io;
                let phase_change = self.phase_change;
                let body = move |iter: u64| {
                    let mut acts = Vec::new();
                    for &(f, ms) in &profile {
                        acts.push(Action::Compute {
                            func: crate::program::FuncId(f as u16),
                            dur: SimDuration::from_secs_f64(ms / 1e3),
                        });
                    }
                    if let Some((from, proc, func, ms)) = phase_change {
                        if rank == proc && iter >= from {
                            acts.push(Action::Compute {
                                func: crate::program::FuncId(func as u16),
                                dur: SimDuration::from_secs_f64(ms / 1e3),
                            });
                        }
                    }
                    if ring > 0 && procs > 1 {
                        let next = (rank + 1) % procs;
                        let prev = (rank + procs - 1) % procs;
                        let f0 = crate::program::FuncId(0);
                        if rank % 2 == 0 {
                            acts.push(Action::Send {
                                func: f0,
                                to: ProcId(next as u16),
                                tag: TagId(0),
                                bytes: ring,
                            });
                            acts.push(Action::Recv {
                                func: f0,
                                from: ProcId(prev as u16),
                                tag: TagId(0),
                            });
                        } else {
                            acts.push(Action::Recv {
                                func: f0,
                                from: ProcId(prev as u16),
                                tag: TagId(0),
                            });
                            acts.push(Action::Send {
                                func: f0,
                                to: ProcId(next as u16),
                                tag: TagId(0),
                                bytes: ring,
                            });
                        }
                    }
                    if let Some((every, bytes)) = io {
                        if rank == 0 && every > 0 && iter % every == every - 1 {
                            acts.push(Action::Io {
                                func: crate::program::FuncId(0),
                                bytes,
                            });
                        }
                    }
                    acts
                };
                Box::new(LoopScript::new(self.max_iters, body)) as Box<dyn ProcessScript>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineStatus;
    use crate::program::FuncId;
    use crate::time::SimTime;
    use crate::trace::ActivityKind;

    #[test]
    fn hotspot_dominates_cpu_profile() {
        let wl = SyntheticWorkload::balanced(2, 3, 0.5).with_hotspot(0, 2, 5.0);
        let mut e = wl.build_engine();
        e.run_until(SimTime::from_secs(2));
        let hot = e.totals().func_total(FuncId(2), ActivityKind::Cpu);
        let cold = e.totals().func_total(FuncId(1), ActivityKind::Cpu);
        // The hotspot runs on one of two processes, so its share is
        // diluted by the other process's fast iterations; a 2.5x margin
        // still clearly identifies it.
        assert!(
            hot.as_micros() > 5 * cold.as_micros() / 2,
            "hot={hot} cold={cold}"
        );
    }

    #[test]
    fn ring_generates_sync_wait_with_imbalance() {
        let wl = SyntheticWorkload::balanced(4, 2, 1.0)
            .with_hotspot(0, 0, 4.0) // rank 0 is slow; others wait in the ring
            .with_ring(256);
        let mut e = wl.build_engine();
        e.run_until(SimTime::from_secs(2));
        let w1 = e.totals().proc_total(ProcId(1), ActivityKind::SyncWait);
        assert!(w1.as_secs_f64() > 0.3, "ring wait was {w1}");
    }

    #[test]
    fn io_lands_on_rank_zero() {
        let wl = SyntheticWorkload::balanced(2, 1, 1.0).with_io(5, 1_000_000);
        let mut e = wl.build_engine();
        e.run_until(SimTime::from_secs(2));
        assert!(e.totals().proc_total(ProcId(0), ActivityKind::IoWait) > SimDuration::ZERO);
        assert_eq!(
            e.totals().proc_total(ProcId(1), ActivityKind::IoWait),
            SimDuration::ZERO
        );
    }

    #[test]
    fn bounded_run_completes() {
        let wl = SyntheticWorkload::balanced(2, 1, 0.1).with_max_iters(10);
        let mut e = wl.build_engine();
        assert_eq!(e.run_until(SimTime::from_secs(10)), EngineStatus::AllDone);
    }
}
