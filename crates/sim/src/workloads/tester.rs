//! The "Tester" toy program of the paper's Figure 1.
//!
//! Four processes `Tester:1`..`Tester:4` on CPUs `CPU_1`..`CPU_4`, with
//! code spread over `testutil.C`, `main.c` and `vect.c`. It exists mainly
//! to regenerate Figure 1's resource hierarchies, but it runs: each process
//! builds a vector, verifies it, and periodically synchronizes.

use crate::action::{Action, LoopScript, ProcessScript};
use crate::machine::MachineModel;
use crate::program::{AppSpec, ModuleSpec};
use crate::rng::Rng;
use crate::time::SimDuration;
use crate::workloads::Workload;

/// The Tester workload.
#[derive(Debug, Clone)]
pub struct TesterWorkload {
    /// Iteration count, or `None` for an endless run.
    pub max_iters: Option<u64>,
    /// RNG seed.
    pub seed: u64,
}

impl TesterWorkload {
    /// The default 4-process Tester.
    pub fn new() -> TesterWorkload {
        TesterWorkload {
            max_iters: None,
            seed: 0x7E57,
        }
    }
}

impl Default for TesterWorkload {
    fn default() -> Self {
        TesterWorkload::new()
    }
}

impl Workload for TesterWorkload {
    fn app_spec(&self) -> AppSpec {
        AppSpec {
            name: "Tester".into(),
            version: "1".into(),
            modules: vec![
                ModuleSpec {
                    name: "testutil.C".into(),
                    functions: vec!["printstatus".into(), "verifyA".into(), "verifyB".into()],
                },
                ModuleSpec {
                    name: "main.c".into(),
                    functions: vec!["main".into()],
                },
                ModuleSpec {
                    name: "vect.c".into(),
                    functions: vec![
                        "vect::addEl".into(),
                        "vect::findEl".into(),
                        "vect::print".into(),
                    ],
                },
            ],
            processes: (1..=4).map(|i| format!("Tester:{i}")).collect(),
            nodes: (1..=4).map(|i| format!("CPU_{i}")).collect(),
            proc_node: vec![0, 1, 2, 3],
            tags: vec![],
        }
    }

    fn machine(&self) -> MachineModel {
        MachineModel::sp2(4)
    }

    fn scripts(&self) -> Vec<Box<dyn ProcessScript>> {
        let app = self.app_spec();
        let f_main = app.func_id("main.c", "main").unwrap();
        let f_add = app.func_id("vect.c", "vect::addEl").unwrap();
        let f_find = app.func_id("vect.c", "vect::findEl").unwrap();
        let f_verify_a = app.func_id("testutil.C", "verifyA").unwrap();
        let f_verify_b = app.func_id("testutil.C", "verifyB").unwrap();
        let f_print = app.func_id("testutil.C", "printstatus").unwrap();
        let root = Rng::new(self.seed);

        (0..4)
            .map(|rank| {
                let mut rng = root.substream(rank as u64);
                let body = move |iter: u64| {
                    let jit = rng.jitter(0.1);
                    let ms = |f: f64| SimDuration::from_secs_f64(f * jit / 1e3);
                    let mut acts = vec![
                        Action::Compute {
                            func: f_main,
                            dur: ms(0.2),
                        },
                        Action::Compute {
                            func: f_add,
                            dur: ms(1.0),
                        },
                        Action::Compute {
                            func: f_find,
                            dur: ms(2.5),
                        },
                        Action::Compute {
                            func: f_verify_a,
                            dur: ms(0.8),
                        },
                        Action::Compute {
                            func: f_verify_b,
                            dur: ms(0.3),
                        },
                    ];
                    if iter % 10 == 9 {
                        acts.push(Action::Compute {
                            func: f_print,
                            dur: ms(0.1),
                        });
                        acts.push(Action::Barrier { func: f_main });
                    }
                    acts
                };
                Box::new(LoopScript::new(self.max_iters, body)) as Box<dyn ProcessScript>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineStatus;
    use crate::program::FuncId;
    use crate::time::SimTime;
    use crate::trace::ActivityKind;

    #[test]
    fn spec_matches_figure_1() {
        let app = TesterWorkload::new().app_spec();
        assert_eq!(
            app.processes,
            vec!["Tester:1", "Tester:2", "Tester:3", "Tester:4"]
        );
        assert_eq!(app.nodes, vec!["CPU_1", "CPU_2", "CPU_3", "CPU_4"]);
        assert!(app.func_id("testutil.C", "verifyA").is_some());
        assert!(app.func_id("vect.c", "vect::print").is_some());
        assert_eq!(app.function_count(), 7);
    }

    #[test]
    fn runs_and_findel_dominates_cpu() {
        let wl = TesterWorkload::new();
        let mut e = wl.build_engine();
        assert_eq!(e.run_until(SimTime::from_secs(2)), EngineStatus::Running);
        let app = e.app().clone();
        let find = app.func_id("vect.c", "vect::findEl").unwrap();
        let find_cpu = e.totals().func_total(find, ActivityKind::Cpu);
        for other in 0..app.function_count() as u16 {
            if FuncId(other) != find {
                assert!(find_cpu >= e.totals().func_total(FuncId(other), ActivityKind::Cpu));
            }
        }
    }

    #[test]
    fn bounded_run_finishes() {
        let wl = TesterWorkload {
            max_iters: Some(20),
            seed: 1,
        };
        let mut e = wl.build_engine();
        assert_eq!(e.run_until(SimTime::from_secs(60)), EngineStatus::AllDone);
    }
}
