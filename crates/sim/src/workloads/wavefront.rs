//! A Sweep3D-style wavefront transport kernel.
//!
//! A classic 1990s ASCI workload with a bottleneck profile unlike the
//! Poisson or ocean codes: processes form a 1-D pipeline, and each sweep
//! angle flows down the pipeline (receive upstream boundary → compute →
//! send downstream), alternating direction. Waiting concentrates at the
//! pipeline ends (fill and drain), and every iteration closes with a
//! data-carrying collective (`AllReduce`) whose waits are *barrier*
//! waits — exercising the `ExcessiveBarrierWaitingTime` hypothesis and
//! the engine's collective support.

use crate::action::{Action, LoopScript, ProcessScript};
use crate::machine::MachineModel;
use crate::program::{AppSpec, ModuleSpec, ProcId, TagId};
use crate::rng::Rng;
use crate::time::SimDuration;
use crate::workloads::Workload;

/// The wavefront workload.
#[derive(Debug, Clone)]
pub struct WavefrontWorkload {
    /// Number of pipeline stages (processes).
    pub procs: usize,
    /// Sweep angles per iteration (each angle = one pipeline pass).
    pub angles: usize,
    /// Iteration count, or `None` for an endless run.
    pub max_iters: Option<u64>,
    /// Compute jitter amplitude.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WavefrontWorkload {
    /// The default 4-stage pipeline with 6 angles.
    pub fn new() -> WavefrontWorkload {
        WavefrontWorkload {
            procs: 4,
            angles: 6,
            max_iters: None,
            jitter: 0.04,
            seed: 0x3D,
        }
    }
}

impl Default for WavefrontWorkload {
    fn default() -> Self {
        WavefrontWorkload::new()
    }
}

impl Workload for WavefrontWorkload {
    fn app_spec(&self) -> AppSpec {
        AppSpec {
            name: "sweep3d".into(),
            version: "1".into(),
            modules: vec![
                ModuleSpec {
                    name: "driver.f".into(),
                    functions: vec!["main".into()],
                },
                ModuleSpec {
                    name: "sweep.f".into(),
                    functions: vec!["sweep".into()],
                },
                ModuleSpec {
                    name: "flux.f".into(),
                    functions: vec!["flux_err".into()],
                },
                ModuleSpec {
                    name: "source.f".into(),
                    functions: vec!["source".into()],
                },
            ],
            processes: (1..=self.procs).map(|i| format!("sweep3d:{i}")).collect(),
            nodes: (1..=self.procs).map(|i| format!("node{i:02}")).collect(),
            proc_node: (0..self.procs).collect(),
            tags: vec!["fwd".into(), "bwd".into()],
        }
    }

    fn machine(&self) -> MachineModel {
        MachineModel::sp2(self.procs)
    }

    fn scripts(&self) -> Vec<Box<dyn ProcessScript>> {
        let app = self.app_spec();
        let f_main = app.func_id("driver.f", "main").unwrap();
        let f_sweep = app.func_id("sweep.f", "sweep").unwrap();
        let f_flux = app.func_id("flux.f", "flux_err").unwrap();
        let f_source = app.func_id("source.f", "source").unwrap();
        let machine = self.machine();
        let tag_fwd = TagId(0);
        let tag_bwd = TagId(1);
        let root = Rng::new(self.seed);
        let procs = self.procs;
        let angles = self.angles;

        (0..procs)
            .map(|rank| {
                let mut rng = root.substream(rank as u64);
                let rate = machine.flops_per_sec;
                let jitter = self.jitter;
                let body = move |_iter: u64| {
                    let mut acts = Vec::with_capacity(4 + angles * 4);
                    let jit = rng.jitter(jitter);
                    let cell_flops = 9_000.0 * jit; // one angle-block of work
                    let block = SimDuration::from_secs_f64(cell_flops / rate);

                    // Source iteration: uniform local compute.
                    acts.push(Action::Compute {
                        func: f_source,
                        dur: block.mul_f64(1.5),
                    });

                    for angle in 0..angles {
                        // Alternate sweep direction per angle.
                        let forward = angle % 2 == 0;
                        let (upstream, downstream, tag) = if forward {
                            (
                                (rank > 0).then(|| rank - 1),
                                (rank + 1 < procs).then(|| rank + 1),
                                tag_fwd,
                            )
                        } else {
                            (
                                (rank + 1 < procs).then(|| rank + 1),
                                (rank > 0).then(|| rank - 1),
                                tag_bwd,
                            )
                        };
                        if let Some(up) = upstream {
                            acts.push(Action::Recv {
                                func: f_sweep,
                                from: ProcId(up as u16),
                                tag,
                            });
                        }
                        acts.push(Action::Compute {
                            func: f_sweep,
                            dur: block,
                        });
                        if let Some(down) = downstream {
                            acts.push(Action::Send {
                                func: f_sweep,
                                to: ProcId(down as u16),
                                tag,
                                bytes: 640,
                            });
                        }
                    }

                    // Flux/error evaluation, then the global convergence
                    // reduction — a data-carrying collective.
                    acts.push(Action::Compute {
                        func: f_flux,
                        dur: block.mul_f64(0.8),
                    });
                    // A 16 KiB flux-moment reduction: the log-tree
                    // transfer makes this a substantial barrier-class
                    // wait for every process, each iteration.
                    acts.push(Action::AllReduce {
                        func: f_main,
                        bytes: 16 * 1024,
                    });
                    acts
                };
                Box::new(LoopScript::new(self.max_iters, body)) as Box<dyn ProcessScript>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineStatus;
    use crate::time::SimTime;
    use crate::trace::ActivityKind;

    fn run(secs: u64) -> crate::engine::Engine {
        let wl = WavefrontWorkload::new();
        let mut e = wl.build_engine();
        assert_eq!(e.run_until(SimTime::from_secs(secs)), EngineStatus::Running);
        e
    }

    #[test]
    fn pipeline_runs_without_deadlock() {
        let e = run(2);
        assert!(e.totals().end_time() >= SimTime::from_secs(2));
    }

    #[test]
    fn sweep_function_carries_pipeline_waits() {
        let e = run(3);
        let app = e.app().clone();
        let f_sweep = app.func_id("sweep.f", "sweep").unwrap();
        let f_source = app.func_id("source.f", "source").unwrap();
        let w_sweep = e.totals().func_total(f_sweep, ActivityKind::SyncWait);
        let w_source = e.totals().func_total(f_source, ActivityKind::SyncWait);
        assert!(w_sweep.as_secs_f64() > 0.2, "sweep wait was {w_sweep}");
        assert_eq!(w_source, crate::time::SimDuration::ZERO);
    }

    #[test]
    fn allreduce_waits_are_tagless_barrier_waits_in_main() {
        let e = run(3);
        let app = e.app().clone();
        let f_main = app.func_id("driver.f", "main").unwrap();
        // All of main's sync waits come from the collective: no tag.
        let total: f64 = e
            .totals()
            .iter()
            .filter(|(k, _)| k.func == f_main && k.kind == ActivityKind::SyncWait)
            .map(|(k, d)| {
                assert!(k.tag.is_none(), "collective wait carried a tag");
                d.as_secs_f64()
            })
            .sum();
        assert!(total > 0.05, "main barrier wait was {total}");
    }

    #[test]
    fn pipeline_ends_wait_more_than_middle() {
        let e = run(4);
        let w = |p: u16| {
            e.totals()
                .proc_total(ProcId(p), ActivityKind::SyncWait)
                .as_secs_f64()
        };
        // Alternating sweep directions make both pipeline ends wait for
        // the fill; middle ranks receive earlier on average.
        let ends = w(0).min(w(3));
        let middle = w(1).max(w(2));
        assert!(
            ends > middle * 0.8,
            "ends {:.3}/{:.3} vs middle {:.3}/{:.3}",
            w(0),
            w(3),
            w(1),
            w(2)
        );
    }

    #[test]
    fn bounded_run_completes() {
        let wl = WavefrontWorkload {
            max_iters: Some(20),
            ..WavefrontWorkload::new()
        };
        let mut e = wl.build_engine();
        assert_eq!(e.run_until(SimTime::from_secs(600)), EngineStatus::AllDone);
    }

    #[test]
    fn deterministic() {
        let wl = WavefrontWorkload::new();
        let mut a = wl.build_engine();
        let mut b = wl.build_engine();
        a.run_until(SimTime::from_secs(2));
        b.run_until(SimTime::from_secs(2));
        let ta: Vec<_> = a.totals().iter().collect();
        let tb: Vec<_> = b.totals().iter().collect();
        assert_eq!(ta, tb);
    }
}
