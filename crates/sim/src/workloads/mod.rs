//! Simulated applications used in the paper's evaluation.
//!
//! * [`poisson`] — the iterative Poisson function decomposition program of
//!   Gropp et al. (Using MPI, ch. 4) in the four versions the paper studies
//!   (§4.3): A (1-D, blocking), B (1-D, non-blocking), C (2-D), and D (the
//!   same code as C on 8 nodes).
//! * [`ocean`] — a PVM-era ocean-circulation analogue on a network of
//!   workstations, the secondary threshold study of §4.2.
//! * [`tester`] — the toy "Tester" program used in the paper's Figure 1.
//! * [`synthetic`] — a configurable workload with planted bottlenecks for
//!   tests.
//! * [`wavefront`] — a Sweep3D-style pipelined transport kernel with a
//!   collective per iteration (a different bottleneck family).

pub mod ocean;
pub mod poisson;
pub mod synthetic;
pub mod tester;
pub mod wavefront;

pub use ocean::OceanWorkload;
pub use poisson::{PoissonVersion, PoissonWorkload};
pub use synthetic::SyntheticWorkload;
pub use tester::TesterWorkload;
pub use wavefront::WavefrontWorkload;

use crate::action::ProcessScript;
use crate::engine::Engine;
use crate::machine::MachineModel;
use crate::program::AppSpec;

/// A simulated application: static structure, machine, and one script per
/// process.
pub trait Workload {
    /// The application's static structure.
    fn app_spec(&self) -> AppSpec;

    /// The machine the application runs on.
    fn machine(&self) -> MachineModel;

    /// Fresh process scripts (one per process, rank order).
    fn scripts(&self) -> Vec<Box<dyn ProcessScript>>;

    /// Builds a ready-to-run engine for this workload.
    fn build_engine(&self) -> Engine {
        Engine::new(self.app_spec(), self.machine(), self.scripts())
    }
}
