//! Application structure: modules, functions, processes, nodes, tags.
//!
//! An `AppSpec` is the static description of a simulated program — the data
//! from which the instrumentation layer builds the Code/Machine/Process
//! resource hierarchies. Message tags are declared here but only enter the
//! SyncObject hierarchy when first observed at run time (dynamic resource
//! discovery, as in Paradyn).

use std::fmt;

/// Index of a process within an application (0-based rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u16);

/// Index of a function within an application's flat function table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u16);

/// Index of a message tag within an application's tag table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub u16);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One source module and the functions it defines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleSpec {
    /// Module (source file) name, e.g. `exchng2.f`.
    pub name: String,
    /// Function names defined in the module.
    pub functions: Vec<String>,
}

/// Static structure of a simulated application.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name, e.g. `poisson`.
    pub name: String,
    /// Version label, e.g. `A`.
    pub version: String,
    /// Source modules with their functions.
    pub modules: Vec<ModuleSpec>,
    /// Process names, one per rank, e.g. `poisson:1`.
    pub processes: Vec<String>,
    /// Machine node names, e.g. `node04`.
    pub nodes: Vec<String>,
    /// For each process, the index of the node it runs on.
    pub proc_node: Vec<usize>,
    /// Message-tag labels, e.g. `3_0`.
    pub tags: Vec<String>,
}

impl AppSpec {
    /// Total number of functions across all modules.
    pub fn function_count(&self) -> usize {
        self.modules.iter().map(|m| m.functions.len()).sum()
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Resolves `(module, function)` names to a flat `FuncId`.
    pub fn func_id(&self, module: &str, function: &str) -> Option<FuncId> {
        let mut idx = 0u16;
        for m in &self.modules {
            for f in &m.functions {
                if m.name == module && f == function {
                    return Some(FuncId(idx));
                }
                idx += 1;
            }
        }
        None
    }

    /// The `(module name, function name)` of a `FuncId`.
    pub fn func_name(&self, id: FuncId) -> Option<(&str, &str)> {
        let mut idx = id.0 as usize;
        for m in &self.modules {
            if idx < m.functions.len() {
                return Some((m.name.as_str(), m.functions[idx].as_str()));
            }
            idx -= m.functions.len();
        }
        None
    }

    /// Resolves a tag label to its `TagId`.
    pub fn tag_id(&self, label: &str) -> Option<TagId> {
        self.tags
            .iter()
            .position(|t| t == label)
            .map(|i| TagId(i as u16))
    }

    /// The label of a `TagId`.
    pub fn tag_label(&self, id: TagId) -> Option<&str> {
        self.tags.get(id.0 as usize).map(String::as_str)
    }

    /// The node index a process runs on.
    pub fn node_of(&self, p: ProcId) -> usize {
        self.proc_node[p.0 as usize]
    }

    /// Validates internal consistency (process/node tables match, ids fit).
    pub fn validate(&self) -> Result<(), String> {
        if self.proc_node.len() != self.processes.len() {
            return Err("proc_node and processes must have equal length".into());
        }
        if let Some(&bad) = self.proc_node.iter().find(|&&n| n >= self.nodes.len()) {
            return Err(format!("proc_node references node {bad} out of range"));
        }
        if self.function_count() > u16::MAX as usize {
            return Err("too many functions".into());
        }
        if self.processes.len() > u16::MAX as usize {
            return Err("too many processes".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AppSpec {
        AppSpec {
            name: "poisson".into(),
            version: "A".into(),
            modules: vec![
                ModuleSpec {
                    name: "oned.f".into(),
                    functions: vec!["main".into(), "diff".into()],
                },
                ModuleSpec {
                    name: "exchng1.f".into(),
                    functions: vec!["exchng1".into()],
                },
            ],
            processes: vec!["poisson:1".into(), "poisson:2".into()],
            nodes: vec!["node01".into(), "node02".into()],
            proc_node: vec![0, 1],
            tags: vec!["3_0".into(), "3_1".into()],
        }
    }

    #[test]
    fn func_ids_are_flat_and_invertible() {
        let app = sample();
        assert_eq!(app.function_count(), 3);
        let main = app.func_id("oned.f", "main").unwrap();
        let diff = app.func_id("oned.f", "diff").unwrap();
        let exch = app.func_id("exchng1.f", "exchng1").unwrap();
        assert_eq!(main, FuncId(0));
        assert_eq!(diff, FuncId(1));
        assert_eq!(exch, FuncId(2));
        assert_eq!(app.func_name(exch), Some(("exchng1.f", "exchng1")));
        assert_eq!(app.func_id("exchng1.f", "nope"), None);
        assert_eq!(app.func_name(FuncId(9)), None);
    }

    #[test]
    fn tags_resolve() {
        let app = sample();
        assert_eq!(app.tag_id("3_1"), Some(TagId(1)));
        assert_eq!(app.tag_label(TagId(0)), Some("3_0"));
        assert_eq!(app.tag_id("9_9"), None);
    }

    #[test]
    fn validate_catches_bad_node_refs() {
        let mut app = sample();
        assert!(app.validate().is_ok());
        app.proc_node = vec![0, 7];
        assert!(app.validate().is_err());
        app.proc_node = vec![0];
        assert!(app.validate().is_err());
    }

    #[test]
    fn node_of_maps_processes() {
        let app = sample();
        assert_eq!(app.node_of(ProcId(1)), 1);
    }
}
