//! Deterministic pseudo-random numbers for the simulator.
//!
//! The simulator must be bit-stable across builds and across versions of
//! external crates, so it carries its own small PRNG: **xoshiro256++**
//! seeded through **SplitMix64** (the seeding procedure recommended by the
//! xoshiro authors). Statistical quality is far beyond what workload jitter
//! needs, and the implementation is a dozen lines that will never change
//! underneath us.

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent stream for substream `idx` (per-process
    /// jitter streams etc.) without correlations between streams.
    pub fn substream(&self, idx: u64) -> Rng {
        // Mix the substream index through SplitMix64 so adjacent indices
        // yield unrelated seeds.
        let mut sm = self.s[0] ^ idx.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`. `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Rejection-free multiply-shift; tiny bias is irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A multiplicative jitter factor in `[1-amp, 1+amp]`.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        1.0 + amp * (2.0 * self.next_f64() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_independent_and_deterministic() {
        let root = Rng::new(7);
        let mut s1a = root.substream(1);
        let mut s1b = root.substream(1);
        let mut s2 = root.substream(2);
        assert_eq!(s1a.next_u64(), s1b.next_u64());
        assert_ne!(s1a.next_u64(), s2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Rng::new(4);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn jitter_within_amplitude() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let j = r.jitter(0.05);
            assert!((0.95..=1.05).contains(&j));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = Rng::new(6);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }
}
