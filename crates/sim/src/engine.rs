//! The discrete-event engine executing process scripts against a machine
//! model.
//!
//! Each process runs its sequential [`ProcessScript`]; processes interact
//! only through messages, barriers, and (indirectly) instrumentation
//! perturbation. The engine advances each process's local clock, matches
//! sends to receives with eager/rendezvous semantics, and emits an
//! [`Interval`] for every contiguous stretch of CPU, synchronization-wait
//! or I/O-wait activity.
//!
//! # Online operation
//!
//! The Performance Consultant drives the engine in small steps with
//! [`Engine::run_until`], draining intervals after each step and adjusting
//! per-process *slowdown factors* that model instrumentation perturbation.
//! A process may overrun the horizon while completing a blocking operation
//! whose end time is determined by its peers; CPU bursts are chunked at the
//! horizon so perturbation changes take effect promptly.

use crate::action::{Action, ProcessScript, ReqId};
use crate::machine::MachineModel;
use crate::program::{AppSpec, FuncId, ProcId, TagId};
use crate::time::{SimDuration, SimTime};
use crate::trace::{ActivityKind, Interval, TraceAccumulator};
use std::collections::{BTreeMap, VecDeque};

/// Channel key: (source, destination, tag).
type ChanKey = (ProcId, ProcId, TagId);

/// A message in flight (sent, not yet consumed).
#[derive(Debug, Clone, Copy)]
struct Msg {
    /// Time the payload is fully available at the receiver.
    avail: SimTime,
    bytes: u64,
}

/// State of a non-blocking request.
#[derive(Debug, Clone, Copy)]
enum ReqState {
    /// Completion time is known: (when, bytes, message tag).
    CompleteAt(SimTime, u64, Option<TagId>),
    /// An `Irecv` is posted but no matching message has been sent yet.
    PendingRecv,
}

/// Why a process is blocked.
#[derive(Debug, Clone)]
enum Blocked {
    /// Blocking receive on a channel.
    Recv {
        key: ChanKey,
        func: FuncId,
        since: SimTime,
    },
    /// Rendezvous send waiting for the receiver.
    SendRdv {
        key: ChanKey,
        func: FuncId,
        since: SimTime,
        bytes: u64,
    },
    /// Waiting for a set of requests to complete.
    WaitAll {
        func: FuncId,
        reqs: Vec<ReqId>,
        since: SimTime,
    },
    /// Waiting in a barrier or data-carrying collective.
    Barrier {
        func: FuncId,
        since: SimTime,
        bytes: u64,
    },
}

#[derive(Debug, Clone)]
enum ProcState {
    Ready,
    Blocked(Blocked),
    Done,
    /// Killed by fault injection; never runs again and emits nothing.
    Dead,
}

struct Proc {
    clock: SimTime,
    script: Box<dyn ProcessScript>,
    state: ProcState,
    slowdown: f64,
    /// A CPU burst interrupted by the horizon: (func, remaining unperturbed).
    pending_compute: Option<(FuncId, SimDuration)>,
    reqs: BTreeMap<ReqId, ReqState>,
}

#[derive(Debug, Clone, Default)]
struct Channel {
    inflight: VecDeque<Msg>,
    /// A rendezvous sender blocked on this channel: (block time, bytes).
    /// At most one, because a blocking send halts its process.
    pending_rdv: Option<(SimTime, u64)>,
    /// Posted `Irecv`s awaiting a message: (request, post time).
    posted_irecvs: VecDeque<(ReqId, SimTime)>,
}

/// Result of driving the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineStatus {
    /// Some processes still have work; the horizon was reached.
    Running,
    /// Every process script ran to completion.
    AllDone,
    /// No process can make progress: a communication deadlock.
    /// Carries a human-readable description of each blocked process.
    Deadlock(Vec<String>),
}

/// The discrete-event simulation engine.
pub struct Engine {
    app: AppSpec,
    machine: MachineModel,
    procs: Vec<Proc>,
    /// Channels for the app's declared tags, dense by
    /// `(from * nprocs + to) * ntags + tag` — message ops index straight
    /// in instead of walking a map.
    channels: Vec<Channel>,
    /// Channels for tags outside the app's tag table (rare).
    chan_spill: BTreeMap<ChanKey, Channel>,
    emitted: Vec<Interval>,
    totals: TraceAccumulator,
    /// Cumulative count of intervals handed out via
    /// [`Engine::drain_intervals`]; the throughput denominator for the
    /// bench snapshot harness.
    events_drained: u64,
}

impl Engine {
    /// Creates an engine for `app` on `machine` with one script per
    /// process. Panics if the spec is inconsistent or script count differs
    /// from the process count.
    pub fn new(
        app: AppSpec,
        machine: MachineModel,
        scripts: Vec<Box<dyn ProcessScript>>,
    ) -> Engine {
        app.validate().expect("invalid AppSpec");
        assert_eq!(
            scripts.len(),
            app.process_count(),
            "need one script per process"
        );
        assert!(
            app.nodes.len() <= machine.nodes,
            "app uses more nodes than the machine has"
        );
        let procs = scripts
            .into_iter()
            .map(|script| Proc {
                clock: SimTime::ZERO,
                script,
                state: ProcState::Ready,
                slowdown: 1.0,
                pending_compute: None,
                reqs: BTreeMap::new(),
            })
            .collect();
        let nprocs = app.process_count();
        let ntags = app.tags.len();
        Engine {
            app,
            machine,
            procs,
            channels: (0..nprocs * nprocs * ntags)
                .map(|_| Channel::default())
                .collect(),
            chan_spill: BTreeMap::new(),
            emitted: Vec::new(),
            totals: TraceAccumulator::new(),
            events_drained: 0,
        }
    }

    /// Index of `key` in the dense channel table, or `None` when the tag
    /// is outside the app's tag table.
    fn chan_index(&self, key: ChanKey) -> Option<usize> {
        let nprocs = self.procs.len();
        let ntags = self.app.tags.len();
        let t = key.2 .0 as usize;
        (t < ntags).then(|| (key.0 .0 as usize * nprocs + key.1 .0 as usize) * ntags + t)
    }

    fn channel(&self, key: ChanKey) -> Option<&Channel> {
        match self.chan_index(key) {
            Some(i) => self.channels.get(i),
            None => self.chan_spill.get(&key),
        }
    }

    /// The application being simulated.
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// The machine model in use.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Sets the perturbation slowdown factor for `proc` (clamped to >= 1).
    /// Applied to CPU bursts executed from now on.
    pub fn set_slowdown(&mut self, proc: ProcId, factor: f64) {
        self.procs[proc.0 as usize].slowdown = factor.max(1.0);
    }

    /// Full-resolution cumulative totals observed so far (ground truth).
    pub fn totals(&self) -> &TraceAccumulator {
        &self.totals
    }

    /// Removes and returns the intervals emitted since the last drain.
    pub fn drain_intervals(&mut self) -> Vec<Interval> {
        self.events_drained += self.emitted.len() as u64;
        std::mem::take(&mut self.emitted)
    }

    /// Total number of intervals ever returned by
    /// [`Engine::drain_intervals`].
    pub fn events_drained(&self) -> u64 {
        self.events_drained
    }

    /// The local clock of `proc`.
    pub fn proc_clock(&self, proc: ProcId) -> SimTime {
        self.procs[proc.0 as usize].clock
    }

    /// True if every process has finished its script.
    pub fn all_done(&self) -> bool {
        self.procs
            .iter()
            .all(|p| matches!(p.state, ProcState::Done))
    }

    /// True if every process has either finished or been killed.
    fn all_finished(&self) -> bool {
        self.procs
            .iter()
            .all(|p| matches!(p.state, ProcState::Done | ProcState::Dead))
    }

    /// Processes killed by [`Engine::kill_proc`] / [`Engine::kill_node`].
    pub fn dead_procs(&self) -> Vec<ProcId> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.state, ProcState::Dead))
            .map(|(i, _)| ProcId(i as u16))
            .collect()
    }

    /// The index of the named node in the app spec, if it exists.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.app.nodes.iter().position(|n| n == name)
    }

    /// Kills `proc` immediately: it never runs again, emits no further
    /// intervals, and abandons every communication it was engaged in.
    /// Peers blocked on the dead process stay blocked (and eventually
    /// surface as a deadlock), exactly as a real daemon loss looks to
    /// the survivors. No-op on an already finished or dead process.
    pub fn kill_proc(&mut self, proc: ProcId) {
        let i = proc.0 as usize;
        if matches!(self.procs[i].state, ProcState::Done | ProcState::Dead) {
            return;
        }
        self.procs[i].state = ProcState::Dead;
        self.procs[i].pending_compute = None;
        self.procs[i].reqs.clear();
        // Withdraw the dead process from every channel it touched so the
        // resume paths never try to wake it: its blocked rendezvous sends
        // and its posted Irecvs simply vanish with it.
        let nprocs = self.procs.len();
        let ntags = self.app.tags.len();
        for from in 0..nprocs {
            for to in 0..nprocs {
                for t in 0..ntags {
                    let chan = &mut self.channels[(from * nprocs + to) * ntags + t];
                    if from == i {
                        chan.pending_rdv = None;
                    }
                    if to == i {
                        chan.posted_irecvs.clear();
                    }
                }
            }
        }
        for (key, chan) in self.chan_spill.iter_mut() {
            if key.0 == proc {
                chan.pending_rdv = None;
            }
            if key.1 == proc {
                chan.posted_irecvs.clear();
            }
        }
        // Like a process exiting, a death can complete a barrier for the
        // surviving participants.
        self.check_barrier();
    }

    /// Kills every process placed on node `node` (an index into the app
    /// spec's node list). Returns the processes killed.
    pub fn kill_node(&mut self, node: usize) -> Vec<ProcId> {
        let victims: Vec<ProcId> = (0..self.procs.len())
            .filter(|&i| self.app.proc_node[i] == node)
            .map(|i| ProcId(i as u16))
            .collect();
        for &p in &victims {
            self.kill_proc(p);
        }
        victims
    }

    /// Advances the simulation until every runnable process has reached
    /// `horizon` (blocked operations may overrun it), all processes finish,
    /// or a deadlock is detected.
    pub fn run_until(&mut self, horizon: SimTime) -> EngineStatus {
        loop {
            // Deterministically pick the ready process with the smallest
            // clock (ties by rank) that is still below the horizon.
            let next = self
                .procs
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p.state, ProcState::Ready) && p.clock < horizon)
                .min_by_key(|(i, p)| (p.clock, *i))
                .map(|(i, _)| i);
            match next {
                Some(i) => self.step_proc(i, horizon),
                None => {
                    if self.all_finished() {
                        return EngineStatus::AllDone;
                    }
                    let any_ready = self
                        .procs
                        .iter()
                        .any(|p| matches!(p.state, ProcState::Ready));
                    if any_ready {
                        // Everyone runnable is parked at the horizon.
                        return EngineStatus::Running;
                    }
                    return EngineStatus::Deadlock(self.describe_blocked());
                }
            }
        }
    }

    fn describe_blocked(&self) -> Vec<String> {
        self.procs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match &p.state {
                ProcState::Blocked(b) => {
                    let what = match b {
                        Blocked::Recv { key, .. } => {
                            format!("recv from {} tag {}", key.0, key.2 .0)
                        }
                        Blocked::SendRdv { key, .. } => {
                            format!("rendezvous send to {} tag {}", key.1, key.2 .0)
                        }
                        Blocked::WaitAll { reqs, .. } => format!("waitall on {} reqs", reqs.len()),
                        Blocked::Barrier { .. } => "barrier".to_string(),
                    };
                    Some(format!("{}: blocked in {what}", ProcId(i as u16)))
                }
                _ => None,
            })
            .collect()
    }

    /// Runs process `i` until it blocks, finishes, or reaches the horizon.
    fn step_proc(&mut self, i: usize, horizon: SimTime) {
        loop {
            if !matches!(self.procs[i].state, ProcState::Ready) {
                return;
            }
            if self.procs[i].clock >= horizon {
                return;
            }
            // Resume an interrupted CPU burst first.
            if let Some((func, remaining)) = self.procs[i].pending_compute.take() {
                self.exec_compute(i, func, remaining, horizon);
                continue;
            }
            let Some(action) = self.procs[i].script.next_action() else {
                self.procs[i].state = ProcState::Done;
                // A process exiting can complete a barrier for the others.
                self.check_barrier();
                return;
            };
            self.exec_action(i, action, horizon);
        }
    }

    fn exec_action(&mut self, i: usize, action: Action, horizon: SimTime) {
        match action {
            Action::Compute { func, dur } => self.exec_compute(i, func, dur, horizon),
            Action::Io { func, bytes } => {
                let start = self.procs[i].clock;
                let end = start + self.machine.io_time(bytes);
                self.emit(Interval {
                    proc: ProcId(i as u16),
                    func,
                    kind: ActivityKind::IoWait,
                    tag: None,
                    start,
                    end,
                    bytes,
                });
                self.procs[i].clock = end;
            }
            Action::Send {
                func,
                to,
                tag,
                bytes,
            } => self.exec_send(i, func, to, tag, bytes),
            Action::Recv { func, from, tag } => self.exec_recv(i, func, from, tag),
            Action::Isend {
                func,
                to,
                tag,
                bytes,
                req,
            } => self.exec_isend(i, func, to, tag, bytes, req),
            Action::Irecv {
                func,
                from,
                tag,
                req,
            } => self.exec_irecv(i, func, from, tag, req),
            Action::WaitAll { func, reqs } => self.exec_waitall(i, func, reqs),
            Action::Barrier { func } => {
                let since = self.procs[i].clock;
                self.procs[i].state = ProcState::Blocked(Blocked::Barrier {
                    func,
                    since,
                    bytes: 0,
                });
                self.check_barrier();
            }
            Action::AllReduce { func, bytes } => {
                let since = self.procs[i].clock;
                self.procs[i].state = ProcState::Blocked(Blocked::Barrier { func, since, bytes });
                self.check_barrier();
            }
        }
    }

    fn exec_compute(&mut self, i: usize, func: FuncId, dur: SimDuration, horizon: SimTime) {
        let slowdown = self.procs[i].slowdown;
        let start = self.procs[i].clock;
        let actual = dur.mul_f64(slowdown);
        if start + actual <= horizon || actual.is_zero() {
            self.emit(Interval {
                proc: ProcId(i as u16),
                func,
                kind: ActivityKind::Cpu,
                tag: None,
                start,
                end: start + actual,
                bytes: 0,
            });
            self.procs[i].clock = start + actual;
        } else {
            // Chunk the burst at the horizon; keep the unperturbed
            // remainder so later slowdown changes apply to it.
            let consumed_actual = horizon - start;
            let mut consumed_unpert =
                SimDuration(((consumed_actual.as_micros() as f64) / slowdown).floor() as u64);
            if consumed_unpert.is_zero() {
                consumed_unpert = SimDuration(1);
            }
            let consumed_unpert = SimDuration(consumed_unpert.as_micros().min(dur.as_micros()));
            let remaining = dur.saturating_sub(consumed_unpert);
            self.emit(Interval {
                proc: ProcId(i as u16),
                func,
                kind: ActivityKind::Cpu,
                tag: None,
                start,
                end: horizon,
                bytes: 0,
            });
            self.procs[i].clock = horizon;
            if !remaining.is_zero() {
                self.procs[i].pending_compute = Some((func, remaining));
            }
        }
    }

    fn exec_send(&mut self, i: usize, func: FuncId, to: ProcId, tag: TagId, bytes: u64) {
        let key: ChanKey = (ProcId(i as u16), to, tag);
        let clock = self.procs[i].clock;
        if self.machine.is_eager(bytes) {
            // Eager: local completion after the posting overhead; the
            // payload lands at the receiver after the wire time.
            let end = clock + self.machine.msg_overhead;
            let avail = end + self.machine.transfer_time(bytes);
            self.emit(Interval {
                proc: ProcId(i as u16),
                func,
                kind: ActivityKind::SyncWait,
                tag: Some(tag),
                start: clock,
                end,
                bytes,
            });
            self.procs[i].clock = end;
            self.deliver(key, Msg { avail, bytes });
        } else {
            // Rendezvous: complete against an already-blocked receiver or
            // a posted Irecv, otherwise block.
            let recv_blocked_since = match &self.procs[to.0 as usize].state {
                ProcState::Blocked(Blocked::Recv { key: k, since, .. }) if *k == key => {
                    Some(*since)
                }
                _ => None,
            };
            if let Some(r_since) = recv_blocked_since {
                let done = clock.max(r_since) + self.machine.transfer_time(bytes);
                self.emit(Interval {
                    proc: ProcId(i as u16),
                    func,
                    kind: ActivityKind::SyncWait,
                    tag: Some(tag),
                    start: clock,
                    end: done,
                    bytes,
                });
                self.procs[i].clock = done;
                self.resume_recv(to, done, bytes);
                return;
            }
            // A posted Irecv lets the transfer start immediately.
            let has_posted = self
                .channel(key)
                .is_some_and(|c| !c.posted_irecvs.is_empty());
            if has_posted {
                let (req, post) = self
                    .channel_mut(key)
                    .posted_irecvs
                    .pop_front()
                    .expect("just checked");
                let done = clock.max(post) + self.machine.transfer_time(bytes);
                self.emit(Interval {
                    proc: ProcId(i as u16),
                    func,
                    kind: ActivityKind::SyncWait,
                    tag: Some(tag),
                    start: clock,
                    end: done,
                    bytes,
                });
                self.procs[i].clock = done;
                self.complete_req(to, req, done, bytes, Some(tag));
                return;
            }
            let chan = self.channel_mut(key);
            debug_assert!(chan.pending_rdv.is_none(), "one blocking send per proc");
            chan.pending_rdv = Some((clock, bytes));
            self.procs[i].state = ProcState::Blocked(Blocked::SendRdv {
                key,
                func,
                since: clock,
                bytes,
            });
        }
    }

    fn exec_recv(&mut self, i: usize, func: FuncId, from: ProcId, tag: TagId) {
        let key: ChanKey = (from, ProcId(i as u16), tag);
        let clock = self.procs[i].clock;
        // 1. A queued (eager/Isend) message.
        if let Some(msg) = self.channel_mut(key).inflight.pop_front() {
            let end = (clock + self.machine.msg_overhead).max(msg.avail);
            self.emit(Interval {
                proc: ProcId(i as u16),
                func,
                kind: ActivityKind::SyncWait,
                tag: Some(tag),
                start: clock,
                end,
                bytes: msg.bytes,
            });
            self.procs[i].clock = end;
            return;
        }
        // 2. A rendezvous sender already blocked on this channel.
        if let Some((s_since, bytes)) = self.channel_mut(key).pending_rdv.take() {
            let done = clock.max(s_since) + self.machine.transfer_time(bytes);
            self.emit(Interval {
                proc: ProcId(i as u16),
                func,
                kind: ActivityKind::SyncWait,
                tag: Some(tag),
                start: clock,
                end: done,
                bytes,
            });
            self.procs[i].clock = done;
            self.resume_sender(from, done);
            return;
        }
        // 3. Nothing yet: block.
        self.procs[i].state = ProcState::Blocked(Blocked::Recv {
            key,
            func,
            since: clock,
        });
    }

    fn exec_isend(
        &mut self,
        i: usize,
        func: FuncId,
        to: ProcId,
        tag: TagId,
        bytes: u64,
        req: ReqId,
    ) {
        let key: ChanKey = (ProcId(i as u16), to, tag);
        let clock = self.procs[i].clock;
        let end = clock + self.machine.msg_overhead;
        let avail = end + self.machine.transfer_time(bytes);
        self.emit(Interval {
            proc: ProcId(i as u16),
            func,
            kind: ActivityKind::SyncWait,
            tag: Some(tag),
            start: clock,
            end,
            bytes,
        });
        self.procs[i].clock = end;
        // The send request is complete as soon as the payload is handed to
        // the transport (a simplification of MPI buffering semantics).
        self.procs[i]
            .reqs
            .insert(req, ReqState::CompleteAt(end, 0, Some(tag)));
        self.deliver(key, Msg { avail, bytes });
    }

    fn exec_irecv(&mut self, i: usize, func: FuncId, from: ProcId, tag: TagId, req: ReqId) {
        let key: ChanKey = (from, ProcId(i as u16), tag);
        let clock = self.procs[i].clock;
        let end = clock + self.machine.msg_overhead;
        self.emit(Interval {
            proc: ProcId(i as u16),
            func,
            kind: ActivityKind::SyncWait,
            tag: Some(tag),
            start: clock,
            end,
            bytes: 0,
        });
        self.procs[i].clock = end;
        // Match a queued message, a blocked rendezvous sender, or post.
        if let Some(msg) = self.channel_mut(key).inflight.pop_front() {
            self.procs[i].reqs.insert(
                req,
                ReqState::CompleteAt(end.max(msg.avail), msg.bytes, Some(tag)),
            );
            return;
        }
        if let Some((s_since, bytes)) = self.channel_mut(key).pending_rdv.take() {
            let done = end.max(s_since) + self.machine.transfer_time(bytes);
            self.procs[i]
                .reqs
                .insert(req, ReqState::CompleteAt(done, bytes, Some(tag)));
            self.resume_sender(from, done);
            return;
        }
        self.procs[i].reqs.insert(req, ReqState::PendingRecv);
        self.channel_mut(key).posted_irecvs.push_back((req, end));
    }

    fn exec_waitall(&mut self, i: usize, func: FuncId, reqs: Vec<ReqId>) {
        let clock = self.procs[i].clock;
        if let Some(done) = self.waitall_ready(i, &reqs) {
            let end = clock.max(done);
            let (bytes, tag) = self.consume_reqs(i, &reqs);
            self.emit(Interval {
                proc: ProcId(i as u16),
                func,
                kind: ActivityKind::SyncWait,
                tag,
                start: clock,
                end,
                bytes,
            });
            self.procs[i].clock = end;
        } else {
            self.procs[i].state = ProcState::Blocked(Blocked::WaitAll {
                func,
                reqs,
                since: clock,
            });
        }
    }

    /// If every request has a known completion time, the latest of them.
    fn waitall_ready(&self, i: usize, reqs: &[ReqId]) -> Option<SimTime> {
        let mut done = SimTime::ZERO;
        for r in reqs {
            match self.procs[i].reqs.get(r) {
                Some(ReqState::CompleteAt(t, _, _)) => done = done.max(*t),
                _ => return None,
            }
        }
        Some(done)
    }

    /// Removes completed requests, returning the total moved bytes and —
    /// when every request involved the same message tag — that tag, so a
    /// wait over a homogeneous exchange stays attributable to its
    /// SyncObject.
    fn consume_reqs(&mut self, i: usize, reqs: &[ReqId]) -> (u64, Option<TagId>) {
        let mut bytes = 0;
        let mut tag: Option<Option<TagId>> = None;
        for r in reqs {
            if let Some(ReqState::CompleteAt(_, b, t)) = self.procs[i].reqs.remove(r) {
                bytes += b;
                tag = match tag {
                    None => Some(t),
                    Some(prev) if prev == t => Some(prev),
                    Some(_) => Some(None), // mixed tags: unattributed
                };
            }
        }
        (bytes, tag.flatten())
    }

    /// Delivers a message: wakes a blocked receiver, completes a posted
    /// `Irecv`, or queues it.
    fn deliver(&mut self, key: ChanKey, msg: Msg) {
        let to = key.1;
        let recv_blocked = matches!(
            &self.procs[to.0 as usize].state,
            ProcState::Blocked(Blocked::Recv { key: k, .. }) if *k == key
        );
        if recv_blocked {
            self.resume_recv_with(to, msg);
            return;
        }
        if let Some((req, post)) = self.channel_mut(key).posted_irecvs.pop_front() {
            let done = post.max(msg.avail);
            self.complete_req(to, req, done, msg.bytes, Some(key.2));
            return;
        }
        self.channel_mut(key).inflight.push_back(msg);
    }

    /// Resumes a receiver blocked in a blocking recv with `msg`.
    fn resume_recv_with(&mut self, to: ProcId, msg: Msg) {
        let p = &mut self.procs[to.0 as usize];
        let ProcState::Blocked(Blocked::Recv { func, since, key }) = p.state.clone() else {
            unreachable!("caller checked the state");
        };
        let end = since.max(msg.avail);
        p.clock = end;
        p.state = ProcState::Ready;
        self.emit(Interval {
            proc: to,
            func,
            kind: ActivityKind::SyncWait,
            tag: Some(key.2),
            start: since,
            end,
            bytes: msg.bytes,
        });
    }

    /// Resumes a receiver blocked in a blocking recv at `done` (rendezvous
    /// completion path, where the sender already emitted the transfer).
    fn resume_recv(&mut self, to: ProcId, done: SimTime, bytes: u64) {
        let p = &mut self.procs[to.0 as usize];
        let ProcState::Blocked(Blocked::Recv { func, since, key }) = p.state.clone() else {
            unreachable!("caller checked the state");
        };
        p.clock = done;
        p.state = ProcState::Ready;
        self.emit(Interval {
            proc: to,
            func,
            kind: ActivityKind::SyncWait,
            tag: Some(key.2),
            start: since,
            end: done,
            bytes,
        });
    }

    /// Resumes a rendezvous sender at `done`.
    fn resume_sender(&mut self, from: ProcId, done: SimTime) {
        let p = &mut self.procs[from.0 as usize];
        let ProcState::Blocked(Blocked::SendRdv {
            func,
            since,
            key,
            bytes,
        }) = p.state.clone()
        else {
            unreachable!("caller holds the pending_rdv entry");
        };
        p.clock = done;
        p.state = ProcState::Ready;
        self.emit(Interval {
            proc: from,
            func,
            kind: ActivityKind::SyncWait,
            tag: Some(key.2),
            start: since,
            end: done,
            bytes,
        });
    }

    /// Marks request `req` of process `to` complete at `done`, resuming a
    /// WaitAll that was blocked on it if all its requests are now complete.
    fn complete_req(
        &mut self,
        to: ProcId,
        req: ReqId,
        done: SimTime,
        bytes: u64,
        tag: Option<TagId>,
    ) {
        self.procs[to.0 as usize]
            .reqs
            .insert(req, ReqState::CompleteAt(done, bytes, tag));
        let waiting = match &self.procs[to.0 as usize].state {
            ProcState::Blocked(Blocked::WaitAll { reqs, .. }) => Some(reqs.clone()),
            _ => None,
        };
        if let Some(reqs) = waiting {
            if let Some(all_done) = self.waitall_ready(to.0 as usize, &reqs) {
                let ProcState::Blocked(Blocked::WaitAll { func, since, .. }) =
                    self.procs[to.0 as usize].state.clone()
                else {
                    unreachable!();
                };
                let end = since.max(all_done);
                let (total, wait_tag) = self.consume_reqs(to.0 as usize, &reqs);
                let p = &mut self.procs[to.0 as usize];
                p.clock = end;
                p.state = ProcState::Ready;
                self.emit(Interval {
                    proc: to,
                    func,
                    kind: ActivityKind::SyncWait,
                    tag: wait_tag,
                    start: since,
                    end,
                    bytes: total,
                });
            }
        }
    }

    /// Completes the barrier/collective when every live process has
    /// arrived. A data-carrying collective additionally pays a log-tree
    /// transfer cost for the largest payload contributed.
    fn check_barrier(&mut self) {
        let mut arrivals = Vec::new();
        let mut max_bytes = 0u64;
        for (idx, p) in self.procs.iter().enumerate() {
            match &p.state {
                ProcState::Done | ProcState::Dead => continue,
                ProcState::Blocked(Blocked::Barrier { since, bytes, .. }) => {
                    arrivals.push((idx, *since));
                    max_bytes = max_bytes.max(*bytes);
                }
                _ => return, // someone has not arrived yet
            }
        }
        if arrivals.is_empty() {
            return;
        }
        let latest = arrivals.iter().map(|&(_, t)| t).max().expect("non-empty");
        let mut done = latest + self.machine.barrier_cost(arrivals.len());
        if max_bytes > 0 {
            let stages = (arrivals.len() as f64).log2().ceil().max(1.0);
            done += self.machine.transfer_time(max_bytes).mul_f64(stages);
        }
        for (idx, since) in arrivals {
            let ProcState::Blocked(Blocked::Barrier { func, .. }) = self.procs[idx].state.clone()
            else {
                unreachable!();
            };
            self.procs[idx].clock = done;
            self.procs[idx].state = ProcState::Ready;
            self.emit(Interval {
                proc: ProcId(idx as u16),
                func,
                kind: ActivityKind::SyncWait,
                tag: None,
                start: since,
                end: done,
                bytes: 0,
            });
        }
    }

    fn channel_mut(&mut self, key: ChanKey) -> &mut Channel {
        match self.chan_index(key) {
            Some(i) => &mut self.channels[i],
            None => self.chan_spill.entry(key).or_default(),
        }
    }

    fn emit(&mut self, iv: Interval) {
        if iv.duration().is_zero() && iv.bytes == 0 {
            return;
        }
        self.totals.observe(&iv);
        self.emitted.push(iv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::VecScript;
    use crate::program::ModuleSpec;

    fn two_proc_app() -> AppSpec {
        AppSpec {
            name: "t".into(),
            version: "1".into(),
            modules: vec![ModuleSpec {
                name: "m.c".into(),
                functions: vec!["f".into(), "g".into()],
            }],
            processes: vec!["t:0".into(), "t:1".into()],
            nodes: vec!["n0".into(), "n1".into()],
            proc_node: vec![0, 1],
            tags: vec!["0".into()],
        }
    }

    fn engine(scripts: Vec<Vec<Action>>) -> Engine {
        let app = two_proc_app();
        let machine = MachineModel::sp2(2);
        Engine::new(
            app,
            machine,
            scripts
                .into_iter()
                .map(|s| Box::new(VecScript::new(s)) as Box<dyn ProcessScript>)
                .collect(),
        )
    }

    const F: FuncId = FuncId(0);
    const G: FuncId = FuncId(1);
    const T: TagId = TagId(0);

    #[test]
    fn compute_advances_clock() {
        let mut e = engine(vec![
            vec![Action::Compute {
                func: F,
                dur: SimDuration::from_millis(5),
            }],
            vec![],
        ]);
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
        assert_eq!(e.proc_clock(ProcId(0)), SimTime::from_millis(5));
        let ivs = e.drain_intervals();
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].kind, ActivityKind::Cpu);
        assert_eq!(ivs[0].duration(), SimDuration::from_millis(5));
    }

    #[test]
    fn eager_send_recv_transfers_message() {
        // p0 computes 1ms then sends 64B; p1 recvs immediately and waits.
        let mut e = engine(vec![
            vec![
                Action::Compute {
                    func: F,
                    dur: SimDuration::from_millis(1),
                },
                Action::Send {
                    func: G,
                    to: ProcId(1),
                    tag: T,
                    bytes: 64,
                },
            ],
            vec![Action::Recv {
                func: G,
                from: ProcId(0),
                tag: T,
            }],
        ]);
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
        // p1 blocked from t=0 until the payload arrived.
        let wait = e.totals().proc_total(ProcId(1), ActivityKind::SyncWait);
        assert!(wait > SimDuration::from_millis(1), "wait was {wait}");
        // The sender finished quickly (eager).
        assert!(e.proc_clock(ProcId(0)) < SimTime::from_millis(2));
        assert_eq!(e.totals().msg_count(ProcId(1), T), 1);
    }

    #[test]
    fn rendezvous_send_blocks_until_recv() {
        // 64 KiB exceeds the 4 KiB eager threshold.
        let mut e = engine(vec![
            vec![Action::Send {
                func: G,
                to: ProcId(1),
                tag: T,
                bytes: 64 * 1024,
            }],
            vec![
                Action::Compute {
                    func: F,
                    dur: SimDuration::from_millis(10),
                },
                Action::Recv {
                    func: G,
                    from: ProcId(0),
                    tag: T,
                },
            ],
        ]);
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
        // The sender had to wait for the receiver's 10ms compute plus the
        // transfer time.
        let transfer = MachineModel::sp2(2).transfer_time(64 * 1024);
        let expect = SimTime::from_millis(10) + transfer;
        assert_eq!(e.proc_clock(ProcId(0)), expect);
        assert_eq!(e.proc_clock(ProcId(1)), expect);
        let sender_wait = e.totals().proc_total(ProcId(0), ActivityKind::SyncWait);
        assert_eq!(sender_wait, expect - SimTime::ZERO);
    }

    #[test]
    fn nonblocking_overlap_hides_transfer() {
        // p0: isend; compute 10ms; waitall -> transfer hidden by compute.
        let req = ReqId(1);
        let mut e = engine(vec![
            vec![
                Action::Isend {
                    func: G,
                    to: ProcId(1),
                    tag: T,
                    bytes: 64,
                    req,
                },
                Action::Compute {
                    func: F,
                    dur: SimDuration::from_millis(10),
                },
                Action::WaitAll {
                    func: G,
                    reqs: vec![req],
                },
            ],
            vec![Action::Recv {
                func: G,
                from: ProcId(0),
                tag: T,
            }],
        ]);
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
        // WaitAll completes instantly: only the posting overhead shows up
        // as sync time for p0.
        let wait0 = e.totals().proc_total(ProcId(0), ActivityKind::SyncWait);
        assert_eq!(wait0, MachineModel::sp2(2).msg_overhead);
    }

    #[test]
    fn irecv_completes_when_message_arrives() {
        let req = ReqId(7);
        let mut e = engine(vec![
            vec![
                Action::Irecv {
                    func: G,
                    from: ProcId(1),
                    tag: T,
                    req,
                },
                Action::Compute {
                    func: F,
                    dur: SimDuration::from_millis(1),
                },
                Action::WaitAll {
                    func: G,
                    reqs: vec![req],
                },
            ],
            vec![
                Action::Compute {
                    func: F,
                    dur: SimDuration::from_millis(5),
                },
                Action::Send {
                    func: G,
                    to: ProcId(0),
                    tag: T,
                    bytes: 64,
                },
            ],
        ]);
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
        // p0 waited in WaitAll from ~1ms until the message arrived (~5ms+).
        let wait0 = e.totals().proc_total(ProcId(0), ActivityKind::SyncWait);
        assert!(wait0 > SimDuration::from_millis(3), "wait was {wait0}");
        assert!(e.proc_clock(ProcId(0)) > SimTime::from_millis(5));
    }

    #[test]
    fn barrier_synchronizes_all() {
        let mut e = engine(vec![
            vec![
                Action::Compute {
                    func: F,
                    dur: SimDuration::from_millis(2),
                },
                Action::Barrier { func: G },
            ],
            vec![
                Action::Compute {
                    func: F,
                    dur: SimDuration::from_millis(8),
                },
                Action::Barrier { func: G },
            ],
        ]);
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
        let cost = MachineModel::sp2(2).barrier_cost(2);
        let done = SimTime::from_millis(8) + cost;
        assert_eq!(e.proc_clock(ProcId(0)), done);
        assert_eq!(e.proc_clock(ProcId(1)), done);
        // The early arriver waited ~6ms + cost, the late one only the cost.
        let w0 = e.totals().proc_total(ProcId(0), ActivityKind::SyncWait);
        let w1 = e.totals().proc_total(ProcId(1), ActivityKind::SyncWait);
        assert!(w0 > w1);
        assert_eq!(w1, cost);
    }

    #[test]
    fn barrier_completes_when_last_proc_exits() {
        // p1 finishes without entering the barrier -> p0's barrier
        // completes over the remaining single participant.
        let mut e = engine(vec![
            vec![Action::Barrier { func: G }],
            vec![Action::Compute {
                func: F,
                dur: SimDuration::from_millis(1),
            }],
        ]);
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
    }

    #[test]
    fn deadlock_is_detected() {
        // Both processes recv first: classic deadlock.
        let mut e = engine(vec![
            vec![Action::Recv {
                func: G,
                from: ProcId(1),
                tag: T,
            }],
            vec![Action::Recv {
                func: G,
                from: ProcId(0),
                tag: T,
            }],
        ]);
        match e.run_until(SimTime::from_secs(1)) {
            EngineStatus::Deadlock(desc) => {
                assert_eq!(desc.len(), 2);
                assert!(desc[0].contains("recv"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn horizon_pauses_and_resumes() {
        let mut e = engine(vec![
            vec![Action::Compute {
                func: F,
                dur: SimDuration::from_millis(100),
            }],
            vec![],
        ]);
        assert_eq!(e.run_until(SimTime::from_millis(30)), EngineStatus::Running);
        assert_eq!(e.proc_clock(ProcId(0)), SimTime::from_millis(30));
        // The chunked burst emitted a partial interval.
        let cpu = e.totals().proc_total(ProcId(0), ActivityKind::Cpu);
        assert_eq!(cpu, SimDuration::from_millis(30));
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
        let cpu = e.totals().proc_total(ProcId(0), ActivityKind::Cpu);
        assert_eq!(cpu, SimDuration::from_millis(100));
    }

    #[test]
    fn slowdown_stretches_cpu_time() {
        let mut e = engine(vec![
            vec![Action::Compute {
                func: F,
                dur: SimDuration::from_millis(10),
            }],
            vec![],
        ]);
        e.set_slowdown(ProcId(0), 1.5);
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
        assert_eq!(e.proc_clock(ProcId(0)), SimTime::from_millis(15));
        // Slowdown below 1 clamps to 1.
        let mut e2 = engine(vec![
            vec![Action::Compute {
                func: F,
                dur: SimDuration::from_millis(10),
            }],
            vec![],
        ]);
        e2.set_slowdown(ProcId(0), 0.2);
        e2.run_until(SimTime::from_secs(1));
        assert_eq!(e2.proc_clock(ProcId(0)), SimTime::from_millis(10));
    }

    #[test]
    fn slowdown_change_applies_to_remaining_chunk() {
        let mut e = engine(vec![
            vec![Action::Compute {
                func: F,
                dur: SimDuration::from_millis(100),
            }],
            vec![],
        ]);
        // First half unperturbed, second half at 2x.
        e.run_until(SimTime::from_millis(50));
        e.set_slowdown(ProcId(0), 2.0);
        e.run_until(SimTime::from_secs(10));
        assert_eq!(e.proc_clock(ProcId(0)), SimTime::from_millis(150));
    }

    #[test]
    fn io_counts_as_io_wait() {
        let mut e = engine(vec![
            vec![Action::Io {
                func: F,
                bytes: 8_000_000,
            }],
            vec![],
        ]);
        e.run_until(SimTime::from_secs(5));
        assert_eq!(
            e.totals().proc_total(ProcId(0), ActivityKind::IoWait),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn killed_proc_stops_emitting_and_run_completes() {
        let mut e = engine(vec![
            vec![Action::Compute {
                func: F,
                dur: SimDuration::from_millis(100),
            }],
            vec![Action::Compute {
                func: F,
                dur: SimDuration::from_millis(5),
            }],
        ]);
        e.run_until(SimTime::from_millis(10));
        e.kill_proc(ProcId(0));
        assert_eq!(e.dead_procs(), vec![ProcId(0)]);
        // The dead process never advances again; the survivor's exit
        // counts the run as done.
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
        assert_eq!(e.proc_clock(ProcId(0)), SimTime::from_millis(10));
        assert!(!e.all_done(), "a killed proc never finishes its script");
        // Killing again is a no-op.
        e.kill_proc(ProcId(0));
        assert_eq!(e.dead_procs(), vec![ProcId(0)]);
    }

    #[test]
    fn kill_node_kills_its_procs_and_completes_barriers() {
        // p1 dies on its node while p0 waits in a barrier: the barrier
        // completes over the single survivor instead of hanging forever.
        let mut e = engine(vec![
            vec![Action::Barrier { func: G }],
            vec![
                Action::Compute {
                    func: F,
                    dur: SimDuration::from_millis(50),
                },
                Action::Barrier { func: G },
            ],
        ]);
        e.run_until(SimTime::from_millis(10));
        assert_eq!(e.node_index("n1"), Some(1));
        assert_eq!(e.node_index("nope"), None);
        let killed = e.kill_node(1);
        assert_eq!(killed, vec![ProcId(1)]);
        assert_eq!(e.run_until(SimTime::from_secs(1)), EngineStatus::AllDone);
    }

    #[test]
    fn kill_withdraws_pending_communication() {
        // p0 blocks in a rendezvous send to p1, then p0 dies; p1's later
        // recv must not wake the dead sender (it blocks instead, and the
        // run reports deadlock rather than panicking).
        let mut e = engine(vec![
            vec![Action::Send {
                func: G,
                to: ProcId(1),
                tag: T,
                bytes: 64 * 1024,
            }],
            vec![
                Action::Compute {
                    func: F,
                    dur: SimDuration::from_millis(10),
                },
                Action::Recv {
                    func: G,
                    from: ProcId(0),
                    tag: T,
                },
            ],
        ]);
        e.run_until(SimTime::from_millis(5));
        e.kill_proc(ProcId(0));
        match e.run_until(SimTime::from_secs(1)) {
            EngineStatus::Deadlock(desc) => {
                assert_eq!(desc.len(), 1);
                assert!(desc[0].contains("recv"));
            }
            other => panic!("expected the survivor to block, got {other:?}"),
        }
    }

    #[test]
    fn intervals_drain_once() {
        let mut e = engine(vec![
            vec![Action::Compute {
                func: F,
                dur: SimDuration::from_millis(1),
            }],
            vec![],
        ]);
        e.run_until(SimTime::from_secs(1));
        assert_eq!(e.drain_intervals().len(), 1);
        assert!(e.drain_intervals().is_empty());
    }
}
