//! The machine model: an SP/2-like cluster.
//!
//! The paper's experiments ran on 4 and 8 nodes of an IBM SP/2 with MPI's
//! static process model (one process per node). We model the timing
//! properties that shape the Performance Consultant's view of the program:
//! per-node computation rate, point-to-point message latency and bandwidth,
//! barrier/reduction cost, and an I/O rate. Absolute values are
//! configurable; the defaults approximate a late-90s SP/2 thin node.

use crate::time::SimDuration;

/// Timing model of the simulated cluster.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Number of nodes in the partition.
    pub nodes: usize,
    /// Sustained floating-point rate per node, in flop/s
    /// (used to convert workload flop counts into CPU time).
    pub flops_per_sec: f64,
    /// Per-node relative speed factors (length `nodes`, 1.0 = nominal).
    /// Heterogeneity here is one source of load imbalance.
    pub node_speed: Vec<f64>,
    /// One-way point-to-point message latency.
    pub net_latency: SimDuration,
    /// Point-to-point bandwidth, in bytes/s.
    pub net_bandwidth: f64,
    /// Messages at or below this size complete eagerly (the sender does not
    /// wait for the receiver); larger messages rendezvous.
    pub eager_threshold: u64,
    /// Local CPU overhead of posting a send or receive.
    pub msg_overhead: SimDuration,
    /// Fixed cost of a barrier/reduction once all processes have arrived.
    pub barrier_base: SimDuration,
    /// Additional barrier cost per participating process.
    pub barrier_per_proc: SimDuration,
    /// Sequential I/O rate, in bytes/s.
    pub io_rate: f64,
}

impl MachineModel {
    /// An IBM SP/2-like partition with `nodes` thin nodes: 60 Mflop/s
    /// sustained, 40 µs latency, 35 MB/s bandwidth, 4 KiB eager limit.
    pub fn sp2(nodes: usize) -> MachineModel {
        MachineModel {
            nodes,
            flops_per_sec: 60.0e6,
            node_speed: vec![1.0; nodes],
            net_latency: SimDuration(40),
            net_bandwidth: 35.0e6,
            eager_threshold: 4096,
            msg_overhead: SimDuration(10),
            barrier_base: SimDuration(60),
            barrier_per_proc: SimDuration(25),
            io_rate: 8.0e6,
        }
    }

    /// A SPARCstation/PVM-like network of workstations: slower network with
    /// much higher latency, as in the paper's ocean-circulation study.
    pub fn now_cluster(nodes: usize) -> MachineModel {
        MachineModel {
            nodes,
            flops_per_sec: 25.0e6,
            node_speed: vec![1.0; nodes],
            net_latency: SimDuration(700),
            net_bandwidth: 1.0e6,
            eager_threshold: 1024,
            msg_overhead: SimDuration(80),
            barrier_base: SimDuration(900),
            barrier_per_proc: SimDuration(350),
            io_rate: 3.0e6,
        }
    }

    /// Overrides per-node speed factors (must supply one factor per node).
    pub fn with_node_speeds(mut self, speeds: Vec<f64>) -> MachineModel {
        assert_eq!(speeds.len(), self.nodes, "need one speed factor per node");
        assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
        self.node_speed = speeds;
        self
    }

    /// CPU time for `flops` floating-point operations on `node`.
    pub fn compute_time(&self, node: usize, flops: f64) -> SimDuration {
        let rate = self.flops_per_sec * self.node_speed[node];
        SimDuration::from_secs_f64(flops / rate)
    }

    /// Wire time for a `bytes`-byte message (latency + transfer).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.net_latency + SimDuration::from_secs_f64(bytes as f64 / self.net_bandwidth)
    }

    /// True if a `bytes`-byte send completes eagerly.
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_threshold
    }

    /// Completion cost of a barrier over `procs` processes, applied after
    /// the last process arrives.
    pub fn barrier_cost(&self, procs: usize) -> SimDuration {
        self.barrier_base + self.barrier_per_proc.mul_f64(procs as f64)
    }

    /// Blocking time for `bytes` of sequential I/O.
    pub fn io_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.io_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp2_defaults_are_sane() {
        let m = MachineModel::sp2(4);
        assert_eq!(m.nodes, 4);
        // 60 Mflops: 6e6 flops take 100 ms.
        assert_eq!(m.compute_time(0, 6.0e6), SimDuration::from_millis(100));
        // 35 MB/s: 3.5 MB takes 100 ms + 40 us latency.
        assert_eq!(m.transfer_time(3_500_000).as_micros(), 100_040);
        assert!(m.is_eager(1024));
        assert!(!m.is_eager(64 * 1024));
    }

    #[test]
    fn node_speed_scales_compute() {
        let m = MachineModel::sp2(2).with_node_speeds(vec![1.0, 0.5]);
        let fast = m.compute_time(0, 6.0e6);
        let slow = m.compute_time(1, 6.0e6);
        assert_eq!(slow.as_micros(), 2 * fast.as_micros());
    }

    #[test]
    #[should_panic(expected = "one speed factor per node")]
    fn wrong_speed_count_panics() {
        let _ = MachineModel::sp2(4).with_node_speeds(vec![1.0]);
    }

    #[test]
    fn barrier_cost_grows_with_procs() {
        let m = MachineModel::sp2(8);
        assert!(m.barrier_cost(8) > m.barrier_cost(4));
        assert_eq!(m.barrier_cost(4).as_micros(), 60 + 25 * 4);
    }

    #[test]
    fn io_time_is_linear() {
        let m = MachineModel::sp2(4);
        assert_eq!(m.io_time(8_000_000), SimDuration::from_secs(1));
    }

    #[test]
    fn now_cluster_has_slower_network() {
        let sp2 = MachineModel::sp2(4);
        let now = MachineModel::now_cluster(4);
        assert!(now.net_latency > sp2.net_latency);
        assert!(now.net_bandwidth < sp2.net_bandwidth);
    }
}
