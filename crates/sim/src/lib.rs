//! `histpc-sim`: a deterministic discrete-event simulator of
//! message-passing parallel applications.
//!
//! This crate is the substrate that stands in for the paper's live MPI
//! applications on the IBM SP/2 (see DESIGN.md §1 for the substitution
//! argument). It provides:
//!
//! * a [`machine::MachineModel`] with SP/2-like CPU, network, barrier and
//!   I/O timing;
//! * an [`engine::Engine`] executing per-process [`action::ProcessScript`]s
//!   with eager/rendezvous message semantics, barriers and non-blocking
//!   communication;
//! * online interval emission and per-process perturbation slowdown, the
//!   hooks the dynamic-instrumentation layer (`histpc-instr`) builds on;
//! * the paper's workloads ([`workloads`]): the four versions A–D of the
//!   iterative Poisson decomposition application, a PVM-style
//!   ocean-circulation code, the "Tester" program of Figure 1, and a
//!   configurable synthetic workload for tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod engine;
pub mod machine;
pub mod program;
pub mod rng;
pub mod time;
pub mod trace;
pub mod workloads;

pub use action::{Action, LoopScript, ProcessScript, ReqId, VecScript};
pub use engine::{Engine, EngineStatus};
pub use machine::MachineModel;
pub use program::{AppSpec, FuncId, ModuleSpec, ProcId, TagId};
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
pub use trace::{ActivityKind, Interval, TotalsKey, TraceAccumulator};
pub use workloads::Workload;
