//! Property-based tests for the discrete-event engine.

use histpc_sim::workloads::{PoissonVersion, PoissonWorkload, SyntheticWorkload, Workload};
use histpc_sim::{ActivityKind, EngineStatus, ProcId, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed => identical full-resolution totals, regardless of how
    /// the horizon is chopped up.
    #[test]
    fn determinism_is_independent_of_horizon_steps(
        seed in 0u64..1000,
        steps in 1usize..6,
    ) {
        let wl = PoissonWorkload::new(PoissonVersion::C).with_seed(seed);
        let total = SimTime::from_millis(1200);

        let mut one = wl.build_engine();
        one.run_until(total);

        let mut many = wl.build_engine();
        for k in 1..=steps {
            let t = SimTime((total.as_micros() * k as u64) / steps as u64);
            many.run_until(t);
        }

        // Both have simulated *at least* to `total`; processes may overrun
        // differently, so compare prefix behaviour: every proc is at or
        // past the horizon, and totals agree once both run to a common
        // barrier point far beyond.
        let far = SimTime::from_millis(1500);
        one.run_until(far);
        many.run_until(far);
        // Run both a little further so any in-flight blocking op resolves
        // identically, then compare.
        let a: Vec<_> = one.totals().iter().collect();
        let b: Vec<_> = many.totals().iter().collect();
        prop_assert_eq!(a, b);
    }

    /// Per-process conservation: a process is always in exactly one state,
    /// so cpu + sync + io time equals its clock (within the engine's
    /// integer rounding of chunked bursts).
    #[test]
    fn per_process_time_is_conserved(seed in 0u64..1000) {
        let wl = PoissonWorkload::new(PoissonVersion::A).with_seed(seed);
        let mut e = wl.build_engine();
        e.run_until(SimTime::from_millis(800));
        for p in 0..4u16 {
            let proc = ProcId(p);
            let cpu = e.totals().proc_total(proc, ActivityKind::Cpu);
            let sync = e.totals().proc_total(proc, ActivityKind::SyncWait);
            let io = e.totals().proc_total(proc, ActivityKind::IoWait);
            let busy = cpu + sync + io;
            let clock = e.proc_clock(proc);
            let diff = clock.as_micros().abs_diff(busy.as_micros());
            prop_assert!(
                diff < 100,
                "proc {p}: clock {} vs busy {} (cpu {cpu} sync {sync} io {io})",
                clock, busy
            );
        }
    }

    /// A compute-only synthetic workload accumulates exactly the planted
    /// CPU time per iteration.
    #[test]
    fn synthetic_cpu_matches_plan(
        funcs in 1usize..4,
        ms in 1u64..5,
        iters in 1u64..30,
    ) {
        let wl = SyntheticWorkload::balanced(2, funcs, ms as f64)
            .with_max_iters(iters);
        let mut e = wl.build_engine();
        prop_assert_eq!(e.run_until(SimTime::from_secs(3600)), EngineStatus::AllDone);
        let per_proc_expect = funcs as u64 * ms * 1000 * iters;
        for p in 0..2u16 {
            let cpu = e.totals().proc_total(ProcId(p), ActivityKind::Cpu);
            prop_assert_eq!(cpu.as_micros(), per_proc_expect);
        }
    }

    /// Slowdown factors stretch CPU time by exactly the factor for
    /// compute-only workloads.
    #[test]
    fn slowdown_scaling_is_exact(factor_pct in 100u32..300) {
        let factor = factor_pct as f64 / 100.0;
        let wl = SyntheticWorkload::balanced(1, 1, 10.0).with_max_iters(10);
        let mut e = wl.build_engine();
        e.set_slowdown(ProcId(0), factor);
        e.run_until(SimTime::from_secs(3600));
        let clock = e.proc_clock(ProcId(0)).as_micros() as f64;
        let expect = 10.0 * 10_000.0 * factor;
        prop_assert!((clock - expect).abs() <= 10.0 * 1.0,
            "clock {clock} expect {expect}");
    }

    /// Messages are conserved: every ring message sent is received
    /// (sender and receiver both log one interval with its bytes).
    #[test]
    fn ring_messages_are_conserved(iters in 1u64..20) {
        let wl = SyntheticWorkload::balanced(4, 1, 1.0)
            .with_ring(256)
            .with_max_iters(iters);
        let mut e = wl.build_engine();
        prop_assert_eq!(e.run_until(SimTime::from_secs(3600)), EngineStatus::AllDone);
        let tag = histpc_sim::TagId(0);
        for p in 0..4u16 {
            // Each process sends one and receives one message per
            // iteration; both directions count toward its tag totals.
            let count = e.totals().msg_count(ProcId(p), tag);
            prop_assert_eq!(count, 2 * iters);
            prop_assert_eq!(e.totals().msg_byte_total(ProcId(p), tag), 2 * iters * 256);
        }
    }
}
