//! `histpcd` — a crash-tolerant diagnosis-as-a-service daemon.
//!
//! The daemon multiplexes concurrent diagnosis sessions from many
//! *tenants* over one shared [`ExecutionStore`], speaking the
//! line-oriented [`histpc::remote`] protocol (`histpcd/v1`) on a
//! Unix-domain socket. It composes machinery this workspace already
//! has, rather than reinventing it:
//!
//! * every session runs under the full supervision ladder
//!   ([`histpc::supervise`]): heartbeat watchdog, checkpoint
//!   auto-resume under a retry budget, escalating degradation — so
//!   every accepted session ends *classified* (`completed`,
//!   `recovered`, `degraded`, or `abandoned`), never silently lost;
//! * per-tenant quotas map onto the admission controller's knobs:
//!   each tenant gets a bounded slot pool (bulkhead — one tenant's
//!   saturation returns `busy` to that tenant without touching the
//!   others) and a sample budget whose per-session slice becomes the
//!   session's [`AdmissionConfig`] bound whenever the fault plan
//!   touches overload;
//! * every accepted session writes a crash-safe *lease*
//!   ([`histpc::history::lease`]) before any work runs — tmp+rename
//!   installed and checksum-framed, carrying the full start spec.
//!
//! # Crash recovery
//!
//! A killed daemon leaves leases behind. The next incarnation, *before
//! accepting any new work*: advances the persisted lease epoch and
//! declares it to the advisory-lock layer (so an epoch-stale lock from
//! the dead predecessor is broken even if its pid was reused); then
//! scans every lease and either
//!
//! * marks the session **completed** (its record is already in the
//!   store — the crash happened after the save),
//! * **re-adopts** it (a checkpoint exists: the session restarts under
//!   supervision, resuming from the persisted checkpoint), or
//! * classifies it **abandoned** (no checkpoint — nothing to resume)
//!   and removes the lease.
//!
//! A lease that survives all of this (e.g. seen by `histpc ls` while
//! no daemon is running) is an *orphaned lease*, lint code HL035.
//!
//! # Protocol features
//!
//! Idempotent `start` per `(tenant, label)` — retrying a start whose
//! response was lost cannot double-run a session; `attach` with a
//! bounded wait and optional request deadline; `report` returning the
//! stored record text bit-identically; `health`/`drain`/`shutdown`
//! for operators; idle connections are reaped after a configurable
//! timeout so a stalled client cannot pin a handler thread forever.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use histpc::history::lease::{self, Lease};
use histpc::history::lock;
use histpc::prelude::*;
use histpc::remote::{Request, Response, PROTOCOL};
use histpc::supervise::{Attempt, Hooks, Mode, Outcome as SupOutcome, SessionDriver};

/// Retry hint (ms) returned with `busy` — how long a tenant should
/// back off when its slot pool is full.
const BUSY_RETRY_MS: u64 = 200;

/// Retry hint (ms) returned with `quota` — sample budget exhausted;
/// budget frees only when a session ends, so the hint is longer.
const QUOTA_RETRY_MS: u64 = 500;

/// Everything `histpcd` needs to serve one store on one socket.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root of the shared execution store.
    pub store_root: PathBuf,
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Concurrent-session slots per tenant (the bulkhead width).
    pub tenant_slots: usize,
    /// Total sample budget per tenant, divided among its in-flight
    /// sessions; a `start` whose slice cannot be carved returns
    /// `quota`.
    pub tenant_sample_budget: u64,
    /// Idle-connection reap deadline: a connection with no complete
    /// request for this long is closed.
    pub idle_timeout: Duration,
    /// Checkpoint-resume retry budget per session (supervision).
    pub retry_budget: u32,
    /// Wall-clock stall deadline per session (supervision watchdog).
    pub stall: Option<Duration>,
}

impl DaemonConfig {
    /// A config with the default quota/supervision knobs.
    pub fn new(store_root: impl Into<PathBuf>, socket: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            store_root: store_root.into(),
            socket: socket.into(),
            tenant_slots: 2,
            tenant_sample_budget: 4096,
            idle_timeout: Duration::from_secs(30),
            retry_budget: 3,
            stall: Some(Duration::from_secs(30)),
        }
    }
}

/// Errors starting or running the daemon.
#[derive(Debug)]
pub enum DaemonError {
    /// A live daemon already answers on the socket.
    AlreadyRunning(PathBuf),
    /// The store could not be opened.
    Store(String),
    /// Socket/filesystem failure.
    Io(io::Error),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::AlreadyRunning(p) => {
                write!(f, "a daemon is already serving {}", p.display())
            }
            DaemonError::Store(e) => write!(f, "store error: {e}"),
            DaemonError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<io::Error> for DaemonError {
    fn from(e: io::Error) -> Self {
        DaemonError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Session specs
// ---------------------------------------------------------------------------

/// The parameters of one `start` request — everything needed to run
/// (or, after a daemon crash, *re-run*) the session. Round-trips
/// through the lease's `spec` line so re-adoption rebuilds the exact
/// workload and config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Application spec (see [`histpc::apps`]).
    pub app: String,
    /// Store label for the session's artifacts.
    pub label: String,
    /// Workload seed.
    pub seed: Option<u64>,
    /// Sampling window, milliseconds.
    pub window_ms: u64,
    /// Sample period, milliseconds.
    pub sample_ms: u64,
    /// Search time bound, milliseconds of application time.
    pub max_time_ms: u64,
    /// Fault plan text (`histpc-faults v1`), if any. Wire-level kinds
    /// are stripped before the plan reaches the sim (the transport
    /// already took its toll client-side).
    pub faults: Option<String>,
    /// Requested sample-budget slice; defaults to an equal share of
    /// the tenant budget across its slots.
    pub budget: Option<u64>,
    /// Label of a prior run of the same application to harvest search
    /// directives from, trust-weighted per tenant: the harvest runs
    /// through [`Session::harvest_scoped`] with this tenant's scope, so
    /// one tenant's poisoned history can never taint another's trust.
    pub harvest_from: Option<String>,
    /// Shadow-audit budget for harvested directives (0 = off).
    pub audit_budget: Option<u32>,
}

impl SessionSpec {
    /// Parses a `start` request's parameters.
    pub fn from_request(req: &Request) -> Result<SessionSpec, String> {
        let num = |key: &str, default: u64| -> Result<u64, String> {
            match req.get(key) {
                Some(v) => v.parse().map_err(|_| format!("bad {key}={v:?}")),
                None => Ok(default),
            }
        };
        let spec = SessionSpec {
            app: req.get("app").ok_or("start needs app=")?.to_string(),
            label: req.get("label").ok_or("start needs label=")?.to_string(),
            seed: match req.get("seed") {
                Some(v) => Some(v.parse().map_err(|_| format!("bad seed={v:?}"))?),
                None => None,
            },
            window_ms: num("window-ms", 800)?,
            sample_ms: num("sample-ms", 100)?,
            max_time_ms: num("max-time-ms", 120_000)?,
            faults: req.get("faults").map(str::to_string),
            budget: match req.get("budget") {
                Some(v) => Some(v.parse().map_err(|_| format!("bad budget={v:?}"))?),
                None => None,
            },
            harvest_from: req.get("harvest-from").map(str::to_string),
            audit_budget: match req.get("audit-budget") {
                Some(v) => Some(v.parse().map_err(|_| format!("bad audit-budget={v:?}"))?),
                None => None,
            },
        };
        if spec.label.is_empty() || spec.label.contains('/') {
            return Err(format!("bad label {:?}", spec.label));
        }
        if let Some(from) = &spec.harvest_from {
            if from.is_empty() || from.contains('/') {
                return Err(format!("bad harvest-from {from:?}"));
            }
        }
        if let Some(text) = &spec.faults {
            FaultPlan::parse(text).map_err(|e| format!("bad fault plan: {e}"))?;
        }
        Ok(spec)
    }

    /// Serializes to the one-line form stored in the lease — the same
    /// `key=value` tokens a `start` request carries.
    pub fn to_spec_line(&self) -> String {
        let mut req = Request::new("start")
            .arg("app", &self.app)
            .arg("label", &self.label)
            .arg("window-ms", self.window_ms)
            .arg("sample-ms", self.sample_ms)
            .arg("max-time-ms", self.max_time_ms);
        if let Some(seed) = self.seed {
            req = req.arg("seed", seed);
        }
        if let Some(faults) = &self.faults {
            req = req.arg("faults", faults);
        }
        if let Some(budget) = self.budget {
            req = req.arg("budget", budget);
        }
        if let Some(from) = &self.harvest_from {
            req = req.arg("harvest-from", from);
        }
        if let Some(b) = self.audit_budget {
            req = req.arg("audit-budget", b);
        }
        req.to_line()
            .strip_prefix("start ")
            .expect("spec line has params")
            .to_string()
    }

    /// Parses a lease's `spec` line back into a spec.
    pub fn from_spec_line(line: &str) -> Result<SessionSpec, String> {
        let req = Request::parse(&format!("start {line}"))?;
        SessionSpec::from_request(&req)
    }

    /// The search config this session runs with. Per-tenant quotas map
    /// onto the admission controller only when the (sim-level) fault
    /// plan touches overload — a zero-fault session must stay
    /// bit-identical to an unsupervised `Session::diagnose`, and the
    /// admission layer is a total no-op only when disabled.
    fn search_config(&self, budget_slice: u64, slots: usize) -> Result<SearchConfig, String> {
        let mut config = SearchConfig {
            window: SimDuration::from_millis(self.window_ms),
            sample: SimDuration::from_millis(self.sample_ms),
            max_time: SimDuration::from_millis(self.max_time_ms),
            stall: Some(SimDuration::from_secs(2)),
            ..SearchConfig::default()
        };
        if let Some(text) = &self.faults {
            let plan = FaultPlan::parse(text).map_err(|e| e.to_string())?;
            let sim_plan = plan.without_wire();
            if sim_plan.touches_overload() {
                let adm = &mut config.collector.admission;
                adm.enabled = true;
                adm.sample_budget = budget_slice.max(64);
                adm.max_in_flight = (adm.max_in_flight / slots.max(1)).max(1);
            }
            config.faults = sim_plan;
        }
        Ok(config)
    }
}

// ---------------------------------------------------------------------------
// Session registry
// ---------------------------------------------------------------------------

/// Where one session is in its life.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SessionState {
    Running,
    /// Terminal, with its supervision classification.
    Done {
        classification: String,
        detail: String,
    },
}

#[derive(Debug)]
struct SessionEntry {
    tenant: String,
    spec: SessionSpec,
    /// The application name the store keys this session's record and
    /// artifacts under ([`AppSpec::name`], not the catalogue spec
    /// string a client starts it by).
    store_app: String,
    state: SessionState,
    cancel: Arc<AtomicBool>,
    /// Sample-budget slice this session holds against its tenant.
    budget: u64,
    /// True when this entry was re-adopted from a crashed daemon's
    /// lease rather than started by a client of this incarnation.
    adopted: bool,
}

/// What startup lease recovery did, for operators and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdoptionReport {
    /// Sessions re-adopted from checkpoints (now running).
    pub adopted: Vec<String>,
    /// Sessions whose record was already stored (completed pre-crash).
    pub completed: Vec<String>,
    /// Sessions with no checkpoint to resume (classified abandoned).
    pub abandoned: Vec<String>,
    /// Damaged lease files that were removed.
    pub damaged: Vec<String>,
}

impl AdoptionReport {
    /// Total leases the scan classified.
    pub fn total(&self) -> usize {
        self.adopted.len() + self.completed.len() + self.abandoned.len() + self.damaged.len()
    }
}

/// Daemon-wide serving state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Serving {
    Accepting,
    Draining,
    ShuttingDown,
}

struct Inner {
    cfg: DaemonConfig,
    session: Session,
    epoch: u64,
    /// Filled once by startup lease recovery, before the socket binds.
    adoption: Mutex<AdoptionReport>,
    registry: Mutex<HashMap<String, SessionEntry>>,
    /// Rings whenever a session reaches a terminal state.
    bell: Condvar,
    serving: Mutex<Serving>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn key(tenant: &str, label: &str) -> String {
        format!("{tenant}/{label}")
    }

    fn active_count(&self, registry: &HashMap<String, SessionEntry>) -> usize {
        registry
            .values()
            .filter(|e| e.state == SessionState::Running)
            .count()
    }

    /// Classify a finished session, release its lease, ring the bell.
    fn finish(&self, key: &str, classification: &str, detail: String) {
        let mut registry = self.registry.lock().expect("registry poisoned");
        if let Some(entry) = registry.get_mut(key) {
            entry.state = SessionState::Done {
                classification: classification.to_string(),
                detail,
            };
            let _ = lease::remove_lease(&self.cfg.store_root, &entry.tenant, &entry.spec.label);
        }
        self.bell.notify_all();
    }

    /// Spawns the supervised session thread for an accepted spec.
    /// Caller must already hold a registry entry for it.
    fn spawn_session(
        self: &Arc<Inner>,
        tenant: String,
        spec: SessionSpec,
        cancel: Arc<AtomicBool>,
        budget: u64,
        adopt_ckpt: Option<String>,
    ) {
        let inner = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            let key = Inner::key(&tenant, &spec.label);
            let workload = match histpc::apps::build_workload(&spec.app, spec.seed) {
                Ok(wl) => wl,
                Err(e) => {
                    inner.finish(&key, "abandoned", format!("abandoned: {e}"));
                    return;
                }
            };
            let mut config = match spec.search_config(budget, inner.cfg.tenant_slots) {
                Ok(c) => c,
                Err(e) => {
                    inner.finish(&key, "abandoned", format!("abandoned: {e}"));
                    return;
                }
            };
            if let Some(from) = &spec.harvest_from {
                // Trust-weighted harvest scoped to this tenant: source
                // runs are keyed `tenant/app/label` in the ledger, so a
                // tenant that poisons its own history only ever taints
                // its own trust. A failed harvest degrades to an
                // unguided run rather than killing the session —
                // history is an accelerant, never a requirement.
                let app_name = workload.app_spec().name;
                match inner.session.harvest_scoped(
                    &app_name,
                    from,
                    &histpc::history::ExtractionOptions::priorities_and_safe_prunes(),
                    Some(&tenant),
                ) {
                    Ok(directives) => {
                        config.directives = directives;
                        config.audit_budget = spec.audit_budget.unwrap_or(0);
                    }
                    Err(e) => eprintln!(
                        "histpcd: harvest-from {app_name}/{from} failed for {key}: {e}; \
                         running without history"
                    ),
                }
            }
            let driver = DaemonDriver {
                inner: WorkloadSession::new(&inner.session, workload.as_ref(), config, &spec.label),
                cancel,
                adopt_ckpt: Mutex::new(adopt_ckpt),
            };
            let sup = Supervisor::new(SupervisorConfig {
                retry_budget: inner.cfg.retry_budget,
                stall: inner.cfg.stall,
                ..SupervisorConfig::default()
            });
            let report = sup.run(&[&driver]);
            let session = &report.sessions[0];
            let classification = match &session.outcome {
                SupOutcome::Completed => "completed",
                SupOutcome::Recovered { .. } => "recovered",
                SupOutcome::Degraded { .. } => "degraded",
                SupOutcome::Abandoned { .. } => "abandoned",
            };
            inner.finish(&key, classification, session.outcome.to_string());
        });
        self.workers.lock().expect("workers poisoned").push(handle);
    }
}

/// Wraps [`WorkloadSession`] with daemon concerns: a client-visible
/// cancel flag checked at every attempt boundary, and a one-shot
/// adoption checkpoint injected into the first attempt so a re-adopted
/// session *resumes* instead of restarting.
struct DaemonDriver<'a> {
    inner: WorkloadSession<'a>,
    cancel: Arc<AtomicBool>,
    adopt_ckpt: Mutex<Option<String>>,
}

impl SessionDriver for DaemonDriver<'_> {
    fn label(&self) -> &str {
        self.inner.label()
    }

    fn attempt(&self, mode: Mode, resume_from: Option<&str>, hooks: &Hooks) -> Attempt {
        if self.cancel.load(Ordering::SeqCst) {
            return Attempt::Failed {
                error: "cancelled by client".into(),
            };
        }
        let adopted = self.adopt_ckpt.lock().expect("adopt poisoned").take();
        let resume = match resume_from {
            Some(text) => Some(text.to_string()),
            None => adopted,
        };
        self.inner.attempt(mode, resume.as_deref(), hooks)
    }

    fn load_checkpoint(&self) -> Option<String> {
        self.inner.load_checkpoint()
    }

    fn prognose(&self) -> Result<String, String> {
        if self.cancel.load(Ordering::SeqCst) {
            return Err("cancelled by client".into());
        }
        self.inner.prognose()
    }
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

/// A running `histpcd` instance: lease recovery already done, socket
/// bound, accept loop live on a background thread.
pub struct Daemon {
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Starts a daemon: advances the lease epoch, breaks epoch-stale
    /// locks, opens the store, classifies every leftover lease
    /// (re-adopting from checkpoints), then binds the socket and
    /// starts accepting.
    pub fn start(cfg: DaemonConfig) -> Result<Daemon, DaemonError> {
        // Refuse to double-serve: a connectable socket means a live
        // daemon; a dead one leaves a stale file we can reclaim.
        if cfg.socket.exists() {
            if UnixStream::connect(&cfg.socket).is_ok() {
                return Err(DaemonError::AlreadyRunning(cfg.socket.clone()));
            }
            std::fs::remove_file(&cfg.socket)?;
        }

        // New incarnation: persist the next lease epoch and declare it
        // to the lock layer *before* opening the store, so recovery can
        // break a dead predecessor's lock even if its pid was reused.
        let epoch = lease::next_epoch(&cfg.store_root)?;
        lock::set_lease_epoch(epoch);

        let session =
            Session::with_store(&cfg.store_root).map_err(|e| DaemonError::Store(e.to_string()))?;

        let inner = Arc::new(Inner {
            session,
            epoch,
            adoption: Mutex::new(AdoptionReport::default()),
            registry: Mutex::new(HashMap::new()),
            bell: Condvar::new(),
            serving: Mutex::new(Serving::Accepting),
            workers: Mutex::new(Vec::new()),
            cfg: cfg.clone(),
        });

        // Lease recovery happens BEFORE the listener exists: no new
        // work can race the adoption scan.
        let adoption = Self::adopt_leases(&inner)?;
        *inner.adoption.lock().expect("adoption poisoned") = adoption;

        let listener = UnixListener::bind(&cfg.socket)?;
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || accept_loop(&accept_inner, &listener));
        Ok(Daemon {
            inner,
            accept_thread: Some(accept_thread),
        })
    }

    /// Scans leftover leases and classifies each (see module docs).
    /// Re-adopted sessions are spawned immediately; their registry
    /// entries predate the first client connection.
    fn adopt_leases(inner: &Arc<Inner>) -> Result<AdoptionReport, DaemonError> {
        let root = &inner.cfg.store_root;
        let mut report = AdoptionReport::default();
        for (file, parsed) in lease::read_leases(root)? {
            let lease = match parsed {
                Ok(l) => l,
                Err(why) => {
                    // A damaged lease names nothing re-adoptable;
                    // remove it so it cannot shadow future sessions.
                    let _ = std::fs::remove_file(root.join(lease::LEASE_DIR).join(&file));
                    report.damaged.push(format!("{file}: {why}"));
                    continue;
                }
            };
            let key = Inner::key(&lease.tenant, &lease.label);
            let store = inner.session.store().expect("daemon session has a store");
            let spec = SessionSpec::from_spec_line(&lease.spec);
            let record_exists = store.load(&lease.app, &lease.label).is_ok();
            let checkpoint = store.load_artifact(&lease.app, &lease.label, "ckpt").ok();
            let mut registry = inner.registry.lock().expect("registry poisoned");
            match (record_exists, checkpoint, spec) {
                // Crash landed after the record was saved: done.
                (true, _, spec) => {
                    let _ = lease::remove_lease(root, &lease.tenant, &lease.label);
                    registry.insert(
                        key.clone(),
                        SessionEntry {
                            tenant: lease.tenant.clone(),
                            spec: spec.unwrap_or_else(|_| placeholder_spec(&lease)),
                            store_app: lease.app.clone(),
                            state: SessionState::Done {
                                classification: "completed".into(),
                                detail: "completed before daemon crash".into(),
                            },
                            cancel: Arc::new(AtomicBool::new(false)),
                            budget: 0,
                            adopted: true,
                        },
                    );
                    report.completed.push(key);
                }
                // Checkpoint + usable spec: re-adopt under supervision.
                (false, Some(ckpt), Ok(spec)) => {
                    let budget = spec
                        .budget
                        .unwrap_or(inner.cfg.tenant_sample_budget / inner.cfg.tenant_slots as u64);
                    let cancel = Arc::new(AtomicBool::new(false));
                    // Re-write the lease under OUR epoch: if we crash
                    // too, the next incarnation re-adopts again.
                    let _ = lease::write_lease(
                        root,
                        &Lease {
                            epoch: inner.epoch,
                            ..lease.clone()
                        },
                    );
                    registry.insert(
                        key.clone(),
                        SessionEntry {
                            tenant: lease.tenant.clone(),
                            spec: spec.clone(),
                            store_app: lease.app.clone(),
                            state: SessionState::Running,
                            cancel: Arc::clone(&cancel),
                            budget,
                            adopted: true,
                        },
                    );
                    drop(registry);
                    inner.spawn_session(lease.tenant.clone(), spec, cancel, budget, Some(ckpt));
                    report.adopted.push(key);
                }
                // No checkpoint (or an unusable spec): nothing to
                // resume — classified abandoned, lease released.
                (false, ckpt, spec) => {
                    let _ = lease::remove_lease(root, &lease.tenant, &lease.label);
                    let why = match (&ckpt, &spec) {
                        (None, _) => "no checkpoint to re-adopt".to_string(),
                        (_, Err(e)) => format!("unusable lease spec: {e}"),
                        _ => unreachable!("adoptable leases are handled above"),
                    };
                    registry.insert(
                        key.clone(),
                        SessionEntry {
                            tenant: lease.tenant.clone(),
                            spec: spec.unwrap_or_else(|_| placeholder_spec(&lease)),
                            store_app: lease.app.clone(),
                            state: SessionState::Done {
                                classification: "abandoned".into(),
                                detail: format!("abandoned: {why}"),
                            },
                            cancel: Arc::new(AtomicBool::new(false)),
                            budget: 0,
                            adopted: true,
                        },
                    );
                    report.abandoned.push(key);
                }
            }
        }
        Ok(report)
    }

    /// The daemon's lease epoch for this incarnation.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// What startup lease recovery found and did.
    pub fn adoption(&self) -> AdoptionReport {
        self.inner
            .adoption
            .lock()
            .expect("adoption poisoned")
            .clone()
    }

    /// The socket path this daemon serves on.
    pub fn socket(&self) -> &std::path::Path {
        &self.inner.cfg.socket
    }

    /// Blocks until a `shutdown` request stops the daemon, then joins
    /// every session thread (sessions run to their classified end).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let workers = std::mem::take(&mut *self.inner.workers.lock().expect("workers poisoned"));
        for w in workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(&self.inner.cfg.socket);
    }
}

/// A spec for registry entries recovered from leases whose own spec
/// line was unusable; carries just enough to answer `status`.
fn placeholder_spec(lease: &Lease) -> SessionSpec {
    SessionSpec {
        app: lease.app.clone(),
        label: lease.label.clone(),
        seed: None,
        window_ms: 0,
        sample_ms: 0,
        max_time_ms: 0,
        faults: None,
        budget: None,
        harvest_from: None,
        audit_budget: None,
    }
}

// ---------------------------------------------------------------------------
// Accept + connection handling
// ---------------------------------------------------------------------------

fn accept_loop(inner: &Arc<Inner>, listener: &UnixListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if *inner.serving.lock().expect("serving poisoned") == Serving::ShuttingDown {
                    // The self-poke (or a late client): stop accepting.
                    return;
                }
                let conn_inner = Arc::clone(inner);
                std::thread::spawn(move || {
                    let _ = handle_conn(&conn_inner, stream);
                });
            }
            Err(_) => return,
        }
    }
}

/// Reads one line with the idle-reap timeout; distinguishes timeout
/// (reap) from EOF and hard errors.
fn read_request_line(reader: &mut BufReader<UnixStream>) -> io::Result<Option<String>> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Ok(None),
        Ok(_) => Ok(Some(line)),
        Err(e) => Err(e),
    }
}

fn write_response(stream: &mut UnixStream, resp: &Response) -> io::Result<()> {
    let mut text = resp.header_line();
    text.push('\n');
    for line in resp.body() {
        text.push_str(line);
        text.push('\n');
    }
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

fn handle_conn(inner: &Arc<Inner>, stream: UnixStream) -> io::Result<()> {
    stream.set_read_timeout(Some(inner.cfg.idle_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    // Handshake: `histpcd/v1 hello tenant=T`.
    let hello = match read_request_line(&mut reader) {
        Ok(Some(line)) => line,
        _ => return Ok(()), // reaped, torn, or gone before hello
    };
    // Handshake responses are protocol-prefixed so a client can tell
    // a `histpcd/v1` server from anything else squatting on the socket.
    let tenant = match parse_hello(&hello) {
        Ok(t) => t,
        Err(msg) => {
            let resp = Response::err("bad-request", msg);
            writer.write_all(format!("{PROTOCOL} {}\n", resp.header_line()).as_bytes())?;
            return writer.flush();
        }
    };
    let welcome = Response::ok(vec![("epoch", inner.epoch.to_string())]);
    writer.write_all(format!("{PROTOCOL} {}\n", welcome.header_line()).as_bytes())?;
    writer.flush()?;

    loop {
        let line = match read_request_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle reap: the client had its chance.
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let req = match Request::parse(&line) {
            Ok(r) => r,
            Err(msg) => {
                write_response(&mut writer, &Response::err("bad-request", msg))?;
                continue;
            }
        };
        let shutdown = req.verb == "shutdown";
        let resp = dispatch(inner, &tenant, &req);
        write_response(&mut writer, &resp)?;
        if shutdown && matches!(resp, Response::Ok { .. }) {
            initiate_shutdown(inner);
            return Ok(());
        }
    }
}

/// The handshake line must be `histpcd/v1 hello tenant=T`.
fn parse_hello(line: &str) -> Result<String, String> {
    let rest = line
        .trim_end()
        .strip_prefix(PROTOCOL)
        .ok_or_else(|| format!("expected `{PROTOCOL} hello ...`"))?;
    let req = Request::parse(rest)?;
    if req.verb != "hello" {
        return Err(format!("expected hello, got {:?}", req.verb));
    }
    let tenant = req.get("tenant").unwrap_or_default();
    if tenant.is_empty() || tenant.contains('/') {
        return Err(format!("bad tenant {tenant:?}"));
    }
    Ok(tenant.to_string())
}

fn initiate_shutdown(inner: &Arc<Inner>) {
    *inner.serving.lock().expect("serving poisoned") = Serving::ShuttingDown;
    // Self-poke so the blocking accept() wakes and observes the state.
    let _ = UnixStream::connect(&inner.cfg.socket);
}

fn dispatch(inner: &Arc<Inner>, tenant: &str, req: &Request) -> Response {
    match req.verb.as_str() {
        "start" => verb_start(inner, tenant, req),
        "attach" => verb_attach(inner, tenant, req),
        "status" => verb_status(inner, tenant),
        "report" => verb_report(inner, tenant, req),
        "cancel" => verb_cancel(inner, tenant, req),
        "health" => verb_health(inner),
        "drain" => verb_drain(inner),
        "shutdown" => {
            // Flip to draining now; the caller completes the shutdown
            // after the response is on the wire.
            let mut serving = inner.serving.lock().expect("serving poisoned");
            if *serving == Serving::Accepting {
                *serving = Serving::Draining;
            }
            Response::ok(vec![("state", "shutting-down".to_string())])
        }
        other => Response::err("bad-request", format!("unknown verb {other:?}")),
    }
}

fn verb_start(inner: &Arc<Inner>, tenant: &str, req: &Request) -> Response {
    if *inner.serving.lock().expect("serving poisoned") != Serving::Accepting {
        return Response::err("draining", "daemon is draining; no new sessions");
    }
    let spec = match SessionSpec::from_request(req) {
        Ok(s) => s,
        Err(msg) => return Response::err("bad-request", msg),
    };
    // Validate the app and resolve the name the store will key this
    // session under — leases and report lookups must use it, not the
    // catalogue spec string.
    let store_app = match histpc::apps::build_workload(&spec.app, spec.seed) {
        Ok(wl) => wl.app_spec().name,
        Err(_) => {
            return Response::err("bad-request", format!("unknown application {:?}", spec.app))
        }
    };
    let key = Inner::key(tenant, &spec.label);
    let default_slice = inner.cfg.tenant_sample_budget / inner.cfg.tenant_slots as u64;
    let budget = spec.budget.unwrap_or(default_slice);

    let mut registry = inner.registry.lock().expect("registry poisoned");
    // Idempotent start: a retry after a lost response re-finds the
    // session instead of double-running it.
    if let Some(entry) = registry.get(&key) {
        let state = match &entry.state {
            SessionState::Running => "running".to_string(),
            SessionState::Done { classification, .. } => classification.clone(),
        };
        return Response::ok(vec![
            ("id", key),
            ("state", state),
            ("accepted", "0".to_string()),
        ]);
    }
    // Bulkhead: this tenant's slots and budget only.
    let mine: Vec<&SessionEntry> = registry
        .values()
        .filter(|e| e.tenant == tenant && e.state == SessionState::Running)
        .collect();
    if mine.len() >= inner.cfg.tenant_slots {
        return Response::err_retry(
            "busy",
            format!(
                "tenant {tenant} has {} of {} session slots in flight",
                mine.len(),
                inner.cfg.tenant_slots
            ),
            BUSY_RETRY_MS,
        );
    }
    let committed: u64 = mine.iter().map(|e| e.budget).sum();
    if committed + budget > inner.cfg.tenant_sample_budget {
        return Response::err_retry(
            "quota",
            format!(
                "tenant {tenant} sample budget exhausted ({committed}+{budget} of {})",
                inner.cfg.tenant_sample_budget
            ),
            QUOTA_RETRY_MS,
        );
    }

    // Crash-safe intent first: lease before registry, registry before
    // thread. A crash between lease and spawn re-adopts or abandons on
    // restart — never loses the session silently.
    let the_lease = Lease {
        tenant: tenant.to_string(),
        app: store_app.clone(),
        label: spec.label.clone(),
        epoch: inner.epoch,
        state: "active".into(),
        spec: spec.to_spec_line(),
    };
    if let Err(e) = lease::write_lease(&inner.cfg.store_root, &the_lease) {
        return Response::err("internal", format!("cannot write lease: {e}"));
    }
    let cancel = Arc::new(AtomicBool::new(false));
    registry.insert(
        key.clone(),
        SessionEntry {
            tenant: tenant.to_string(),
            spec: spec.clone(),
            store_app,
            state: SessionState::Running,
            cancel: Arc::clone(&cancel),
            budget,
            adopted: false,
        },
    );
    drop(registry);
    inner.spawn_session(tenant.to_string(), spec, cancel, budget, None);
    Response::ok(vec![
        ("id", key),
        ("state", "running".to_string()),
        ("accepted", "1".to_string()),
    ])
}

fn verb_attach(inner: &Arc<Inner>, tenant: &str, req: &Request) -> Response {
    let Some(label) = req.get("label") else {
        return Response::err("bad-request", "attach needs label=");
    };
    let key = Inner::key(tenant, label);
    let wait_ms: u64 = req.get("wait-ms").and_then(|v| v.parse().ok()).unwrap_or(0);
    let deadline_ms: Option<u64> = req.get("deadline-ms").and_then(|v| v.parse().ok());
    let wait = Duration::from_millis(match deadline_ms {
        Some(d) => wait_ms.min(d),
        None => wait_ms,
    });

    let start = Instant::now();
    let mut registry = inner.registry.lock().expect("registry poisoned");
    loop {
        let Some(entry) = registry.get(&key) else {
            return Response::err("unknown", format!("no session {key}"));
        };
        match &entry.state {
            SessionState::Done {
                classification,
                detail,
            } => {
                return Response::ok(vec![
                    ("id", key),
                    ("state", classification.clone()),
                    ("detail", detail.clone()),
                    ("adopted", (entry.adopted as u8).to_string()),
                ]);
            }
            SessionState::Running => {
                let elapsed = start.elapsed();
                if elapsed >= wait {
                    // A request-level deadline that elapsed is an
                    // error; a plain bounded wait just reports state.
                    if deadline_ms.is_some_and(|d| elapsed >= Duration::from_millis(d)) {
                        return Response::err("deadline", format!("session {key} still running"));
                    }
                    return Response::ok(vec![("id", key), ("state", "running".to_string())]);
                }
                let (next, _timeout) = inner
                    .bell
                    .wait_timeout(registry, wait - elapsed)
                    .expect("registry poisoned");
                registry = next;
            }
        }
    }
}

fn verb_status(inner: &Arc<Inner>, tenant: &str) -> Response {
    let registry = inner.registry.lock().expect("registry poisoned");
    let mut lines: Vec<String> = Vec::new();
    let mut active = 0usize;
    let mut done = 0usize;
    for entry in registry.values().filter(|e| e.tenant == tenant) {
        let state = match &entry.state {
            SessionState::Running => {
                active += 1;
                "running".to_string()
            }
            SessionState::Done { classification, .. } => {
                done += 1;
                classification.clone()
            }
        };
        lines.push(format!(
            "{}/{} {state} budget={}",
            entry.spec.app, entry.spec.label, entry.budget
        ));
    }
    lines.sort();
    Response::ok_with_body(
        vec![("active", active.to_string()), ("done", done.to_string())],
        lines,
    )
}

fn verb_report(inner: &Arc<Inner>, tenant: &str, req: &Request) -> Response {
    let Some(label) = req.get("label") else {
        return Response::err("bad-request", "report needs label=");
    };
    let key = Inner::key(tenant, label);
    let registry = inner.registry.lock().expect("registry poisoned");
    let Some(entry) = registry.get(&key) else {
        return Response::err("unknown", format!("no session {key}"));
    };
    let (classification, detail) = match &entry.state {
        SessionState::Running => {
            return Response::err("busy", format!("session {key} still running"))
        }
        SessionState::Done {
            classification,
            detail,
        } => (classification.clone(), detail.clone()),
    };
    let app = entry.store_app.clone();
    let adopted = entry.adopted;
    drop(registry);
    let store = inner.session.store().expect("daemon session has a store");
    let body: Vec<String> = match store.load(&app, label) {
        Ok(record) => histpc::history::format::write_record(&record)
            .lines()
            .map(str::to_string)
            .collect(),
        // Degraded-to-prognosis or abandoned sessions have no record;
        // the prognosis artifact stands in when it exists.
        Err(_) => store
            .load_artifact(&app, label, "prognosis")
            .map(|t| t.lines().map(str::to_string).collect())
            .unwrap_or_default(),
    };
    Response::ok_with_body(
        vec![
            ("id", key),
            ("state", classification),
            ("detail", detail),
            ("adopted", (adopted as u8).to_string()),
        ],
        body,
    )
}

fn verb_cancel(inner: &Arc<Inner>, tenant: &str, req: &Request) -> Response {
    let Some(label) = req.get("label") else {
        return Response::err("bad-request", "cancel needs label=");
    };
    let key = Inner::key(tenant, label);
    let registry = inner.registry.lock().expect("registry poisoned");
    let Some(entry) = registry.get(&key) else {
        return Response::err("unknown", format!("no session {key}"));
    };
    match &entry.state {
        SessionState::Running => {
            // Cooperative: honoured at the next supervision attempt
            // boundary; the session still ends *classified*.
            entry.cancel.store(true, Ordering::SeqCst);
            Response::ok(vec![("id", key), ("state", "cancelling".to_string())])
        }
        SessionState::Done { classification, .. } => Response::ok(vec![
            ("id", key),
            ("state", classification.clone()),
            ("cancelled", "0".to_string()),
        ]),
    }
}

fn verb_health(inner: &Arc<Inner>) -> Response {
    let registry = inner.registry.lock().expect("registry poisoned");
    let active = inner.active_count(&registry);
    let done = registry.len() - active;
    let serving = match *inner.serving.lock().expect("serving poisoned") {
        Serving::Accepting => "serving",
        Serving::Draining => "draining",
        Serving::ShuttingDown => "shutting-down",
    };
    Response::ok(vec![
        ("state", serving.to_string()),
        ("epoch", inner.epoch.to_string()),
        ("active", active.to_string()),
        ("done", done.to_string()),
        (
            "adopted",
            inner
                .adoption
                .lock()
                .expect("adoption poisoned")
                .adopted
                .len()
                .to_string(),
        ),
    ])
}

fn verb_drain(inner: &Arc<Inner>) -> Response {
    let mut serving = inner.serving.lock().expect("serving poisoned");
    if *serving == Serving::Accepting {
        *serving = Serving::Draining;
    }
    drop(serving);
    let registry = inner.registry.lock().expect("registry poisoned");
    Response::ok(vec![
        ("state", "draining".to_string()),
        ("active", inner.active_count(&registry).to_string()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_the_lease_line() {
        let spec = SessionSpec {
            app: "poisson-b".into(),
            label: "run 1".into(),
            seed: Some(7),
            window_ms: 800,
            sample_ms: 100,
            max_time_ms: 120_000,
            faults: Some("histpc-faults v1\nseed 3\ndrop 0.2\n".into()),
            budget: Some(512),
            harvest_from: Some("run 0".into()),
            audit_budget: Some(16),
        };
        let line = spec.to_spec_line();
        assert!(!line.contains('\n'));
        assert_eq!(SessionSpec::from_spec_line(&line).unwrap(), spec);
    }

    #[test]
    fn spec_rejects_bad_harvest_from() {
        let req = Request::new("start")
            .arg("app", "tester")
            .arg("label", "ok")
            .arg("harvest-from", "a/b");
        assert!(SessionSpec::from_request(&req).is_err());
    }

    #[test]
    fn spec_rejects_bad_labels_and_plans() {
        let req = Request::new("start")
            .arg("app", "tester")
            .arg("label", "a/b");
        assert!(SessionSpec::from_request(&req).is_err());
        let req = Request::new("start")
            .arg("app", "tester")
            .arg("label", "ok")
            .arg("faults", "not a plan");
        assert!(SessionSpec::from_request(&req).is_err());
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("histpcd-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fake_running(tenant: &str, label: &str, budget: u64) -> (String, SessionEntry) {
        (
            Inner::key(tenant, label),
            SessionEntry {
                tenant: tenant.into(),
                spec: SessionSpec {
                    app: "tester".into(),
                    label: label.into(),
                    seed: None,
                    window_ms: 800,
                    sample_ms: 100,
                    max_time_ms: 120_000,
                    faults: None,
                    budget: Some(budget),
                    harvest_from: None,
                    audit_budget: None,
                },
                store_app: "Tester".into(),
                state: SessionState::Running,
                cancel: Arc::new(AtomicBool::new(false)),
                budget,
                adopted: false,
            },
        )
    }

    /// Bulkhead semantics at the verb layer: a tenant's full slot pool
    /// returns `busy` (with a retry hint) to that tenant only; budget
    /// over-ask returns `quota`; draining refuses new sessions —
    /// exercised against a fabricated registry so no timing races.
    #[test]
    fn bulkhead_busy_quota_and_draining() {
        let root = scratch("bulkhead");
        let cfg = {
            let mut c = DaemonConfig::new(root.join("store"), root.join("d.sock"));
            c.tenant_slots = 1;
            c.tenant_sample_budget = 1000;
            c
        };
        let daemon = Daemon::start(cfg).unwrap();
        let inner = &daemon.inner;
        let (key, entry) = fake_running("t1", "busy", 600);
        inner.registry.lock().unwrap().insert(key, entry);

        let start = |label: &str| {
            Request::new("start")
                .arg("app", "tester")
                .arg("label", label)
        };
        // t1's only slot is taken: busy, with a retry hint.
        match verb_start(inner, "t1", &start("more")) {
            Response::Err {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, "busy");
                assert_eq!(retry_after_ms, Some(BUSY_RETRY_MS));
            }
            other => panic!("expected busy, got {other:?}"),
        }
        // The bulkhead is per-tenant: t2 sails through.
        match verb_start(inner, "t2", &start("mine")) {
            Response::Ok { params, .. } => {
                assert!(params.contains(&("accepted".to_string(), "1".to_string())));
            }
            other => panic!("expected accept, got {other:?}"),
        }
        // Budget over-ask (fresh tenant, free slot): quota.
        match verb_start(inner, "t3", &start("big").arg("budget", 2000u64)) {
            Response::Err {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, "quota");
                assert_eq!(retry_after_ms, Some(QUOTA_RETRY_MS));
            }
            other => panic!("expected quota, got {other:?}"),
        }
        // Idempotent start: retrying t1's held label is not an error.
        match verb_start(inner, "t1", &start("busy")) {
            Response::Ok { params, .. } => {
                assert!(params.contains(&("accepted".to_string(), "0".to_string())));
                assert!(params.contains(&("state".to_string(), "running".to_string())));
            }
            other => panic!("expected idempotent ok, got {other:?}"),
        }
        // Draining refuses new sessions outright.
        *inner.serving.lock().unwrap() = Serving::Draining;
        match verb_start(inner, "t4", &start("late")) {
            Response::Err { code, .. } => assert_eq!(code, "draining"),
            other => panic!("expected draining, got {other:?}"),
        }
        // Unblock join(): drop the fabricated entry and shut down.
        inner.registry.lock().unwrap().remove("t1/busy");
        initiate_shutdown(inner);
        daemon.join();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn overload_plans_map_quota_onto_admission() {
        let mk = |faults: Option<&str>| SessionSpec {
            app: "tester".into(),
            label: "l".into(),
            seed: None,
            window_ms: 800,
            sample_ms: 100,
            max_time_ms: 120_000,
            faults: faults.map(str::to_string),
            budget: None,
            harvest_from: None,
            audit_budget: None,
        };
        // Zero-fault: admission stays untouched (bit-identity).
        let cfg = mk(None).search_config(2048, 2).unwrap();
        assert!(!cfg.collector.admission.enabled);
        // Overload fault: the tenant slice lands in the admission knobs.
        let flood = "histpc-faults v1\nseed 1\nsample-flood 3.0\n";
        let cfg = mk(Some(flood)).search_config(2048, 2).unwrap();
        assert!(cfg.collector.admission.enabled);
        assert_eq!(cfg.collector.admission.sample_budget, 2048);
        // Wire-only plans are NOT sim faults: no admission, no faults.
        let wire = "histpc-faults v1\nseed 1\nwire-conn-drop 0.5\n";
        let cfg = mk(Some(wire)).search_config(2048, 2).unwrap();
        assert!(!cfg.collector.admission.enabled);
        assert!(cfg.faults.is_disabled());
    }
}
