//! `histpcd` — the diagnosis daemon executable.
//!
//! ```text
//! histpcd --store DIR --socket PATH [--tenant-slots N] [--tenant-budget N]
//!         [--idle-ms T] [--retries N] [--stall-ms T]
//! ```
//!
//! Runs lease recovery, binds the socket, and serves until a client
//! sends `shutdown`. Exit code 0 on a clean shutdown, 1 on startup
//! failure, 2 on usage errors.

use std::process::ExitCode;
use std::time::Duration;

use histpc_daemon::{Daemon, DaemonConfig};

fn usage() -> ! {
    eprintln!(
        "usage: histpcd --store DIR --socket PATH [--tenant-slots N] \
         [--tenant-budget N] [--idle-ms T] [--retries N] [--stall-ms T]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut tenant_slots: usize = 2;
    let mut tenant_budget: u64 = 4096;
    let mut idle_ms: u64 = 30_000;
    let mut retries: u32 = 3;
    let mut stall_ms: u64 = 30_000;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for {flag}");
            usage();
        };
        match flag {
            "--store" => store = Some(value.clone()),
            "--socket" => socket = Some(value.clone()),
            "--tenant-slots" => match value.parse() {
                Ok(v) if v >= 1 => tenant_slots = v,
                _ => usage(),
            },
            "--tenant-budget" => match value.parse() {
                Ok(v) => tenant_budget = v,
                _ => usage(),
            },
            "--idle-ms" => match value.parse() {
                Ok(v) => idle_ms = v,
                _ => usage(),
            },
            "--retries" => match value.parse() {
                Ok(v) => retries = v,
                _ => usage(),
            },
            "--stall-ms" => match value.parse() {
                Ok(v) => stall_ms = v,
                _ => usage(),
            },
            _ => {
                eprintln!("unknown flag {flag:?}");
                usage();
            }
        }
        i += 2;
    }
    let (Some(store), Some(socket)) = (store, socket) else {
        usage();
    };

    let mut cfg = DaemonConfig::new(store, socket);
    cfg.tenant_slots = tenant_slots;
    cfg.tenant_sample_budget = tenant_budget;
    cfg.idle_timeout = Duration::from_millis(idle_ms);
    cfg.retry_budget = retries;
    cfg.stall = if stall_ms == 0 {
        None
    } else {
        Some(Duration::from_millis(stall_ms))
    };

    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("histpcd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let adoption = daemon.adoption();
    println!(
        "histpcd: serving on {} (epoch {}; adoption: {} re-adopted, {} completed, \
         {} abandoned, {} damaged)",
        daemon.socket().display(),
        daemon.epoch(),
        adoption.adopted.len(),
        adoption.completed.len(),
        adoption.abandoned.len(),
        adoption.damaged.len(),
    );
    daemon.join();
    println!("histpcd: shut down");
    ExitCode::SUCCESS
}
