//! End-to-end daemon tests: a real `Daemon` on a real Unix socket,
//! driven through the retrying [`histpc::remote::Client`].

use std::path::PathBuf;

use histpc::history::lease::{self, Lease};
use histpc::prelude::*;
use histpc::remote::{Client, RemoteError, Request, Response};
use histpc_daemon::{Daemon, DaemonConfig, SessionSpec};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("histpcd-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The config every test session runs with, daemon-side defaults.
fn local_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(120),
        stall: Some(SimDuration::from_secs(2)),
        ..SearchConfig::default()
    }
}

fn start_req(app: &str, label: &str) -> Request {
    Request::new("start").arg("app", app).arg("label", label)
}

fn attach(client: &mut Client, label: &str) -> Response {
    client
        .expect_ok(
            &Request::new("attach")
                .arg("label", label)
                .arg("wait-ms", 60_000u64),
        )
        .expect("attach")
}

#[test]
fn start_attach_report_is_bit_identical_to_in_process() {
    let root = scratch("bitident");
    let cfg = DaemonConfig::new(root.join("store"), root.join("d.sock"));
    let daemon = Daemon::start(cfg).unwrap();

    let mut client = Client::new(root.join("d.sock"), "team-a");
    let resp = client.expect_ok(&start_req("tester", "run1")).unwrap();
    assert_eq!(resp.get("accepted"), Some("1"));
    assert_eq!(client.epoch, Some(daemon.epoch()));

    let done = attach(&mut client, "run1");
    assert_eq!(done.get("state"), Some("completed"), "{done:?}");

    let report = client
        .expect_ok(&Request::new("report").arg("label", "run1"))
        .unwrap();
    assert_eq!(report.get("state"), Some("completed"));
    let remote_text = format!("{}\n", report.body().join("\n"));

    // The same workload diagnosed in-process on a scratch store must
    // produce the byte-identical record.
    let local_root = scratch("bitident-local");
    let session = Session::with_store(&local_root).unwrap();
    let workload = histpc::apps::build_workload("tester", None).unwrap();
    let diag = session
        .diagnose(workload.as_ref(), &local_config(), "run1")
        .unwrap();
    assert_eq!(
        remote_text,
        histpc::history::format::write_record(&diag.record),
        "remote record must be bit-identical to the in-process run"
    );

    // No lease survives a classified session.
    assert!(lease::read_leases(&root.join("store")).unwrap().is_empty());

    client
        .expect_ok(&Request::new("shutdown"))
        .expect("shutdown");
    daemon.join();
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&local_root);
}

#[test]
fn harvest_from_steers_a_second_session_with_tenant_scoped_trust() {
    let root = scratch("harvestfrom");
    let cfg = DaemonConfig::new(root.join("store"), root.join("d.sock"));
    let daemon = Daemon::start(cfg).unwrap();
    let mut client = Client::new(root.join("d.sock"), "team-a");

    client.expect_ok(&start_req("tester", "base")).unwrap();
    let done = attach(&mut client, "base");
    assert_eq!(done.get("state"), Some("completed"), "{done:?}");

    // A directed re-run harvesting from the first, with shadow audits
    // on. The daemon scopes the harvest to this tenant: its trust
    // ledger sources are keyed `team-a/Tester/base`.
    let resp = client
        .expect_ok(
            &start_req("tester", "directed")
                .arg("harvest-from", "base")
                .arg("audit-budget", 8u64),
        )
        .unwrap();
    assert_eq!(resp.get("accepted"), Some("1"));
    let done = attach(&mut client, "directed");
    assert_eq!(done.get("state"), Some("completed"), "{done:?}");
    let report = client
        .expect_ok(&Request::new("report").arg("label", "directed"))
        .unwrap();
    assert_eq!(report.get("state"), Some("completed"));

    // The audit loop ran end to end: probes were assigned against the
    // harvested prunes, their outcomes were absorbed into the trust
    // ledger, and every source key is tenant-scoped. (Outcomes may
    // include failures — "safe" prunes generalize over subtrees the
    // base run never fully tested, and a probe concluding True there
    // is exactly the contradiction the audit exists to catch.)
    let ledger = histpc::history::trust::TrustLedger::load(&root.join("store"));
    assert!(!ledger.is_empty(), "budget-8 audits left no ledger entry");
    for (source, _) in ledger.sources() {
        assert!(
            source.starts_with("team-a/") && source.ends_with("/base"),
            "trust source {source:?} not tenant-scoped to team-a/<app>/base"
        );
    }

    client.expect_ok(&Request::new("shutdown")).unwrap();
    daemon.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unknown_sessions_apps_and_verbs_err_cleanly() {
    let root = scratch("badreq");
    let cfg = DaemonConfig::new(root.join("store"), root.join("d.sock"));
    let daemon = Daemon::start(cfg).unwrap();
    let mut client = Client::new(root.join("d.sock"), "t");

    let err = client
        .expect_ok(&Request::new("attach").arg("label", "ghost"))
        .unwrap_err();
    assert!(
        matches!(&err, RemoteError::Daemon { code, .. } if code == "unknown"),
        "{err}"
    );

    let err = client.expect_ok(&start_req("not-an-app", "x")).unwrap_err();
    assert!(
        matches!(&err, RemoteError::Daemon { code, .. } if code == "bad-request"),
        "{err}"
    );

    let err = client.expect_ok(&Request::new("frobnicate")).unwrap_err();
    assert!(
        matches!(&err, RemoteError::Daemon { code, .. } if code == "bad-request"),
        "{err}"
    );

    client.expect_ok(&Request::new("shutdown")).unwrap();
    daemon.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crashed_daemon_leases_are_readopted_or_abandoned() {
    let root = scratch("readopt");
    let store_root = root.join("store");

    // Simulate a crashed daemon: a session that halted at a checkpoint
    // (tool crash), its lease still on disk; plus a lease with no
    // checkpoint at all; plus a damaged lease file.
    let spec = SessionSpec {
        app: "tester".into(),
        label: "crashed".into(),
        seed: None,
        window_ms: 800,
        sample_ms: 100,
        max_time_ms: 120_000,
        faults: Some("histpc-faults v1\nseed 5\ncrash-tool 1000000\n".into()),
        budget: None,
        harvest_from: None,
        audit_budget: None,
    };
    // Leases name the app the way the *store* keys it (the resolved
    // AppSpec name), which need not equal the catalogue spec string.
    let store_app = histpc::apps::build_workload("tester", None)
        .unwrap()
        .app_spec()
        .name;
    {
        let session = Session::with_store(&store_root).unwrap();
        let workload = histpc::apps::build_workload("tester", None).unwrap();
        let mut config = local_config();
        config.faults = FaultPlan::parse(spec.faults.as_deref().unwrap()).unwrap();
        let run = session
            .diagnose_faulted(workload.as_ref(), &config, "crashed", None)
            .unwrap();
        assert!(run.halted.is_some(), "crash plan must halt the session");
        assert!(
            session
                .store()
                .unwrap()
                .load_artifact(&store_app, "crashed", "ckpt")
                .is_ok(),
            "halt must persist a checkpoint"
        );
    }
    lease::write_lease(
        &store_root,
        &Lease {
            tenant: "team-a".into(),
            app: store_app.clone(),
            label: "crashed".into(),
            epoch: 1,
            state: "active".into(),
            spec: spec.to_spec_line(),
        },
    )
    .unwrap();
    lease::write_lease(
        &store_root,
        &Lease {
            tenant: "team-b".into(),
            app: store_app,
            label: "hopeless".into(),
            epoch: 1,
            state: "active".into(),
            spec: String::new(),
        },
    )
    .unwrap();
    std::fs::write(
        store_root.join(lease::LEASE_DIR).join("torn.lease"),
        "histpc-frame v1 99 deadbeef\ntruncated",
    )
    .unwrap();

    // Restart: the next incarnation classifies everything before
    // accepting work.
    let daemon = Daemon::start(DaemonConfig::new(&store_root, root.join("d.sock"))).unwrap();
    let adoption = daemon.adoption();
    assert_eq!(adoption.adopted, vec!["team-a/crashed".to_string()]);
    assert_eq!(adoption.abandoned, vec!["team-b/hopeless".to_string()]);
    assert_eq!(adoption.damaged.len(), 1, "{adoption:?}");
    assert!(daemon.epoch() >= 2, "epoch advances past the dead daemon's");

    // The re-adopted session resumes from its checkpoint and ends
    // classified; its lease is released.
    let mut client = Client::new(root.join("d.sock"), "team-a");
    let done = attach(&mut client, "crashed");
    assert!(
        matches!(done.get("state"), Some("completed") | Some("recovered")),
        "{done:?}"
    );
    assert_eq!(done.get("adopted"), Some("1"));
    let report = client
        .expect_ok(&Request::new("report").arg("label", "crashed"))
        .unwrap();
    assert!(!report.body().is_empty(), "re-adopted run stored a record");

    // The abandoned tenant sees its classification too.
    let mut client_b = Client::new(root.join("d.sock"), "team-b");
    let gone = attach(&mut client_b, "hopeless");
    assert_eq!(gone.get("state"), Some("abandoned"), "{gone:?}");

    // All leases were consumed by recovery.
    assert!(lease::read_leases(&store_root).unwrap().is_empty());

    client.expect_ok(&Request::new("shutdown")).unwrap();
    daemon.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn drain_health_and_idempotent_start() {
    let root = scratch("drain");
    let cfg = DaemonConfig::new(root.join("store"), root.join("d.sock"));
    let daemon = Daemon::start(cfg).unwrap();
    let mut client = Client::new(root.join("d.sock"), "ops");

    let health = client.expect_ok(&Request::new("health")).unwrap();
    assert_eq!(health.get("state"), Some("serving"));
    assert_eq!(
        health.get("epoch"),
        Some(daemon.epoch().to_string().as_str())
    );

    // Run one session to completion, then retry its start: idempotent.
    client.expect_ok(&start_req("tester", "once")).unwrap();
    attach(&mut client, "once");
    let again = client.expect_ok(&start_req("tester", "once")).unwrap();
    assert_eq!(again.get("accepted"), Some("0"));
    assert_eq!(again.get("state"), Some("completed"));

    let status = client.expect_ok(&Request::new("status")).unwrap();
    assert_eq!(status.get("done"), Some("1"));
    assert!(
        status.body()[0].starts_with("tester/once completed"),
        "{status:?}"
    );

    let drained = client.expect_ok(&Request::new("drain")).unwrap();
    assert_eq!(drained.get("state"), Some("draining"));
    let err = client.expect_ok(&start_req("tester", "late")).unwrap_err();
    assert!(
        matches!(&err, RemoteError::Daemon { code, .. } if code == "draining"),
        "{err}"
    );
    let health = client.expect_ok(&Request::new("health")).unwrap();
    assert_eq!(health.get("state"), Some("draining"));

    client.expect_ok(&Request::new("shutdown")).unwrap();
    daemon.join();
    assert!(!root.join("d.sock").exists(), "socket removed on shutdown");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn faulty_wire_client_still_converges() {
    let root = scratch("wire");
    let cfg = DaemonConfig::new(root.join("store"), root.join("d.sock"));
    let daemon = Daemon::start(cfg).unwrap();

    // A client whose own transport tears requests and drops
    // connections: every exchange may need retries, yet the session
    // must still run exactly once and classify.
    let plan =
        FaultPlan::parse("histpc-faults v1\nseed 11\nwire-conn-drop 0.3\nwire-torn-request 0.2\n")
            .unwrap();
    let mut client = Client::new(root.join("d.sock"), "flaky")
        .with_injector(histpc::faults::WireInjector::new(plan));
    client.max_attempts = 32;

    let resp = client.expect_ok(&start_req("tester", "wired")).unwrap();
    assert!(matches!(resp.get("accepted"), Some("0") | Some("1")));
    let done = attach(&mut client, "wired");
    assert_eq!(done.get("state"), Some("completed"), "{done:?}");
    let status = client.expect_ok(&Request::new("status")).unwrap();
    assert_eq!(status.get("done"), Some("1"), "retries must not double-run");

    client.expect_ok(&Request::new("shutdown")).unwrap();
    daemon.join();
    let _ = std::fs::remove_dir_all(&root);
}
