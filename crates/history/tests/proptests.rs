//! Property-based tests for directive algebra, mapping, the record
//! format, and store crash consistency.

use histpc_consultant::{NodeOutcome, Outcome, PriorityDirective, PriorityLevel, SearchDirectives};
use histpc_history::{
    format, frame, intersect, union, ExecutionRecord, ExecutionStore, MappingSet,
};
use histpc_resources::{Focus, ResourceName};
use histpc_sim::SimTime;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh scratch directory per proptest case (cases run many times, so
/// names must not collide within one process).
static STORE_CASE: AtomicUsize = AtomicUsize::new(0);

fn store_scratch() -> std::path::PathBuf {
    let n = STORE_CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("histpc-proptest-store-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stored_record(pairs: usize) -> ExecutionRecord {
    ExecutionRecord {
        app_name: "app".into(),
        app_version: "V".into(),
        label: "r1".into(),
        resources: vec![ResourceName::parse("/Code/a.c/f").unwrap()],
        outcomes: vec![NodeOutcome {
            hypothesis: "CPUbound".into(),
            focus: Focus::whole_program(["Code"]),
            outcome: Outcome::True,
            first_true_at: Some(SimTime(5)),
            concluded_at: Some(SimTime(5)),
            last_value: 0.5,
            samples: 4,
        }],
        thresholds_used: vec![("CPUbound".into(), 0.2)],
        end_time: SimTime(100),
        pairs_tested: pairs,
        unreachable: vec![],
        saturated: vec![],
    }
}

fn segment() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.:-]{0,8}".prop_map(|s| s)
}

fn focus_strategy() -> impl Strategy<Value = Focus> {
    (prop::option::of(segment()), prop::option::of(segment())).prop_map(|(code, proc_)| {
        let mut f = Focus::whole_program(["Code", "Machine", "Process", "SyncObject"]);
        if let Some(c) = code {
            f = f.with_selection(ResourceName::new(["Code".to_string(), c]).unwrap());
        }
        if let Some(p) = proc_ {
            f = f.with_selection(ResourceName::new(["Process".to_string(), p]).unwrap());
        }
        f
    })
}

fn level() -> impl Strategy<Value = PriorityLevel> {
    prop_oneof![Just(PriorityLevel::High), Just(PriorityLevel::Low)]
}

fn hypothesis() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("CPUbound".to_string()),
        Just("ExcessiveSyncWaitingTime".to_string()),
    ]
}

fn directives() -> impl Strategy<Value = SearchDirectives> {
    prop::collection::vec((hypothesis(), focus_strategy(), level()), 0..12).prop_map(|ps| {
        let mut d = SearchDirectives::none();
        for (h, f, l) in ps {
            d.add_priority(PriorityDirective {
                hypothesis: h,
                focus: f,
                level: l,
            });
        }
        d
    })
}

proptest! {
    /// Directive files survive a text round trip exactly.
    #[test]
    fn directive_text_roundtrip(d in directives()) {
        let text = d.to_text();
        let parsed = SearchDirectives::parse(&text).unwrap();
        prop_assert_eq!(parsed.priorities, d.priorities);
    }

    /// A∩B only keeps pairs both agree on; every kept pair exists in A∪B
    /// at an equal-or-promoted level.
    #[test]
    fn intersection_subset_of_union(a in directives(), b in directives()) {
        let i = intersect(&a, &b);
        let u = union(&a, &b);
        prop_assert!(i.priorities.len() <= u.priorities.len());
        for p in &i.priorities {
            let la = a.priority_of(&p.hypothesis, &p.focus);
            let lb = b.priority_of(&p.hypothesis, &p.focus);
            prop_assert_eq!(la, lb);
            prop_assert_eq!(la, p.level);
            let lu = u.priority_of(&p.hypothesis, &p.focus);
            // High stays High; Low may be promoted by the other set.
            if p.level == PriorityLevel::High {
                prop_assert_eq!(lu, PriorityLevel::High);
            } else {
                prop_assert_ne!(lu, PriorityLevel::Medium);
            }
        }
    }

    /// Union is symmetric in the pairs it covers.
    #[test]
    fn union_is_symmetric_in_coverage(a in directives(), b in directives()) {
        let u1 = union(&a, &b);
        let u2 = union(&b, &a);
        let mut k1: Vec<String> = u1.priorities.iter()
            .map(|p| format!("{} {} {:?}", p.hypothesis, p.focus, p.level)).collect();
        let mut k2: Vec<String> = u2.priorities.iter()
            .map(|p| format!("{} {} {:?}", p.hypothesis, p.focus, p.level)).collect();
        k1.sort();
        k2.sort();
        prop_assert_eq!(k1, k2);
    }

    /// High in either input implies High in the union (the paper's rule).
    #[test]
    fn union_high_dominates(a in directives(), b in directives()) {
        let u = union(&a, &b);
        for p in a.priorities.iter().chain(&b.priorities) {
            if p.level == PriorityLevel::High {
                prop_assert_eq!(
                    u.priority_of(&p.hypothesis, &p.focus),
                    PriorityLevel::High
                );
            }
        }
    }

    /// Applying a mapping never panics and leaves non-matching names
    /// unchanged.
    #[test]
    fn mapping_application_is_total(
        names in prop::collection::vec(
            prop::collection::vec(segment(), 1..=3), 1..8),
        from in segment(),
        to in segment(),
    ) {
        let mut m = MappingSet::new();
        m.add(
            ResourceName::new(["Code".to_string(), from.clone()]).unwrap(),
            ResourceName::new(["Code".to_string(), to]).unwrap(),
        );
        for tail in names {
            let mut segs = vec!["Code".to_string()];
            segs.extend(tail);
            let name = ResourceName::new(segs).unwrap();
            let mapped = m.apply_to_name(&name);
            prop_assert_eq!(mapped.hierarchy(), "Code");
            if name.segments().get(1) != Some(&from) {
                prop_assert_eq!(mapped, name);
            }
        }
    }

    /// Mapping files round-trip through text.
    #[test]
    fn mapping_text_roundtrip(pairs in prop::collection::vec((segment(), segment()), 0..8)) {
        let mut m = MappingSet::new();
        for (a, b) in pairs {
            m.add(
                ResourceName::new(["Code".to_string(), a]).unwrap(),
                ResourceName::new(["Code".to_string(), b]).unwrap(),
            );
        }
        let parsed = MappingSet::parse(&m.to_text()).unwrap();
        prop_assert_eq!(parsed, m);
    }

    /// Execution records round-trip through the text format.
    #[test]
    fn record_format_roundtrip(
        outcomes in prop::collection::vec(
            (hypothesis(), focus_strategy(), 0u8..4, 0.0f64..1.0, prop::option::of(0u64..10_000_000)),
            0..10),
        end in 0u64..100_000_000,
        pairs in 0usize..1000,
    ) {
        let rec = ExecutionRecord {
            app_name: "app".into(),
            app_version: "V".into(),
            label: "r1".into(),
            resources: vec![ResourceName::parse("/Code/a.c/f").unwrap()],
            outcomes: outcomes
                .into_iter()
                .map(|(h, f, o, v, t)| {
                    let outcome = match o {
                        0 => Outcome::True,
                        1 => Outcome::False,
                        2 => Outcome::Pruned,
                        _ => Outcome::Untested,
                    };
                    NodeOutcome {
                        hypothesis: h,
                        focus: f,
                        outcome,
                        first_true_at: if outcome == Outcome::True {
                            t.map(SimTime)
                        } else {
                            None
                        },
                        concluded_at: t.map(SimTime),
                        last_value: v,
                        samples: t.unwrap_or(0) % 17,
                    }
                })
                .collect(),
            thresholds_used: vec![("CPUbound".into(), 0.2)],
            end_time: SimTime(end),
            pairs_tested: pairs,
            unreachable: vec![ResourceName::parse("/Machine/n1").unwrap()],
            saturated: vec![ResourceName::parse("/Process/p1").unwrap()],
        };
        let text = format::write_record(&rec);
        let parsed = format::parse_record(&text).unwrap();
        prop_assert_eq!(parsed.outcomes.len(), rec.outcomes.len());
        for (x, y) in parsed.outcomes.iter().zip(&rec.outcomes) {
            prop_assert_eq!(&x.hypothesis, &y.hypothesis);
            prop_assert_eq!(&x.focus, &y.focus);
            prop_assert_eq!(x.outcome, y.outcome);
            prop_assert_eq!(x.first_true_at, y.first_true_at);
            prop_assert_eq!(x.concluded_at, y.concluded_at);
            prop_assert_eq!(x.samples, y.samples);
        }
        prop_assert_eq!(&parsed.unreachable, &rec.unreachable);
        prop_assert_eq!(&parsed.saturated, &rec.saturated);
        prop_assert_eq!(parsed.end_time, rec.end_time);
        prop_assert_eq!(parsed.pairs_tested, rec.pairs_tested);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parsers_never_panic(text in ".{0,200}") {
        let _ = SearchDirectives::parse(&text);
        let _ = MappingSet::parse(&text);
        let _ = format::parse_record(&text);
    }

    /// Checksum framing round-trips any payload, and the decoder is
    /// total on arbitrary input.
    #[test]
    fn frame_roundtrip_and_decode_total(payload in "[ -~\n]{0,300}") {
        let framed = frame::encode(&payload);
        prop_assert_eq!(frame::decode(&framed).unwrap().payload(), payload.as_str());
        let _ = frame::decode(&payload); // must not panic, whatever it is
    }

    /// The tentpole crash-consistency property: tearing a journaled
    /// record write at an arbitrary fraction never lets a parse error
    /// escape `ExecutionStore::open` or `load_all` — the surviving state
    /// is the old record, a salvaged prefix, or a quarantined file — and
    /// after `repair` the store passes `fsck` with zero errors.
    #[test]
    fn torn_record_write_always_recovers(cut in 0.0f64..1.0, pairs in 0usize..1000) {
        let dir = store_scratch();
        let store = ExecutionStore::open(&dir).unwrap();
        store.save(&stored_record(pairs)).unwrap();
        store.inject_torn_write("app", "r1", cut).unwrap();

        let again = ExecutionStore::open(&dir).unwrap();
        let (records, _warnings) = again.load_all_with_warnings("app").unwrap();
        for r in &records {
            prop_assert_eq!(&r.app_name, "app");
            prop_assert_eq!(&r.label, "r1");
        }
        again.repair().unwrap();
        let diags = histpc_history::fsck::fsck(&dir);
        prop_assert!(diags.iter().all(|d| !d.is_error()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Cutting the write-ahead journal mid-append is likewise always
    /// recovered on the next open.
    #[test]
    fn torn_journal_always_recovers(cut in 0.0f64..1.0) {
        let dir = store_scratch();
        let store = ExecutionStore::open(&dir).unwrap();
        store.save(&stored_record(3)).unwrap();
        store.inject_torn_journal("app", "r1", cut).unwrap();

        let again = ExecutionStore::open(&dir).unwrap();
        prop_assert_eq!(again.load("app", "r1").unwrap().pairs_tested, 3);
        let diags = histpc_history::fsck::fsck(&dir);
        prop_assert!(diags.iter().all(|d| !d.is_error()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
