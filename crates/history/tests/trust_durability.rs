//! Durability of the trust ledger sidecar: revocations pinned by a
//! failed shadow audit must survive every store maintenance operation
//! (`store compact`, v0→v1 `migrate`), and a `TRUST` write torn at an
//! arbitrary byte offset must never half-parse into a wrong ledger —
//! the loader falls back to the committed tmp or to full trust.

use histpc_consultant::Outcome;
use histpc_history::trust::{TrustLedger, TRUST_FILE};
use histpc_history::{ExecutionRecord, ExecutionStore};
use histpc_resources::{Focus, ResourceName};
use histpc_sim::SimTime;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch(tag: &str) -> std::path::PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "histpc-trust-durability-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record(label: &str) -> ExecutionRecord {
    ExecutionRecord {
        app_name: "poisson".into(),
        app_version: "A".into(),
        label: label.into(),
        resources: vec![ResourceName::parse("/Code/solve.c/jacobi").unwrap()],
        outcomes: vec![histpc_consultant::NodeOutcome {
            hypothesis: "CPUbound".into(),
            focus: Focus::whole_program(["Code"]),
            outcome: Outcome::True,
            first_true_at: Some(SimTime(5)),
            concluded_at: Some(SimTime(5)),
            last_value: 0.5,
            samples: 4,
        }],
        thresholds_used: vec![("CPUbound".into(), 0.2)],
        end_time: SimTime(100),
        pairs_tested: 7,
        unreachable: vec![],
        saturated: vec![],
    }
}

/// A ledger carrying every kind of state: a dropped score, pass/fail
/// counters, a conflict key, and a pinned revocation.
fn tarnished_ledger() -> TrustLedger {
    let mut ledger = TrustLedger::new();
    ledger.record_audit("poisson/a1", false);
    ledger.record_audit("poisson/a1", false);
    ledger.record_audit("poisson/a2", true);
    ledger.record_conflict("poisson/a1", "CPUbound /Code/solve.c/jacobi");
    ledger.record_revocation("poisson/a1", "prune CPUbound focus /Code/solve.c/jacobi");
    ledger
}

/// `store compact` rebuilds the manifest, resets the journal, and
/// sweeps app-directory temp files — but the root `TRUST` sidecar
/// (and even a committed `TRUST.tmp` from an interrupted save) must
/// come through byte-identical, or a compaction would quietly
/// resurrect a revoked directive on the next harvest.
#[test]
fn revocation_survives_store_compact() {
    let dir = scratch("compact");
    let store = ExecutionStore::open(&dir).unwrap();
    store.save(&record("a1")).unwrap();

    let ledger = tarnished_ledger();
    ledger.save(&dir).unwrap();
    let before = std::fs::read_to_string(dir.join(TRUST_FILE)).unwrap();
    // An interrupted save leaves a committed tmp; compact's stray-tmp
    // sweep covers app dirs and the manifest only, never root sidecars.
    std::fs::write(dir.join(format!("{TRUST_FILE}.tmp")), &before).unwrap();

    store.compact().unwrap();

    let after = std::fs::read_to_string(dir.join(TRUST_FILE)).unwrap();
    assert_eq!(before, after, "compact rewrote the TRUST sidecar");
    assert!(
        dir.join(format!("{TRUST_FILE}.tmp")).exists(),
        "compact swept the root TRUST.tmp fallback"
    );
    let reloaded = TrustLedger::load(&dir);
    assert_eq!(reloaded, ledger);
    assert!(reloaded.is_revoked("poisson/a1", "prune CPUbound focus /Code/solve.c/jacobi"));
}

/// v0→v1 `migrate` rewrites every loose record into a checksum frame
/// and creates the control files; a `TRUST` ledger dropped into a v0
/// root beforehand must survive untouched, revocations included.
#[test]
fn revocation_survives_v0_migrate() {
    let dir = scratch("migrate");
    let app = dir.join("poisson");
    std::fs::create_dir_all(&app).unwrap();
    std::fs::write(
        app.join("a1.record"),
        histpc_history::format::write_record(&record("a1")),
    )
    .unwrap();

    let ledger = tarnished_ledger();
    ledger.save(&dir).unwrap();
    let before = std::fs::read_to_string(dir.join(TRUST_FILE)).unwrap();

    let store = ExecutionStore::open(&dir).unwrap();
    assert_eq!(store.migrate().unwrap(), 1);

    let framed = std::fs::read_to_string(app.join("a1.record")).unwrap();
    assert!(framed.starts_with("histpc-frame v1 "), "record not framed");
    let after = std::fs::read_to_string(dir.join(TRUST_FILE)).unwrap();
    assert_eq!(before, after, "migrate rewrote the TRUST sidecar");
    let reloaded = TrustLedger::load(&dir);
    assert_eq!(reloaded, ledger);
    assert!(reloaded.is_revoked("poisson/a1", "prune CPUbound focus /Code/solve.c/jacobi"));

    // And fsck agrees the sidecar is not store data to be validated.
    let diags = histpc_history::fsck::fsck(&dir);
    assert!(
        diags.iter().all(|d| !d.is_error()),
        "fsck errors: {diags:?}"
    );
}

/// Ledger-shaped proptest input: a sequence of trust events applied in
/// order. Sources and payloads vary in length so truncation offsets
/// land everywhere in the serialized form.
fn events() -> impl Strategy<Value = Vec<(String, u8, String)>> {
    prop::collection::vec(("[a-z][a-z0-9/._-]{0,12}", 0u8..4, "[ -~]{1,40}"), 1..16)
}

fn ledger_from(events: &[(String, u8, String)]) -> TrustLedger {
    let mut ledger = TrustLedger::new();
    for (source, kind, payload) in events {
        match kind {
            0 => ledger.record_audit(source, true),
            1 => ledger.record_audit(source, false),
            2 => {
                ledger.record_conflict(source, payload);
            }
            _ => {
                ledger.record_revocation(source, payload);
            }
        }
    }
    ledger
}

proptest! {
    /// Tearing a `TRUST` save at any byte offset never yields a wrong
    /// ledger. Two crash shapes:
    ///
    /// * cut mid-`TRUST.tmp`, before the rename — the committed
    ///   `TRUST` still holds the old ledger and wins;
    /// * `TRUST` itself damaged after a crash that left a complete
    ///   tmp behind — the loader falls back to the tmp.
    ///
    /// In both, the outcome is exactly the old or the new ledger —
    /// the FNV-framed body makes every proper prefix unparseable, so
    /// no truncation can half-apply a revocation set.
    #[test]
    fn torn_trust_write_never_corrupts(
        old_events in events(),
        new_events in events(),
        cut in 0.0f64..1.0,
    ) {
        let dir = scratch("torn");
        std::fs::create_dir_all(&dir).unwrap();
        let old = ledger_from(&old_events);
        let mut new = old.clone();
        for (source, kind, payload) in &new_events {
            match kind {
                0 => new.record_audit(source, true),
                1 => new.record_audit(source, false),
                2 => { new.record_conflict(source, payload); }
                _ => { new.record_revocation(source, payload); }
            }
        }
        let new_bytes = new.to_text().into_bytes();
        let cut_at = ((new_bytes.len() as f64) * cut) as usize;
        let torn = &new_bytes[..cut_at.min(new_bytes.len())];

        // A proper prefix must never parse — that is what the
        // checksum frame buys.
        if cut_at < new_bytes.len() {
            if let Ok(text) = std::str::from_utf8(torn) {
                prop_assert!(TrustLedger::parse(text).is_none());
            }
        }

        // Crash shape 1: old ledger committed, save of the new one
        // torn mid-tmp. The committed file wins.
        old.save(&dir).unwrap();
        std::fs::write(dir.join(format!("{TRUST_FILE}.tmp")), torn).unwrap();
        prop_assert_eq!(&TrustLedger::load(&dir), &old);

        // Crash shape 2: the tmp was written in full, then TRUST
        // itself was damaged. The loader falls back to the tmp.
        std::fs::write(dir.join(TRUST_FILE), torn).unwrap();
        std::fs::write(dir.join(format!("{TRUST_FILE}.tmp")), &new_bytes).unwrap();
        prop_assert_eq!(&TrustLedger::load(&dir), &new);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
