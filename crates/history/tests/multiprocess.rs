//! Two-*process* store locking tests (satellite of the `histpcd` PR).
//!
//! The in-crate lock tests exercise contention between threads, but
//! threads share a pid — `pid_alive` sees "me" on both sides — so they
//! cannot prove the cross-process story: a live foreign holder really
//! blocks a second `ExecutionStore::open`, a dead holder's lock really
//! breaks, and an epoch-stale lock from a previous daemon incarnation
//! breaks even though its pid is alive.
//!
//! The harness forks real children by re-executing this test binary
//! (`std::env::current_exe()`) with an env-var-selected helper "test"
//! that is a no-op in normal runs. The child's exit status and stdout
//! carry the verdict back.

use std::path::{Path, PathBuf};
use std::process::Command;

use histpc_history::lock::{self, StoreLock, LOCK_FILE, LOCK_HEADER};
use histpc_history::store::ExecutionStore;

/// Env var that switches a spawned copy of this binary into child mode.
const CHILD_MODE: &str = "HISTPC_MP_CHILD";
/// Env var carrying the store root for the child.
const CHILD_ROOT: &str = "HISTPC_MP_ROOT";
/// Env var carrying an optional lease epoch the child declares.
const CHILD_EPOCH: &str = "HISTPC_MP_EPOCH";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("histpc-mp-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn this test binary in child mode and collect (exit-ok, stdout).
fn run_child(mode: &str, root: &Path, epoch: Option<u64>) -> (bool, String) {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.arg("child_entry")
        .arg("--exact")
        .arg("--nocapture")
        .env(CHILD_MODE, mode)
        .env(CHILD_ROOT, root);
    if let Some(e) = epoch {
        cmd.env(CHILD_EPOCH, e.to_string());
    }
    let out = cmd.output().expect("spawn child test process");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    (out.status.success(), stdout)
}

/// The child-mode dispatcher. In a normal test run (`CHILD_MODE` unset)
/// this is an instant no-op; when spawned by a parent test it performs
/// one store/lock action and reports through its exit status + stdout.
#[test]
fn child_entry() {
    let Ok(mode) = std::env::var(CHILD_MODE) else {
        return;
    };
    let root = PathBuf::from(std::env::var(CHILD_ROOT).expect("child needs a store root"));
    if let Ok(epoch) = std::env::var(CHILD_EPOCH) {
        lock::set_lease_epoch(epoch.parse().expect("numeric epoch"));
    }
    match mode.as_str() {
        // Open the store (which takes the lock for recovery), write a
        // marker artifact, and hold the lock until the parent deletes a
        // "go away" file — a live cross-process holder.
        "hold" => {
            let _held = StoreLock::acquire(&root).expect("child acquires");
            println!("CHILD_HOLDING pid={}", std::process::id());
            let gone = root.join("release-me");
            std::fs::write(&gone, "x").unwrap();
            for _ in 0..2000 {
                if !gone.exists() {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            panic!("parent never released the child");
        }
        // Try one acquire; print verdict instead of panicking so the
        // parent can assert on *which* way it resolved.
        "try-acquire" => match StoreLock::acquire(&root) {
            Ok(_l) => println!("CHILD_ACQUIRED"),
            Err(lock::LockError::Held { pid }) => println!("CHILD_BLOCKED by={pid}"),
            Err(e) => panic!("unexpected lock error: {e}"),
        },
        // Full store open + a concurrent-put smoke: open the store and
        // save an artifact under a child-named label.
        "open-put" => {
            let store = ExecutionStore::open(&root).expect("child opens store");
            store
                .save_artifact("mp", &format!("child-{}", std::process::id()), "shg", "g\n")
                .expect("child saves");
            println!("CHILD_PUT_OK");
        }
        other => panic!("unknown child mode {other}"),
    }
}

#[test]
fn live_foreign_holder_blocks_acquire() {
    let root = scratch("live-holder");
    let path = root.join(LOCK_FILE);
    // Start a child that takes and holds the lock.
    let exe = std::env::current_exe().unwrap();
    let mut holder = Command::new(exe)
        .arg("child_entry")
        .arg("--exact")
        .arg("--nocapture")
        .env(CHILD_MODE, "hold")
        .env(CHILD_ROOT, &root)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn holder child");
    // Wait until the child reports it holds the lock.
    let release = root.join("release-me");
    for _ in 0..2000 {
        if release.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(release.exists(), "holder child never took the lock");
    let holder_pid = lock::read_holder(&path)
        .unwrap()
        .expect("lock file present");
    assert_ne!(
        holder_pid,
        std::process::id(),
        "lock must name the child, not us"
    );
    assert!(lock::pid_alive(holder_pid));
    // A second process (us) must NOT steal a live foreign lock.
    match StoreLock::acquire(&root) {
        Err(lock::LockError::Held { pid }) => assert_eq!(pid, holder_pid),
        Ok(_) => panic!("stole a live foreign holder's lock"),
        Err(e) => panic!("unexpected error: {e}"),
    }
    // Release the child; now acquisition succeeds.
    std::fs::remove_file(&release).unwrap();
    let status = holder.wait().expect("holder child exits");
    assert!(status.success(), "holder child failed");
    let lock = StoreLock::acquire(&root).expect("acquire after release");
    drop(lock);
}

#[test]
fn dead_foreign_holder_is_broken_by_second_process() {
    let root = scratch("dead-holder");
    let path = root.join(LOCK_FILE);
    // Fabricate a lock from a process that is certainly dead.
    std::fs::write(&path, format!("{LOCK_HEADER}\npid 999999999\n")).unwrap();
    let (ok, out) = run_child("try-acquire", &root, None);
    assert!(ok, "child process failed: {out}");
    assert!(
        out.contains("CHILD_ACQUIRED"),
        "child should break a dead-holder lock: {out}"
    );
}

#[test]
fn epoch_stale_lock_breaks_across_processes() {
    let root = scratch("epoch-stale");
    let path = root.join(LOCK_FILE);
    // A lock naming OUR live pid but an old daemon epoch: to a plain
    // child (no epoch) it is a live holder; to a re-adopting daemon
    // child at epoch 2 it is a stale previous incarnation.
    let write_stale = || {
        std::fs::write(
            &path,
            format!("{LOCK_HEADER}\npid {}\nepoch 1\n", std::process::id()),
        )
        .unwrap()
    };
    write_stale();
    let (ok, out) = run_child("try-acquire", &root, None);
    assert!(ok, "child failed: {out}");
    assert!(
        out.contains("CHILD_BLOCKED"),
        "plain client must respect the live pid: {out}"
    );
    write_stale();
    let (ok, out) = run_child("try-acquire", &root, Some(2));
    assert!(ok, "child failed: {out}");
    assert!(
        out.contains("CHILD_ACQUIRED"),
        "epoch-2 daemon must break an epoch-1 lock: {out}"
    );
}

#[test]
fn concurrent_store_opens_from_two_processes_serialize() {
    let root = scratch("open-put");
    // Seed the store and drop our lock.
    {
        let store = ExecutionStore::open(&root).expect("parent opens");
        store.save_artifact("mp", "parent", "shg", "g\n").unwrap();
    }
    // Two child processes open + put concurrently against the same root.
    let exe = std::env::current_exe().unwrap();
    let spawn = || {
        Command::new(&exe)
            .arg("child_entry")
            .arg("--exact")
            .arg("--nocapture")
            .env(CHILD_MODE, "open-put")
            .env(CHILD_ROOT, &root)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn open-put child")
    };
    let a = spawn();
    let b = spawn();
    let oa = a.wait_with_output().unwrap();
    let ob = b.wait_with_output().unwrap();
    assert!(
        oa.status.success() && ob.status.success(),
        "children failed: {}\n{}",
        String::from_utf8_lossy(&oa.stdout),
        String::from_utf8_lossy(&ob.stdout)
    );
    // Both artifacts landed and the store is lock-free and consistent.
    let store = ExecutionStore::open(&root).expect("reopen");
    let diags = histpc_history::fsck::fsck(store.root());
    assert!(diags.is_empty(), "store dirty after children: {diags:?}");
    assert!(!root.join(LOCK_FILE).exists(), "lock left behind");
}
