//! The trust ledger: a crash-safe sidecar scoring every source run
//! whose harvested directives the tool has ever applied.
//!
//! Historical guidance is only as good as the run it came from. A
//! stale or poisoned record harvests directives that *silently* hide
//! true bottlenecks — nothing in the pipeline fails, the report is
//! just wrong. The ledger closes that loop: shadow audits (see
//! `histpc-consultant`) and corpus conflict findings (`HL030`) feed
//! per-source-run trust scores, and harvest consults those scores
//! before applying anything:
//!
//! * score ≥ [`DOWNWEIGHT_BELOW`] — fully trusted, directives apply
//!   as harvested;
//! * [`QUARANTINE_FLOOR`] ≤ score < [`DOWNWEIGHT_BELOW`] —
//!   down-weighted: prunes and thresholds (the dangerous kinds — they
//!   *remove* search work) are dropped, High priorities demoted to
//!   Medium (hints, not mandates);
//! * score < [`QUARANTINE_FLOOR`] — quarantined: nothing from the run
//!   is applied (`HL036`).
//!
//! Scores move by integer rules chosen to be deterministic and
//! asymmetric — trust is lost in halves and regained in eighths:
//!
//! * audit pass:     `score += (FULL_SCORE - score) / 8`
//! * audit failure:  `score /= 2`
//! * HL030 conflict: `score = score * 9 / 10`, applied **once** per
//!   distinct conflict key, so a chronic contradiction decays the
//!   source instead of being re-litigated every harvest.
//!
//! The ledger also pins every **revoked** directive line per source:
//! once an audit catches a directive lying, re-harvesting the same
//! record must not resurrect it — revocation survives `store compact`
//! and v0→v1 `migrate` because neither touches root sidecars.
//!
//! On disk the ledger follows the `FACTS` sidecar discipline
//! ([`crate::factcache`]): one root-level `TRUST` file, invisible to
//! `fsck`'s data walk (listed as "skipped: sidecar"), atomic tmp +
//! rename saves, and tolerant loading — with one upgrade: the body is
//! checksum-framed (FNV-64, [`crate::frame::fnv64`]), and a torn or
//! corrupt `TRUST` falls back to a committed `TRUST.tmp` before
//! degrading to an empty ledger. Losing the ledger is safe: every
//! source simply starts back at full trust.

use crate::frame::fnv64;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// The sidecar file name, directly under the store root.
pub const TRUST_FILE: &str = "TRUST";

/// First line of the sidecar file.
pub const TRUST_HEADER: &str = "histpc-trust v1";

/// Score of a source run the ledger has no complaints about, in
/// thousandths.
pub const FULL_SCORE: u32 = 1000;

/// Below this score a source's prunes/thresholds are dropped and its
/// High priorities demoted at harvest.
pub const DOWNWEIGHT_BELOW: u32 = 750;

/// Below this score nothing from the source is applied at all.
pub const QUARANTINE_FLOOR: u32 = 250;

/// The ledger's verdict on one source run, derived from its score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustVerdict {
    /// Directives apply as harvested.
    Trusted,
    /// Prunes/thresholds dropped, High priorities demoted.
    Downweighted,
    /// Nothing from this source is applied.
    Quarantined,
}

/// Everything the ledger knows about one source run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustEntry {
    /// Current score in thousandths ([`FULL_SCORE`] = untarnished).
    pub score: u32,
    /// Shadow audits whose probe agreed with the directive.
    pub audits_passed: u64,
    /// Shadow audits whose probe contradicted the directive.
    pub audits_failed: u64,
    /// Distinct HL030 conflict keys already charged to this source.
    pub conflicts: BTreeSet<String>,
    /// Canonical directive lines revoked by audits — never re-applied.
    pub revoked: BTreeSet<String>,
}

impl Default for TrustEntry {
    fn default() -> TrustEntry {
        TrustEntry {
            score: FULL_SCORE,
            audits_passed: 0,
            audits_failed: 0,
            conflicts: BTreeSet::new(),
            revoked: BTreeSet::new(),
        }
    }
}

/// A persistent map of source run id → [`TrustEntry`], with tolerant
/// checksum-verified loading and atomic saving.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrustLedger {
    entries: BTreeMap<String, TrustEntry>,
}

impl TrustLedger {
    /// An empty ledger: every source at full trust.
    pub fn new() -> TrustLedger {
        TrustLedger::default()
    }

    /// Loads the sidecar from a store root. Damage never errors: a
    /// torn `TRUST` falls back to a committed `TRUST.tmp` (the save
    /// that was cut may have left a complete tmp behind), and if both
    /// are unusable the ledger is empty — sources revert to full
    /// trust, which only costs re-auditing.
    pub fn load(root: &Path) -> TrustLedger {
        for name in [TRUST_FILE.to_string(), format!("{TRUST_FILE}.tmp")] {
            if let Ok(text) = std::fs::read_to_string(root.join(&name)) {
                if let Some(ledger) = Self::parse(&text) {
                    return ledger;
                }
            }
        }
        TrustLedger::default()
    }

    /// The score of a source run ([`FULL_SCORE`] when unknown).
    pub fn score(&self, source: &str) -> u32 {
        self.entries.get(source).map_or(FULL_SCORE, |e| e.score)
    }

    /// The ledger's verdict on a source run.
    pub fn verdict(&self, source: &str) -> TrustVerdict {
        let score = self.score(source);
        if score < QUARANTINE_FLOOR {
            TrustVerdict::Quarantined
        } else if score < DOWNWEIGHT_BELOW {
            TrustVerdict::Downweighted
        } else {
            TrustVerdict::Trusted
        }
    }

    /// The full entry for a source run, if the ledger has one.
    pub fn entry(&self, source: &str) -> Option<&TrustEntry> {
        self.entries.get(source)
    }

    /// All (source, entry) pairs in deterministic order.
    pub fn sources(&self) -> impl Iterator<Item = (&String, &TrustEntry)> {
        self.entries.iter()
    }

    /// Number of sources with a recorded entry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no source has ever been scored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if `line` (a canonical directive line) has been revoked
    /// for `source` by a failed shadow audit.
    pub fn is_revoked(&self, source: &str, line: &str) -> bool {
        self.entries
            .get(source)
            .is_some_and(|e| e.revoked.contains(line))
    }

    /// Records a shadow-audit outcome for a source run: a pass earns
    /// back an eighth of the lost trust, a failure halves the score.
    pub fn record_audit(&mut self, source: &str, passed: bool) {
        let e = self.entries.entry(source.to_string()).or_default();
        if passed {
            e.audits_passed += 1;
            e.score += (FULL_SCORE - e.score) / 8;
        } else {
            e.audits_failed += 1;
            e.score /= 2;
        }
    }

    /// Charges one HL030 conflict to a source run. The `key` names
    /// the contradicted pair; each distinct key decays the score once
    /// (`*9/10`) and is then remembered, so repeat analyses of the
    /// same corpus do not compound the penalty. Returns whether the
    /// ledger changed.
    pub fn record_conflict(&mut self, source: &str, key: &str) -> bool {
        let e = self.entries.entry(source.to_string()).or_default();
        if !e.conflicts.insert(key.to_string()) {
            return false;
        }
        e.score = e.score * 9 / 10;
        true
    }

    /// Pins a revoked directive line to a source run so it is never
    /// re-applied by a later harvest. Returns whether it was new.
    pub fn record_revocation(&mut self, source: &str, line: &str) -> bool {
        self.entries
            .entry(source.to_string())
            .or_default()
            .revoked
            .insert(line.to_string())
    }

    /// Serializes the ledger. The second line frames the body with an
    /// FNV-64 checksum so a torn write is *detected* (and the tmp
    /// fallback consulted) rather than half-parsed. Conflict keys and
    /// revoked lines are length-prefixed à la the FACTS sidecar, and
    /// everything is emitted in `BTreeMap`/`BTreeSet` order so equal
    /// ledgers serialize identically.
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        for (source, e) in &self.entries {
            body.push_str(&format!(
                "entry {} {} {} {source}\n",
                e.score, e.audits_passed, e.audits_failed
            ));
            for key in &e.conflicts {
                body.push_str(&format!("conflict {} {source}\n{key}\n", key.len()));
            }
            for line in &e.revoked {
                body.push_str(&format!("revoke {} {source}\n{line}\n", line.len()));
            }
        }
        format!(
            "{TRUST_HEADER}\nchecksum {:016x}\n{body}",
            fnv64(body.as_bytes())
        )
    }

    /// Parses a serialized ledger. Any structural damage — bad
    /// header, checksum mismatch, malformed entry — returns `None`.
    pub fn parse(text: &str) -> Option<TrustLedger> {
        let rest = text.strip_prefix(TRUST_HEADER)?.strip_prefix('\n')?;
        let (checksum_line, body) = rest.split_once('\n')?;
        let want = u64::from_str_radix(checksum_line.strip_prefix("checksum ")?, 16).ok()?;
        if fnv64(body.as_bytes()) != want {
            return None;
        }
        let mut entries: BTreeMap<String, TrustEntry> = BTreeMap::new();
        let mut pos = 0;
        while pos < body.len() {
            let line_end = body[pos..].find('\n').map(|i| pos + i)?;
            let line = &body[pos..line_end];
            if let Some(meta) = line.strip_prefix("entry ") {
                let mut parts = meta.splitn(4, ' ');
                let score: u32 = parts.next()?.parse().ok()?;
                let passed: u64 = parts.next()?.parse().ok()?;
                let failed: u64 = parts.next()?.parse().ok()?;
                let source = parts.next()?.to_string();
                let e = entries.entry(source).or_default();
                e.score = score.min(FULL_SCORE);
                e.audits_passed = passed;
                e.audits_failed = failed;
                pos = line_end + 1;
            } else if let Some(meta) = line
                .strip_prefix("conflict ")
                .or_else(|| line.strip_prefix("revoke "))
            {
                let is_conflict = line.starts_with("conflict ");
                let (len_text, source) = meta.split_once(' ')?;
                let len: usize = len_text.parse().ok()?;
                let payload_start = line_end + 1;
                let payload_end = payload_start.checked_add(len)?;
                if payload_end > body.len() || !body.is_char_boundary(payload_end) {
                    return None;
                }
                let payload = body[payload_start..payload_end].to_string();
                if body.as_bytes().get(payload_end) != Some(&b'\n') {
                    return None;
                }
                let e = entries.entry(source.to_string()).or_default();
                if is_conflict {
                    e.conflicts.insert(payload);
                } else {
                    e.revoked.insert(payload);
                }
                pos = payload_end + 1;
            } else {
                return None;
            }
        }
        Some(TrustLedger { entries })
    }

    /// Writes the sidecar atomically (tmp + rename) under a store
    /// root. Harvest treats failure as non-fatal — worst case the
    /// next session re-learns the same distrust.
    pub fn save(&self, root: &Path) -> io::Result<()> {
        let tmp = root.join(format!("{TRUST_FILE}.tmp"));
        let target = root.join(TRUST_FILE);
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, &target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histpc-trust-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn unknown_sources_start_fully_trusted() {
        let l = TrustLedger::new();
        assert_eq!(l.score("app/run"), FULL_SCORE);
        assert_eq!(l.verdict("app/run"), TrustVerdict::Trusted);
        assert!(!l.is_revoked("app/run", "prune * resource /Machine"));
    }

    #[test]
    fn audit_failures_halve_and_passes_recover_in_eighths() {
        let mut l = TrustLedger::new();
        l.record_audit("app/bad", false);
        assert_eq!(l.score("app/bad"), 500);
        assert_eq!(l.verdict("app/bad"), TrustVerdict::Downweighted);
        l.record_audit("app/bad", false);
        assert_eq!(l.score("app/bad"), 250);
        l.record_audit("app/bad", false);
        assert_eq!(l.score("app/bad"), 125);
        assert_eq!(l.verdict("app/bad"), TrustVerdict::Quarantined);
        // Recovery is slow: one pass from 125 earns (1000-125)/8 = 109.
        l.record_audit("app/bad", true);
        assert_eq!(l.score("app/bad"), 234);
        assert_eq!(l.verdict("app/bad"), TrustVerdict::Quarantined);
    }

    #[test]
    fn conflicts_decay_once_per_key() {
        let mut l = TrustLedger::new();
        assert!(l.record_conflict("app/r1", "app CPUbound </Code,...>"));
        assert_eq!(l.score("app/r1"), 900);
        // The same conflict re-found on the next analysis is free.
        assert!(!l.record_conflict("app/r1", "app CPUbound </Code,...>"));
        assert_eq!(l.score("app/r1"), 900);
        assert!(l.record_conflict("app/r1", "app Excessive </Sync,...>"));
        assert_eq!(l.score("app/r1"), 810);
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let mut l = TrustLedger::new();
        l.record_audit("tenant/app/r1", false);
        l.record_audit("tenant/app/r1", true);
        l.record_conflict("tenant/app/r1", "key with spaces\nand a newline");
        l.record_revocation("tenant/app/r1", "prune CPUbound resource /Code/diff.f");
        l.record_audit("app/r2", true);
        let back = TrustLedger::parse(&l.to_text()).unwrap();
        assert_eq!(back, l);
        assert!(back.is_revoked("tenant/app/r1", "prune CPUbound resource /Code/diff.f"));
    }

    #[test]
    fn damaged_text_parses_to_none() {
        let mut l = TrustLedger::new();
        l.record_audit("app/r", false);
        let good = l.to_text();
        assert!(TrustLedger::parse(&good).is_some());
        // Flip one byte of the body: checksum catches it.
        let flipped = good.replace("entry 500", "entry 501");
        assert!(TrustLedger::parse(&flipped).is_none());
        assert!(TrustLedger::parse("not a ledger").is_none());
        assert!(TrustLedger::parse("histpc-trust v1\nchecksum zz\n").is_none());
        // Every prefix is either the full text or rejected (no partial
        // parse ever half-succeeds thanks to the frame).
        for cut in 0..good.len() {
            if !good.is_char_boundary(cut) {
                continue;
            }
            if let Some(partial) = TrustLedger::parse(&good[..cut]) {
                panic!("prefix of {cut} bytes parsed to {partial:?}");
            }
        }
    }

    #[test]
    fn load_falls_back_to_committed_tmp() {
        let dir = scratch("tmpfallback");
        let mut l = TrustLedger::new();
        l.record_audit("app/r", false);
        // Simulate a save cut between writing the tmp and the rename:
        // the target is torn garbage, the tmp is complete.
        std::fs::write(dir.join(TRUST_FILE), "histpc-trust v1\nchecksum 00").unwrap();
        std::fs::write(dir.join(format!("{TRUST_FILE}.tmp")), l.to_text()).unwrap();
        assert_eq!(TrustLedger::load(&dir), l);
        // Both damaged: empty ledger, full trust.
        std::fs::write(dir.join(format!("{TRUST_FILE}.tmp")), "junk").unwrap();
        assert!(TrustLedger::load(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = scratch("roundtrip");
        let mut l = TrustLedger::new();
        l.record_conflict("app/r1", "k");
        l.record_revocation("app/r2", "threshold CPUbound 0.9");
        l.save(&dir).unwrap();
        assert_eq!(TrustLedger::load(&dir), l);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
