//! Read-only integrity checking for an execution store (`histpc store
//! fsck`).
//!
//! `fsck` never mutates the store. It walks the control files (LOCK,
//! JOURNAL, MANIFEST) and every data file, and reports findings as
//! [`Diagnostic`]s under three stable lint codes:
//!
//! * **HL023** (error) — a record fails its integrity checks: damaged or
//!   truncated checksum frame, checksum mismatch, or unparseable record
//!   text. `histpc store repair` salvages or quarantines these.
//! * **HL024** (warning) — evidence of an unclean shutdown or concurrent
//!   writer: a stale (dead-holder) or malformed lock file, a torn
//!   journal, an uncommitted trailing journal intent, stray `.tmp`
//!   files, quarantined `.corrupt` files, or a damaged/absent control
//!   file on a store that has them. Reopening the store (or `repair`)
//!   clears these.
//! * **HL025** (warning) — legacy layout or index drift: unframed v0
//!   records (`histpc store migrate` upgrades them), a missing manifest
//!   on a non-empty store, or disagreement between the manifest index
//!   and the directory contents.
//!
//! I/O failures while checking are themselves reported as HL023 errors
//! rather than aborting the walk, so one unreadable file cannot hide the
//! rest of the report.

use crate::format::parse_record;
use crate::frame;
use crate::journal::{Journal, JOURNAL_FILE};
use crate::lock::{self, StoreLock};
use crate::manifest::{self, Manifest, ManifestState, MANIFEST_FILE};
use histpc_resources::diag::Diagnostic;
use std::path::Path;

/// Lint code: record fails checksum frame or does not parse (error).
pub const CODE_INTEGRITY: &str = "HL023";
/// Lint code: unclean shutdown / stale lock evidence (warning).
pub const CODE_UNCLEAN: &str = "HL024";
/// Lint code: legacy layout or manifest drift (warning).
pub const CODE_LEGACY: &str = "HL025";

fn err(path: &Path, msg: String) -> Diagnostic {
    Diagnostic::error(CODE_INTEGRITY, msg).with_file(path.display().to_string())
}

fn unclean(path: &Path, msg: String) -> Diagnostic {
    Diagnostic::warning(CODE_UNCLEAN, msg).with_file(path.display().to_string())
}

fn legacy(path: &Path, msg: String) -> Diagnostic {
    Diagnostic::warning(CODE_LEGACY, msg).with_file(path.display().to_string())
}

/// Checks the store rooted at `root` without modifying anything, and
/// returns every finding. An empty result means the store is fully
/// consistent, checksummed, and in the current (v1) layout.
pub fn fsck(root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_lock(root, &mut out);
    let journal_present = check_journal(root, &mut out);
    let manifest_loaded = check_manifest_presence(root, &mut out, journal_present);
    check_data_files(root, &mut out, manifest_loaded.as_ref());
    if let Some(m) = manifest_loaded {
        check_manifest_drift(root, &mut out, &m);
    }
    out
}

fn check_lock(root: &Path, out: &mut Vec<Diagnostic>) {
    let lock_path = StoreLock::path_in(root);
    // Judge holder epochs against the store's persisted lease epoch, so
    // fsck spots a previous daemon incarnation's lock even when the
    // holder pid was reused by a live process.
    let store_epoch = match crate::lease::current_epoch(root) {
        0 => None,
        e => Some(e),
    };
    match lock::read_holder_meta(&lock_path) {
        Ok(None) => {}
        Ok(Some(meta)) if meta.pid == 0 => out.push(
            unclean(
                &lock_path,
                "malformed lock file (holder unknown)".to_string(),
            )
            .with_suggestion("reopen the store or run `histpc store repair` to clear it"),
        ),
        Ok(Some(meta)) if !lock::pid_alive(meta.pid) => out.push(
            unclean(
                &lock_path,
                format!(
                    "stale lock left by dead process {} (unclean shutdown)",
                    meta.pid
                ),
            )
            .with_suggestion("reopen the store or run `histpc store repair` to recover"),
        ),
        Ok(Some(meta)) if lock::holder_stale_for(meta, store_epoch) => out.push(
            unclean(
                &lock_path,
                format!(
                    "stale lock from daemon epoch {} (store is at epoch {}); \
                     holder pid {} may be a reused pid",
                    meta.epoch.unwrap_or(0),
                    store_epoch.unwrap_or(0),
                    meta.pid
                ),
            )
            .with_suggestion("reopen the store or run `histpc store repair` to recover"),
        ),
        Ok(Some(meta)) => out.push(unclean(
            &lock_path,
            format!(
                "store is locked by live process {} (a session may be writing right now)",
                meta.pid
            ),
        )),
        Err(e) => out.push(err(&lock_path, format!("cannot read lock file: {e}"))),
    }
}

/// Returns true if the journal file exists.
fn check_journal(root: &Path, out: &mut Vec<Diagnostic>) -> bool {
    let journal = Journal::at(root);
    if !journal.exists() {
        return false;
    }
    match journal.read() {
        Ok(st) => {
            if st.torn {
                out.push(
                    unclean(
                        journal.path(),
                        "journal has a torn trailing entry (append cut mid-write)".to_string(),
                    )
                    .with_suggestion("run `histpc store repair` to settle and reset the journal"),
                );
            }
            if let Some(entry) = st.uncommitted() {
                out.push(
                    unclean(
                        journal.path(),
                        format!(
                            "journal ends with an uncommitted intent ({entry:?}) — \
                             a mutation was interrupted"
                        ),
                    )
                    .with_suggestion("run `histpc store repair` to roll it forward or back"),
                );
            }
        }
        Err(e) => out.push(err(journal.path(), format!("cannot read journal: {e}"))),
    }
    true
}

/// Reports manifest problems; returns the manifest when it loaded.
fn check_manifest_presence(
    root: &Path,
    out: &mut Vec<Diagnostic>,
    journal_present: bool,
) -> Option<Manifest> {
    let mpath = root.join(MANIFEST_FILE);
    match Manifest::load(root) {
        Ok(ManifestState::Loaded(m)) => {
            if !journal_present {
                out.push(
                    unclean(
                        &root.join(JOURNAL_FILE),
                        "manifest present but journal missing (control file deleted?)".to_string(),
                    )
                    .with_suggestion("reopen the store to recreate it"),
                );
            }
            Some(m)
        }
        Ok(ManifestState::Damaged(reason)) => {
            out.push(
                unclean(&mpath, format!("manifest is damaged: {reason}"))
                    .with_suggestion("run `histpc store repair` to rebuild it"),
            );
            None
        }
        Ok(ManifestState::Missing) => {
            let has_data = manifest::scan_data_files(root)
                .map(|v| !v.is_empty())
                .unwrap_or(false);
            if has_data {
                out.push(
                    legacy(
                        &mpath,
                        "no manifest: this is a v0 loose-file store".to_string(),
                    )
                    .with_suggestion("run `histpc store migrate` to upgrade it in place"),
                );
            }
            None
        }
        Err(e) => {
            out.push(err(&mpath, format!("cannot read manifest: {e}")));
            None
        }
    }
}

fn check_data_files(root: &Path, out: &mut Vec<Diagnostic>, m: Option<&Manifest>) {
    let entries = match std::fs::read_dir(root) {
        Ok(e) => e,
        Err(e) => {
            out.push(err(root, format!("cannot read store root: {e}")));
            return;
        }
    };
    for entry in entries {
        let Ok(entry) = entry else { continue };
        let Ok(ft) = entry.file_type() else { continue };
        if !ft.is_dir() {
            check_root_file(&entry.path(), out);
            continue;
        }
        if entry.file_name().to_string_lossy() == crate::lease::LEASE_DIR {
            // Daemon control state, not data; orphaned leases are
            // HL035's job (`histpc_history::lease::orphaned_leases_at`).
            continue;
        }
        let dir = entry.path();
        let files = match std::fs::read_dir(&dir) {
            Ok(f) => f,
            Err(e) => {
                out.push(err(&dir, format!("cannot read application directory: {e}")));
                continue;
            }
        };
        for file in files {
            let Ok(file) = file else { continue };
            let name = file.file_name().to_string_lossy().to_string();
            let path = file.path();
            if name.ends_with(".tmp") {
                out.push(
                    unclean(
                        &path,
                        "stray temp file from an interrupted write".to_string(),
                    )
                    .with_suggestion("run `histpc store repair` (or `compact`) to remove it"),
                );
                continue;
            }
            if name.ends_with(".corrupt") {
                out.push(unclean(
                    &path,
                    "quarantined corrupt file from a previous recovery".to_string(),
                ));
                continue;
            }
            if name.ends_with(".record") {
                check_record(&path, out, m.is_some());
            }
            // Other artifacts (.shg, .ckpt, ...) are plain text by
            // design; their integrity is covered by the manifest drift
            // check below.
        }
    }
}

/// Root files are either control files (LOCK/JOURNAL/MANIFEST — checked
/// by their own passes above), *sidecars* (derived caches like `FACTS`
/// and crash-safe accumulators like `TRUST`), or litter. Sidecars are
/// deliberately invisible to integrity checking: each carries its own
/// checksum frame and fails safe to a rebuild/fresh-start on damage, so
/// fsck only names them as skipped. Anything else in the root is a
/// warning — the store never puts data files there.
fn check_root_file(path: &Path, out: &mut Vec<Diagnostic>) {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .unwrap_or_default();
    let base = name.strip_suffix(".tmp").unwrap_or(&name);
    if matches!(base, lock::LOCK_FILE | JOURNAL_FILE | MANIFEST_FILE) {
        return; // control files: covered by their own checks
    }
    if matches!(
        base,
        crate::factcache::FACTCACHE_FILE | crate::trust::TRUST_FILE
    ) {
        out.push(
            Diagnostic::note(
                CODE_UNCLEAN,
                format!("skipped: sidecar ({base} is self-checking and fails safe to a rebuild)"),
            )
            .with_file(path.display().to_string()),
        );
        return;
    }
    out.push(
        unclean(
            path,
            format!("unknown file {name:?} in the store root (not a control file or sidecar)"),
        )
        .with_suggestion("the store never writes data files to its root; remove it by hand"),
    );
}

fn check_record(path: &Path, out: &mut Vec<Diagnostic>, store_is_v1: bool) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            out.push(err(path, format!("cannot read record: {e}")));
            return;
        }
    };
    match frame::decode(&text) {
        Ok(d) => {
            if let Err(e) = parse_record(d.payload()) {
                out.push(
                    err(path, format!("record does not parse: {e}"))
                        .with_suggestion("run `histpc store repair` to salvage or quarantine it"),
                );
                return;
            }
            if !d.is_framed() && store_is_v1 {
                out.push(
                    legacy(
                        path,
                        "record is unframed (no checksum) in a v1 store".to_string(),
                    )
                    .with_suggestion("run `histpc store migrate` to frame it"),
                );
            }
        }
        Err(e) => out.push(
            err(path, format!("integrity check failed: {e}"))
                .with_suggestion("run `histpc store repair` to salvage or quarantine it"),
        ),
    }
}

fn check_manifest_drift(root: &Path, out: &mut Vec<Diagnostic>, m: &Manifest) {
    let on_disk = match manifest::scan_data_files(root) {
        Ok(v) => v,
        Err(e) => {
            out.push(err(root, format!("cannot scan store for drift check: {e}")));
            return;
        }
    };
    for (rel, path) in &on_disk {
        match m.lookup(rel) {
            None => out.push(
                legacy(path, "file is not in the manifest index".to_string())
                    .with_suggestion("run `histpc store repair` (or `compact`) to reindex"),
            ),
            Some(recorded) => {
                let Ok(text) = std::fs::read_to_string(path) else {
                    continue; // already reported by the record walk
                };
                let actual = match frame::decode(&text) {
                    Ok(d) => frame::fnv64(d.payload().as_bytes()),
                    Err(_) => continue, // already an HL023 above
                };
                if actual != recorded {
                    out.push(
                        legacy(
                            path,
                            format!(
                                "manifest drift: index records checksum {recorded:016x}, \
                                 file hashes to {actual:016x} (edited out-of-band?)"
                            ),
                        )
                        .with_suggestion("run `histpc store repair` (or `compact`) to reindex"),
                    );
                }
            }
        }
    }
    for e in &m.entries {
        if !on_disk.iter().any(|(rel, _)| rel == &e.rel_path) {
            out.push(
                legacy(
                    &root.join(&e.rel_path),
                    "file is in the manifest index but missing on disk".to_string(),
                )
                .with_suggestion("run `histpc store repair` (or `compact`) to reindex"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ExecutionStore;
    use histpc_resources::diag::Severity;
    use std::path::PathBuf;

    /// A pid far above any default `pid_max`, so it is never alive.
    const DEAD_PID: u32 = 999_999_999;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histpc-fsck-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn sample_record() -> crate::record::ExecutionRecord {
        use histpc_resources::{Focus, ResourceName, ResourceSpace};
        let mut space = ResourceSpace::new();
        space
            .add_resource(&ResourceName::parse("/Code/a.c/f").unwrap())
            .unwrap();
        crate::record::ExecutionRecord {
            app_name: "poisson".into(),
            app_version: "A".into(),
            label: "a1".into(),
            resources: space
                .hierarchies()
                .iter()
                .flat_map(|h| h.all_names())
                .collect(),
            outcomes: vec![histpc_consultant::NodeOutcome {
                hypothesis: "CPUbound".into(),
                focus: Focus::whole_program(["Code"]),
                outcome: histpc_consultant::Outcome::True,
                first_true_at: Some(histpc_sim::SimTime(5)),
                concluded_at: Some(histpc_sim::SimTime(5)),
                last_value: 0.5,
                samples: 4,
            }],
            thresholds_used: vec![],
            end_time: histpc_sim::SimTime(100),
            pairs_tested: 3,
            unreachable: vec![],
            saturated: vec![],
        }
    }

    fn store_with_record(tag: &str) -> ExecutionStore {
        let store = ExecutionStore::open(tmpdir(tag)).unwrap();
        store.save(&sample_record()).unwrap();
        store
    }

    #[test]
    fn clean_store_has_no_findings() {
        let store = store_with_record("clean");
        let diags = fsck(store.root());
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn checksum_damage_is_hl023() {
        let store = store_with_record("hl023");
        let path = store.root().join("poisson").join("a1.record");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 3]).unwrap();
        let diags = fsck(store.root());
        assert!(codes(&diags).contains(&CODE_INTEGRITY), "got {diags:?}");
        let d = diags.iter().find(|d| d.code == CODE_INTEGRITY).unwrap();
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn stale_lock_and_litter_are_hl024() {
        let store = store_with_record("hl024");
        std::fs::write(
            StoreLock::path_in(store.root()),
            format!("{}\npid {DEAD_PID}\n", lock::LOCK_HEADER),
        )
        .unwrap();
        std::fs::write(store.root().join("poisson").join("zz.record.tmp"), "half").unwrap();
        let diags = fsck(store.root());
        let found = codes(&diags);
        assert_eq!(
            found.iter().filter(|c| **c == CODE_UNCLEAN).count(),
            2,
            "got {diags:?}"
        );
        assert!(diags
            .iter()
            .all(|d| d.severity == Severity::Warning || d.code == CODE_INTEGRITY));
    }

    #[test]
    fn uncommitted_intent_is_hl024() {
        let store = store_with_record("intent");
        Journal::at(store.root())
            .append(&crate::journal::JournalEntry::Del {
                ext: "record".into(),
                app: "poisson".into(),
                label: "a1".into(),
            })
            .unwrap();
        let diags = fsck(store.root());
        assert!(codes(&diags).contains(&CODE_UNCLEAN), "got {diags:?}");
    }

    #[test]
    fn v0_store_and_drift_are_hl025() {
        // A v0 loose-file store: HL025 for the missing manifest and the
        // unframed record is only flagged once migrated... check both
        // halves.
        let dir = tmpdir("hl025");
        let app = dir.join("poisson");
        std::fs::create_dir_all(&app).unwrap();
        std::fs::write(
            app.join("a1.record"),
            crate::format::write_record(&sample_record()),
        )
        .unwrap();
        let diags = fsck(&dir);
        assert_eq!(codes(&diags), vec![CODE_LEGACY], "got {diags:?}");

        // Out-of-band edit after migration: manifest drift.
        let store = ExecutionStore::open(&dir).unwrap();
        store.migrate().unwrap();
        assert!(fsck(&dir).is_empty());
        std::fs::write(app.join("a1.shg"), "added behind the store's back\n").unwrap();
        let diags = fsck(&dir);
        assert_eq!(codes(&diags), vec![CODE_LEGACY], "got {diags:?}");
        assert!(diags[0].message.contains("not in the manifest index"));
    }

    #[test]
    fn lease_dir_is_not_data() {
        // Daemon leases and the epoch counter live under LEASES/; a
        // clean store stays clean with them present (no drift, no
        // legacy findings).
        let store = store_with_record("leases");
        crate::lease::next_epoch(store.root()).unwrap();
        crate::lease::write_lease(
            store.root(),
            &crate::lease::Lease {
                tenant: "t1".into(),
                app: "poisson".into(),
                label: "a1".into(),
                epoch: 1,
                state: "active".into(),
                spec: String::new(),
            },
        )
        .unwrap();
        let diags = fsck(store.root());
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn old_epoch_lock_is_stale_even_with_live_pid() {
        let store = store_with_record("epochlock");
        // Store is at epoch 2; a lock from epoch 1 whose pid is alive
        // (ours, standing in for a reused pid) is a previous daemon
        // incarnation — HL024 stale, not a live holder.
        crate::lease::next_epoch(store.root()).unwrap();
        crate::lease::next_epoch(store.root()).unwrap();
        std::fs::write(
            StoreLock::path_in(store.root()),
            format!(
                "{}\npid {}\nepoch 1\n",
                lock::LOCK_HEADER,
                std::process::id()
            ),
        )
        .unwrap();
        let diags = fsck(store.root());
        let d = diags.iter().find(|d| d.code == CODE_UNCLEAN).unwrap();
        assert!(d.message.contains("daemon epoch 1"), "got {diags:?}");
        assert!(d.message.contains("epoch 2"), "got {diags:?}");
    }

    #[test]
    fn sidecars_are_skipped_and_root_litter_is_flagged() {
        let store = store_with_record("sidecars");
        // Known sidecars — even damaged ones — are listed as skipped
        // notes: each is self-checking and fails safe to a rebuild.
        std::fs::write(store.root().join(crate::trust::TRUST_FILE), "garbage").unwrap();
        std::fs::write(
            store.root().join(crate::factcache::FACTCACHE_FILE),
            "garbage",
        )
        .unwrap();
        let diags = fsck(store.root());
        let notes: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Note)
            .collect();
        assert_eq!(notes.len(), 2, "got {diags:?}");
        assert!(notes.iter().all(|d| d.message.contains("skipped: sidecar")));
        assert!(
            diags.iter().all(|d| d.severity == Severity::Note),
            "sidecar damage must not raise errors or warnings: {diags:?}"
        );

        // An unknown root file is litter: warning, not silence.
        std::fs::write(store.root().join("NOTES.txt"), "scratch").unwrap();
        let diags = fsck(store.root());
        let d = diags
            .iter()
            .find(|d| d.severity == Severity::Warning)
            .expect("unknown root file not flagged");
        assert_eq!(d.code, CODE_UNCLEAN);
        assert!(d.message.contains("NOTES.txt"), "got {diags:?}");
    }

    #[test]
    fn fsck_is_read_only() {
        let store = store_with_record("readonly");
        let path = store.root().join("poisson").join("a1.record");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 3]).unwrap();
        let before = std::fs::read(&path).unwrap();
        let _ = fsck(store.root());
        assert_eq!(std::fs::read(&path).unwrap(), before, "fsck mutated a file");
    }
}
