//! The store manifest: format generation plus an index of every file.
//!
//! `<root>/MANIFEST` is rewritten (atomically) after every committed
//! mutation:
//!
//! ```text
//! histpc-store v1
//! generation 17
//! file 8d2f6a901bc4e713 poisson/a1.record
//! file 03bb5e0f1a2c9d84 poisson/a1.shg
//! ```
//!
//! `generation` counts committed mutations — a cheap "did anything
//! change" signal for tooling. Each `file` line records the FNV-1a 64
//! checksum of the file's *payload* (the text inside the frame for
//! framed records, the whole file for plain artifacts), so `fsck` can
//! detect out-of-band edits and drift between the index and the
//! directory. A store with no manifest is the v0 loose-file layout;
//! it stays loadable and `histpc store migrate` upgrades it in place.

use crate::frame;
use std::io;
use std::path::{Path, PathBuf};

/// Header line of the manifest.
pub const MANIFEST_HEADER: &str = "histpc-store v1";

/// File name of the manifest inside the store root.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// One indexed file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// FNV-1a 64 checksum of the file's payload.
    pub fnv: u64,
    /// Path relative to the store root, `/`-separated
    /// (`<app>/<label>.<ext>`).
    pub rel_path: String,
}

/// Parsed manifest contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Committed-mutation counter.
    pub generation: u64,
    /// Indexed files, kept sorted by `rel_path`.
    pub entries: Vec<ManifestEntry>,
}

/// What loading `<root>/MANIFEST` found.
#[derive(Debug)]
pub enum ManifestState {
    /// No manifest — a v0 loose-file store (or an empty directory).
    Missing,
    /// A manifest file exists but does not parse; recovery rebuilds it.
    Damaged(String),
    /// A valid manifest.
    Loaded(Manifest),
}

impl Manifest {
    /// Serializes to the text form.
    pub fn to_text(&self) -> String {
        let mut out = format!("{MANIFEST_HEADER}\ngeneration {}\n", self.generation);
        for e in &self.entries {
            out.push_str(&format!("file {:016x} {}\n", e.fnv, e.rel_path));
        }
        out
    }

    /// Parses the text form.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut lines = text.lines();
        match lines.next().map(str::trim) {
            Some(MANIFEST_HEADER) => {}
            other => return Err(format!("bad manifest header {other:?}")),
        }
        let mut m = Manifest::default();
        let mut saw_generation = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(g) = line.strip_prefix("generation ") {
                m.generation = g
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad generation {g:?}"))?;
                saw_generation = true;
            } else if let Some(rest) = line.strip_prefix("file ") {
                let (fnv, rel) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("malformed file line {line:?}"))?;
                let fnv =
                    u64::from_str_radix(fnv, 16).map_err(|_| format!("bad checksum {fnv:?}"))?;
                if rel.is_empty() {
                    return Err(format!("malformed file line {line:?}"));
                }
                m.entries.push(ManifestEntry {
                    fnv,
                    rel_path: rel.to_string(),
                });
            } else {
                return Err(format!("unknown manifest line {line:?}"));
            }
        }
        if !saw_generation {
            return Err("missing generation line".into());
        }
        m.entries.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(m)
    }

    /// Loads `<root>/MANIFEST`, distinguishing missing from damaged.
    pub fn load(root: &Path) -> io::Result<ManifestState> {
        match std::fs::read_to_string(root.join(MANIFEST_FILE)) {
            Ok(text) => Ok(match Manifest::parse(&text) {
                Ok(m) => ManifestState::Loaded(m),
                Err(reason) => ManifestState::Damaged(reason),
            }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(ManifestState::Missing),
            Err(e) => Err(e),
        }
    }

    /// Writes `<root>/MANIFEST` atomically (tmp sibling + rename).
    pub fn save(&self, root: &Path) -> io::Result<()> {
        let path = root.join(MANIFEST_FILE);
        let tmp = root.join(format!("{MANIFEST_FILE}.tmp"));
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, &path)
    }

    /// Records (or updates) the checksum for `rel_path`.
    pub fn upsert(&mut self, rel_path: &str, fnv: u64) {
        match self.entries.iter_mut().find(|e| e.rel_path == rel_path) {
            Some(e) => e.fnv = fnv,
            None => {
                self.entries.push(ManifestEntry {
                    fnv,
                    rel_path: rel_path.to_string(),
                });
                self.entries.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
            }
        }
    }

    /// Drops the entry for `rel_path` (no-op if absent).
    pub fn remove(&mut self, rel_path: &str) {
        self.entries.retain(|e| e.rel_path != rel_path);
    }

    /// The recorded checksum for `rel_path`.
    pub fn lookup(&self, rel_path: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.rel_path == rel_path)
            .map(|e| e.fnv)
    }

    /// Rebuilds the index by scanning the store directory: every
    /// `<app>/<label>.<ext>` data file is hashed (frame payload when
    /// framed, whole file otherwise). `.tmp` and `.corrupt` files are
    /// unfinished/quarantined garbage, never indexed. The generation is
    /// preserved by the caller.
    pub fn rebuild_index(&mut self, root: &Path) -> io::Result<()> {
        self.entries.clear();
        for (rel, path) in scan_data_files(root)? {
            let text = std::fs::read_to_string(&path)?;
            let payload_fnv = match frame::decode(&text) {
                Ok(d) => frame::fnv64(d.payload().as_bytes()),
                // Damaged frame: index the raw bytes so the entry at
                // least pins current contents; fsck flags the damage.
                Err(_) => frame::fnv64(text.as_bytes()),
            };
            self.entries.push(ManifestEntry {
                fnv: payload_fnv,
                rel_path: rel,
            });
        }
        self.entries.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Ok(())
    }
}

/// Lists every data file in the store as `(rel_path, abs_path)`, sorted
/// by relative path. Data files live one level down
/// (`<app>/<label>.<ext>`); `.tmp`/`.corrupt` suffixes, the top-level
/// control files, and the daemon's `LEASES/` control directory are
/// excluded.
pub fn scan_data_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let app = entry.file_name().to_string_lossy().to_string();
        if app == crate::lease::LEASE_DIR {
            continue;
        }
        for file in std::fs::read_dir(entry.path())? {
            let file = file?;
            if !file.file_type()?.is_file() {
                continue;
            }
            let name = file.file_name().to_string_lossy().to_string();
            if name.ends_with(".tmp") || name.ends_with(".corrupt") {
                continue;
            }
            out.push((format!("{app}/{name}"), file.path()));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histpc-manifest-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn text_roundtrip() {
        let mut m = Manifest {
            generation: 17,
            entries: Vec::new(),
        };
        m.upsert("poisson/a1.record", 0x8d2f);
        m.upsert("ocean/o1.record", 0x03bb);
        let parsed = Manifest::parse(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.entries[0].rel_path, "ocean/o1.record"); // sorted
        assert_eq!(parsed.lookup("poisson/a1.record"), Some(0x8d2f));
        assert_eq!(parsed.lookup("nope"), None);
    }

    #[test]
    fn parse_rejects_damage() {
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("histpc-store v1\n").is_err()); // no generation
        assert!(Manifest::parse("histpc-store v1\ngeneration x\n").is_err());
        assert!(Manifest::parse("histpc-store v1\ngeneration 1\nfile zz a\n").is_err());
        assert!(Manifest::parse("histpc-store v1\ngeneration 1\nwhat 1\n").is_err());
    }

    #[test]
    fn load_distinguishes_missing_and_damaged() {
        let root = scratch("states");
        assert!(matches!(
            Manifest::load(&root).unwrap(),
            ManifestState::Missing
        ));
        std::fs::write(root.join(MANIFEST_FILE), "garbage\n").unwrap();
        assert!(matches!(
            Manifest::load(&root).unwrap(),
            ManifestState::Damaged(_)
        ));
        let m = Manifest {
            generation: 3,
            entries: Vec::new(),
        };
        m.save(&root).unwrap();
        match Manifest::load(&root).unwrap() {
            ManifestState::Loaded(l) => assert_eq!(l.generation, 3),
            other => panic!("expected loaded, got {other:?}"),
        }
        assert!(!root.join("MANIFEST.tmp").exists());
    }

    #[test]
    fn upsert_remove() {
        let mut m = Manifest::default();
        m.upsert("a/x.record", 1);
        m.upsert("a/x.record", 2);
        assert_eq!(m.entries.len(), 1);
        assert_eq!(m.lookup("a/x.record"), Some(2));
        m.remove("a/x.record");
        assert!(m.entries.is_empty());
    }

    #[test]
    fn rebuild_skips_tmp_and_corrupt() {
        let root = scratch("rebuild");
        let app = root.join("poisson");
        std::fs::create_dir_all(&app).unwrap();
        std::fs::write(app.join("a1.record"), frame::encode("payload\n")).unwrap();
        std::fs::write(app.join("a1.shg"), "graph\n").unwrap();
        std::fs::write(app.join("a2.record.tmp"), "half").unwrap();
        std::fs::write(app.join("a3.record.corrupt"), "bad").unwrap();
        // Daemon control state is not data: LEASES/ never indexes.
        let leases = root.join(crate::lease::LEASE_DIR);
        std::fs::create_dir_all(&leases).unwrap();
        std::fs::write(leases.join("t1--x-00000000.lease"), "lease").unwrap();
        let mut m = Manifest::default();
        m.rebuild_index(&root).unwrap();
        let rels: Vec<&str> = m.entries.iter().map(|e| e.rel_path.as_str()).collect();
        assert_eq!(rels, vec!["poisson/a1.record", "poisson/a1.shg"]);
        assert_eq!(
            m.lookup("poisson/a1.record"),
            Some(frame::fnv64(b"payload\n"))
        );
        assert_eq!(m.lookup("poisson/a1.shg"), Some(frame::fnv64(b"graph\n")));
    }
}
