//! Line-oriented text (de)serialization of execution records.
//!
//! The format is deliberately plain text — like the paper's directive and
//! mapping input files — so stored runs are human-readable and diffable:
//!
//! ```text
//! histpc-record v1
//! app poisson
//! version A
//! label a1
//! end_time_us 27000000
//! pairs_tested 753
//! resource /Code/oned.f/main
//! threshold ExcessiveSyncWaitingTime 0.2
//! unreachable /Machine/node09
//! outcome true 2250000 2250000 0.725 ExcessiveSyncWaitingTime </Code,/Machine,/Process,/SyncObject> 12
//! outcome false - 3000000 0.010 ExcessiveIOBlockingTime </Code,/Machine,/Process,/SyncObject> 12
//! ```
//!
//! The trailing observed-sample count on `outcome` lines is optional on
//! input (records written before fault injection existed omit it and
//! parse as 0 samples).

use crate::record::ExecutionRecord;
use histpc_consultant::{NodeOutcome, Outcome};
use histpc_resources::{Focus, ResourceName};
use histpc_sim::SimTime;
use std::fmt;

/// Errors while parsing a record file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line number (0 for structural problems).
    pub line: usize,
    /// Why parsing failed.
    pub reason: String,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "record parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for FormatError {}

fn err(line: usize, reason: impl Into<String>) -> FormatError {
    FormatError {
        line,
        reason: reason.into(),
    }
}

/// Serializes a record to the text form.
pub fn write_record(rec: &ExecutionRecord) -> String {
    let mut out = String::from("histpc-record v1\n");
    out.push_str(&format!("app {}\n", rec.app_name));
    // An empty value would serialize to a bare keyword the parser
    // rejects; a salvaged record can legitimately have lost these.
    if !rec.app_version.is_empty() {
        out.push_str(&format!("version {}\n", rec.app_version));
    }
    if !rec.label.is_empty() {
        out.push_str(&format!("label {}\n", rec.label));
    }
    out.push_str(&format!("end_time_us {}\n", rec.end_time.as_micros()));
    out.push_str(&format!("pairs_tested {}\n", rec.pairs_tested));
    for r in &rec.resources {
        out.push_str(&format!("resource {r}\n"));
    }
    for (h, v) in &rec.thresholds_used {
        out.push_str(&format!("threshold {h} {v}\n"));
    }
    for u in &rec.unreachable {
        out.push_str(&format!("unreachable {u}\n"));
    }
    for s in &rec.saturated {
        out.push_str(&format!("saturated {s}\n"));
    }
    for o in &rec.outcomes {
        let first = o
            .first_true_at
            .map(|t| t.as_micros().to_string())
            .unwrap_or_else(|| "-".into());
        let concluded = o
            .concluded_at
            .map(|t| t.as_micros().to_string())
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "outcome {} {} {} {} {} {} {}\n",
            o.outcome.name(),
            first,
            concluded,
            o.last_value,
            o.hypothesis,
            o.focus,
            o.samples
        ));
    }
    out
}

fn parse_opt_time(word: &str, line: usize) -> Result<Option<SimTime>, FormatError> {
    if word == "-" {
        Ok(None)
    } else {
        word.parse::<u64>()
            .map(|us| Some(SimTime(us)))
            .map_err(|_| err(line, format!("bad timestamp {word:?}")))
    }
}

/// Parses the text form back into a record.
pub fn parse_record(text: &str) -> Result<ExecutionRecord, FormatError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(0, "empty record file"))?;
    if header.trim() != "histpc-record v1" {
        return Err(err(1, format!("bad header {header:?}")));
    }
    let mut rec = ExecutionRecord {
        app_name: String::new(),
        app_version: String::new(),
        label: String::new(),
        resources: Vec::new(),
        outcomes: Vec::new(),
        thresholds_used: Vec::new(),
        end_time: SimTime::ZERO,
        pairs_tested: 0,
        unreachable: Vec::new(),
        saturated: Vec::new(),
    };
    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (kind, rest) = line
            .split_once(' ')
            .ok_or_else(|| err(lineno, format!("malformed line {line:?}")))?;
        match kind {
            "app" => rec.app_name = rest.to_string(),
            "version" => rec.app_version = rest.to_string(),
            "label" => rec.label = rest.to_string(),
            "end_time_us" => {
                rec.end_time = SimTime(rest.parse().map_err(|_| err(lineno, "bad end_time_us"))?)
            }
            "pairs_tested" => {
                rec.pairs_tested = rest.parse().map_err(|_| err(lineno, "bad pairs_tested"))?
            }
            "resource" => rec.resources.push(
                ResourceName::parse(rest).map_err(|e| err(lineno, format!("bad resource: {e}")))?,
            ),
            "threshold" => {
                let (h, v) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(lineno, "threshold needs hypothesis and value"))?;
                rec.thresholds_used.push((
                    h.to_string(),
                    v.parse().map_err(|_| err(lineno, "bad threshold value"))?,
                ));
            }
            "outcome" => {
                let words: Vec<&str> = rest.split_whitespace().collect();
                if words.len() != 6 && words.len() != 7 {
                    return Err(err(lineno, "outcome needs 6 or 7 fields"));
                }
                let outcome = Outcome::from_name(words[0])
                    .ok_or_else(|| err(lineno, format!("bad outcome {:?}", words[0])))?;
                let samples = match words.get(6) {
                    Some(w) => w
                        .parse::<u64>()
                        .map_err(|_| err(lineno, "bad sample count"))?,
                    None => 0,
                };
                rec.outcomes.push(NodeOutcome {
                    outcome,
                    first_true_at: parse_opt_time(words[1], lineno)?,
                    concluded_at: parse_opt_time(words[2], lineno)?,
                    last_value: words[3].parse().map_err(|_| err(lineno, "bad value"))?,
                    hypothesis: words[4].to_string(),
                    focus: Focus::parse(words[5])
                        .map_err(|e| err(lineno, format!("bad focus: {e}")))?,
                    samples,
                });
            }
            "unreachable" => rec.unreachable.push(
                ResourceName::parse(rest)
                    .map_err(|e| err(lineno, format!("bad unreachable resource: {e}")))?,
            ),
            "saturated" => rec.saturated.push(
                ResourceName::parse(rest)
                    .map_err(|e| err(lineno, format!("bad saturated resource: {e}")))?,
            ),
            _ => return Err(err(lineno, format!("unknown line kind {kind:?}"))),
        }
    }
    if rec.app_name.is_empty() {
        return Err(err(0, "missing app line"));
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_resources::ResourceSpace;

    fn sample() -> ExecutionRecord {
        let mut space = ResourceSpace::new();
        for r in [
            "/Code/a.c/f",
            "/Process/p1",
            "/Machine/n1",
            "/SyncObject/Message/3_-1",
        ] {
            space
                .add_resource(&ResourceName::parse(r).unwrap())
                .unwrap();
        }
        let wp = space.whole_program();
        ExecutionRecord {
            app_name: "poisson".into(),
            app_version: "A".into(),
            label: "a1".into(),
            resources: space
                .hierarchies()
                .iter()
                .flat_map(|h| h.all_names())
                .collect(),
            outcomes: vec![
                NodeOutcome {
                    hypothesis: "ExcessiveSyncWaitingTime".into(),
                    focus: wp.clone(),
                    outcome: Outcome::True,
                    first_true_at: Some(SimTime(2_250_000)),
                    concluded_at: Some(SimTime(2_250_000)),
                    last_value: 0.725,
                    samples: 12,
                },
                NodeOutcome {
                    hypothesis: "ExcessiveIOBlockingTime".into(),
                    focus: wp.with_selection(ResourceName::parse("/Code/a.c").unwrap()),
                    outcome: Outcome::False,
                    first_true_at: None,
                    concluded_at: Some(SimTime(3_000_000)),
                    last_value: 0.01,
                    samples: 12,
                },
                NodeOutcome {
                    hypothesis: "CPUbound".into(),
                    focus: wp.clone(),
                    outcome: Outcome::Pruned,
                    first_true_at: None,
                    concluded_at: None,
                    last_value: 0.0,
                    samples: 0,
                },
            ],
            thresholds_used: vec![("ExcessiveSyncWaitingTime".into(), 0.12)],
            end_time: SimTime(27_000_000),
            pairs_tested: 753,
            unreachable: vec![ResourceName::parse("/Machine/n1").unwrap()],
            saturated: vec![ResourceName::parse("/Process/p1").unwrap()],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let rec = sample();
        let text = write_record(&rec);
        let parsed = parse_record(&text).unwrap();
        assert_eq!(parsed.app_name, rec.app_name);
        assert_eq!(parsed.app_version, rec.app_version);
        assert_eq!(parsed.label, rec.label);
        assert_eq!(parsed.end_time, rec.end_time);
        assert_eq!(parsed.pairs_tested, rec.pairs_tested);
        assert_eq!(parsed.resources, rec.resources);
        assert_eq!(parsed.outcomes, rec.outcomes);
        assert_eq!(parsed.thresholds_used, rec.thresholds_used);
        assert_eq!(parsed.unreachable, rec.unreachable);
        assert_eq!(parsed.saturated, rec.saturated);
    }

    #[test]
    fn six_field_outcome_parses_with_zero_samples() {
        // Records written before fault injection existed have no trailing
        // sample count; they must still load.
        let text = "histpc-record v1\napp x\noutcome true 1 1 0.5 CPUbound </Code>\n";
        let rec = parse_record(text).unwrap();
        assert_eq!(rec.outcomes.len(), 1);
        assert_eq!(rec.outcomes[0].samples, 0);
        assert!(parse_record(
            "histpc-record v1\napp x\noutcome true 1 1 0.5 CPUbound </Code> many\n"
        )
        .is_err());
        assert!(parse_record("histpc-record v1\napp x\nunreachable Machine/n1\n").is_err());
        assert!(parse_record("histpc-record v1\napp x\nsaturated Process/p1\n").is_err());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_record("").is_err());
        assert!(parse_record("something else\n").is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        let base = "histpc-record v1\napp x\n";
        for bad in [
            "outcome yes - - 0.1 H </Code>",
            "outcome true - - zero H </Code>",
            "outcome true - - 0.1 H notafocus",
            "resource Code/x",
            "threshold onlyhyp",
            "frobnicate 1",
        ] {
            let text = format!("{base}{bad}\n");
            assert!(parse_record(&text).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn requires_app_name() {
        assert!(parse_record("histpc-record v1\nlabel x\n").is_err());
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "histpc-record v1\napp x\n\n# note\nversion 2\n";
        let rec = parse_record(text).unwrap();
        assert_eq!(rec.app_version, "2");
    }
}
