//! Advisory store locking.
//!
//! Mutations take `<root>/LOCK`, created with `O_CREAT|O_EXCL` so exactly
//! one writer wins. The file names its holder:
//!
//! ```text
//! histpc-lock v1
//! pid 41172
//! ```
//!
//! A crashed holder leaves the file behind; acquisition (and `fsck`)
//! detects staleness by checking `/proc/<pid>` and breaks dead locks
//! automatically. Contention against a *live* holder retries briefly —
//! store mutations are millisecond-scale — and then fails with
//! [`LockError::Held`] rather than deadlocking two sessions.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Header line of the lock file.
pub const LOCK_HEADER: &str = "histpc-lock v1";

/// File name of the lock inside the store root.
pub const LOCK_FILE: &str = "LOCK";

const RETRY_EVERY: Duration = Duration::from_millis(25);
const GIVE_UP_AFTER: Duration = Duration::from_secs(2);

/// Why the lock could not be taken.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the lock.
    Held {
        /// Its pid (0 if the lock file was unreadable).
        pid: u32,
    },
    /// Filesystem failure.
    Io(io::Error),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Held { pid } => {
                write!(f, "store is locked by live process {pid}")
            }
            LockError::Io(e) => write!(f, "store lock I/O error: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

impl From<io::Error> for LockError {
    fn from(e: io::Error) -> Self {
        LockError::Io(e)
    }
}

/// True if `pid` names a live process. Uses `/proc`; on systems without
/// procfs the holder is conservatively assumed alive (a stale lock then
/// needs `histpc store repair --force-unlock` — better than two writers).
pub fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if proc_root.exists() {
        proc_root.join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Reads the pid recorded in a lock file. `Ok(None)` if the file does
/// not exist; a malformed file reads as pid 0 (unknown, treated stale).
pub fn read_holder(lock_path: &Path) -> io::Result<Option<u32>> {
    match std::fs::read_to_string(lock_path) {
        Ok(text) => {
            let mut lines = text.lines();
            let header_ok = lines.next().map(str::trim) == Some(LOCK_HEADER);
            let pid = lines
                .next()
                .and_then(|l| l.trim().strip_prefix("pid "))
                .and_then(|p| p.trim().parse().ok());
            Ok(Some(if header_ok { pid.unwrap_or(0) } else { 0 }))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// A held store lock; released (file removed) on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Path of the lock file for a store rooted at `root`.
    pub fn path_in(root: &Path) -> PathBuf {
        root.join(LOCK_FILE)
    }

    /// Acquires the store lock, breaking stale (dead-holder) locks and
    /// briefly waiting out live holders.
    pub fn acquire(root: &Path) -> Result<StoreLock, LockError> {
        let path = Self::path_in(root);
        // det-audit: allow(wall-clock) — lock give-up deadline; never
        // feeds recorded data, only bounds how long we wait for a peer.
        let deadline = std::time::Instant::now() + GIVE_UP_AFTER;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use std::io::Write;
                    write!(f, "{LOCK_HEADER}\npid {}\n", std::process::id())?;
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = read_holder(&path)?.unwrap_or(0);
                    if holder == 0 || !pid_alive(holder) {
                        // Dead (or unidentifiable) holder: break the lock
                        // and race for it again. remove_file losing the
                        // race to another breaker is fine.
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    // det-audit: allow(wall-clock) — same deadline check.
                    if std::time::Instant::now() >= deadline {
                        return Err(LockError::Held { pid: holder });
                    }
                    std::thread::sleep(RETRY_EVERY);
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pid far above any default `pid_max`, so it is never alive.
    pub(crate) const DEAD_PID: u32 = 999_999_999;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histpc-lock-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_writes_and_drop_removes() {
        let root = scratch("basic");
        let lock = StoreLock::acquire(&root).unwrap();
        let path = StoreLock::path_in(&root);
        assert!(path.exists());
        assert_eq!(
            read_holder(&path).unwrap(),
            Some(std::process::id()),
            "lock names this process"
        );
        drop(lock);
        assert!(!path.exists());
    }

    #[test]
    fn stale_lock_is_broken() {
        let root = scratch("stale");
        let path = StoreLock::path_in(&root);
        std::fs::write(&path, format!("{LOCK_HEADER}\npid {DEAD_PID}\n")).unwrap();
        let _lock = StoreLock::acquire(&root).unwrap();
        assert_eq!(read_holder(&path).unwrap(), Some(std::process::id()));
    }

    #[test]
    fn garbage_lock_file_is_broken() {
        let root = scratch("garbage");
        std::fs::write(StoreLock::path_in(&root), "not a lock\n").unwrap();
        assert!(StoreLock::acquire(&root).is_ok());
    }

    #[test]
    fn live_holder_blocks_until_released() {
        let root = scratch("live");
        let lock = StoreLock::acquire(&root).unwrap();
        // Same pid counts as alive, so a second acquire waits; release
        // from another thread lets it through well before the deadline.
        std::thread::scope(|s| {
            let r = &root;
            let h = s.spawn(move || StoreLock::acquire(r).map(|_| ()));
            std::thread::sleep(Duration::from_millis(80));
            drop(lock);
            h.join().unwrap().unwrap();
        });
    }

    #[test]
    fn pid_alive_sanity() {
        assert!(pid_alive(std::process::id()));
        if Path::new("/proc").exists() {
            assert!(!pid_alive(DEAD_PID));
        }
    }
}
