//! Advisory store locking.
//!
//! Mutations take `<root>/LOCK`, created with `O_CREAT|O_EXCL` so exactly
//! one writer wins. The file names its holder:
//!
//! ```text
//! histpc-lock v1
//! pid 41172
//! epoch 7
//! ```
//!
//! A crashed holder leaves the file behind; acquisition (and `fsck`)
//! detects staleness by checking `/proc/<pid>` and breaks dead locks
//! automatically. Contention against a *live* holder retries briefly —
//! store mutations are millisecond-scale — and then fails with
//! [`LockError::Held`] rather than deadlocking two sessions.
//!
//! The optional `epoch` line is written by daemon incarnations (see
//! [`set_lease_epoch`]). PID liveness alone cannot tell a daemon's *own
//! pre-crash* lock apart from a live foreign holder when the OS reuses
//! the pid; a monotonic per-store lease epoch can. A holder whose
//! recorded epoch is *older* than the current process epoch is a
//! previous incarnation on the same store and is broken as stale even
//! if its pid happens to name a live (reused) process. Plain CLI
//! sessions never set an epoch and are judged by pid liveness alone.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Header line of the lock file.
pub const LOCK_HEADER: &str = "histpc-lock v1";

/// File name of the lock inside the store root.
pub const LOCK_FILE: &str = "LOCK";

const RETRY_EVERY: Duration = Duration::from_millis(25);
const GIVE_UP_AFTER: Duration = Duration::from_secs(2);

/// Distinguishes concurrent acquires (tomb names, backoff decorrelation)
/// within one process, where the pid alone cannot.
static ACQUIRE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The current process's lease epoch; 0 means "unset" (plain CLI
/// session). Stamped into every lock file this process writes.
static LEASE_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Declares this process's monotonic lease epoch (a daemon incarnation
/// number, persisted per store and bumped on every daemon start). Locks
/// written afterwards carry an `epoch N` line, and [`StoreLock::acquire`]
/// treats any holder with a *strictly older* epoch as stale — a previous
/// incarnation of the daemon on this store — even if its pid was reused
/// by a live process. Passing 0 clears the epoch.
pub fn set_lease_epoch(epoch: u64) {
    LEASE_EPOCH.store(epoch, std::sync::atomic::Ordering::SeqCst);
}

/// The lease epoch declared via [`set_lease_epoch`], if any.
pub fn lease_epoch() -> Option<u64> {
    match LEASE_EPOCH.load(std::sync::atomic::Ordering::SeqCst) {
        0 => None,
        e => Some(e),
    }
}

/// Deterministic decorrelated backoff: derived from the pid and a
/// per-acquire nonce (never a wall clock or RNG), so two waiters that
/// both just broke the same dead lock re-race at different times
/// instead of stampeding `create_new` in lockstep.
fn jittered(nonce: u64, attempt: u32) -> Duration {
    let salt = (u64::from(std::process::id()) ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .rotate_left(attempt % 63);
    let cap_us = 1_000 * u64::from(attempt.min(4) + 1);
    RETRY_EVERY / 5 + Duration::from_micros(salt % cap_us)
}

/// Why the lock could not be taken.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the lock.
    Held {
        /// Its pid (0 if the lock file was unreadable).
        pid: u32,
    },
    /// Filesystem failure.
    Io(io::Error),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Held { pid } => {
                write!(f, "store is locked by live process {pid}")
            }
            LockError::Io(e) => write!(f, "store lock I/O error: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

impl From<io::Error> for LockError {
    fn from(e: io::Error) -> Self {
        LockError::Io(e)
    }
}

/// True if `pid` names a live process. Uses `/proc`; on systems without
/// procfs the holder is conservatively assumed alive (a stale lock then
/// needs `histpc store repair --force-unlock` — better than two writers).
pub fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if proc_root.exists() {
        proc_root.join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Who a lock file says holds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HolderMeta {
    /// Holder pid; 0 if the file was malformed (unknown, treated stale).
    pub pid: u32,
    /// Lease epoch the holder declared, if any (daemon incarnations
    /// only; plain CLI locks carry no epoch line).
    pub epoch: Option<u64>,
}

/// Reads the pid recorded in a lock file. `Ok(None)` if the file does
/// not exist; a malformed file reads as pid 0 (unknown, treated stale).
pub fn read_holder(lock_path: &Path) -> io::Result<Option<u32>> {
    Ok(read_holder_meta(lock_path)?.map(|m| m.pid))
}

/// Reads the full holder metadata (pid + optional lease epoch) from a
/// lock file. `Ok(None)` if the file does not exist; a malformed file
/// reads as pid 0 with no epoch.
pub fn read_holder_meta(lock_path: &Path) -> io::Result<Option<HolderMeta>> {
    match std::fs::read_to_string(lock_path) {
        Ok(text) => {
            let mut lines = text.lines();
            let header_ok = lines.next().map(str::trim) == Some(LOCK_HEADER);
            if !header_ok {
                return Ok(Some(HolderMeta {
                    pid: 0,
                    epoch: None,
                }));
            }
            let mut pid = None;
            let mut epoch = None;
            for line in lines {
                let line = line.trim();
                if let Some(p) = line.strip_prefix("pid ") {
                    pid = p.trim().parse().ok();
                } else if let Some(e) = line.strip_prefix("epoch ") {
                    epoch = e.trim().parse().ok();
                }
            }
            Ok(Some(HolderMeta {
                pid: pid.unwrap_or(0),
                epoch,
            }))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// True if this holder should be treated as stale and broken: an
/// unidentifiable or dead pid, or a declared epoch strictly older than
/// this process's own lease epoch (a previous daemon incarnation whose
/// pid may have been reused by an unrelated live process).
pub fn holder_is_stale(meta: HolderMeta) -> bool {
    holder_stale_for(meta, lease_epoch())
}

/// [`holder_is_stale`] against an explicit epoch instead of the
/// process-global one. A holder is stale when its pid is unidentifiable
/// or dead, or when both sides declare an epoch and the holder's is
/// strictly older. A holder without an epoch line (plain CLI session)
/// is judged by pid liveness alone.
pub fn holder_stale_for(meta: HolderMeta, ours: Option<u64>) -> bool {
    if meta.pid == 0 || !pid_alive(meta.pid) {
        return true;
    }
    match (meta.epoch, ours) {
        (Some(theirs), Some(ours)) => theirs < ours,
        _ => false,
    }
}

/// A held store lock; released (file removed) on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Path of the lock file for a store rooted at `root`.
    pub fn path_in(root: &Path) -> PathBuf {
        root.join(LOCK_FILE)
    }

    /// Acquires the store lock, breaking stale (dead-holder) locks and
    /// briefly waiting out live holders.
    ///
    /// Dead-holder breaking is hardened against the two-breaker race
    /// (both waiters read the same dead pid and break "the" lock
    /// concurrently, the slower one destroying the faster one's fresh
    /// claim): a break renames the dead file to a per-acquire tomb
    /// instead of unlinking the shared path — so a given lock
    /// *generation* can only be broken once — and the breaker re-checks
    /// the tomb's holder after the rename, restoring a live lock it
    /// stole by mistake. Every successful `create_new` is then
    /// re-verified by reading the holder back; a claim that no longer
    /// names us was broken in the window and we retry with jittered
    /// backoff rather than assume ownership.
    pub fn acquire(root: &Path) -> Result<StoreLock, LockError> {
        let path = Self::path_in(root);
        let nonce = ACQUIRE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let me = std::process::id();
        // det-audit: allow(wall-clock) — lock give-up deadline; never
        // feeds recorded data, only bounds how long we wait for a peer.
        let deadline = std::time::Instant::now() + GIVE_UP_AFTER;
        let mut attempt: u32 = 0;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use std::io::Write;
                    match lease_epoch() {
                        Some(e) => write!(f, "{LOCK_HEADER}\npid {me}\nepoch {e}\n")?,
                        None => write!(f, "{LOCK_HEADER}\npid {me}\n")?,
                    }
                    f.sync_all()?;
                    drop(f);
                    // Generation re-check: a waiter that read the
                    // previous (dead) holder may have broken our fresh
                    // claim in the window. Only the claim the file
                    // still names is the real one.
                    if read_holder(&path)?.unwrap_or(0) == me {
                        return Ok(StoreLock { path });
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let meta = read_holder_meta(&path)?.unwrap_or(HolderMeta {
                        pid: 0,
                        epoch: None,
                    });
                    let holder = meta.pid;
                    if holder_is_stale(meta) {
                        // Dead (or unidentifiable) holder: break this
                        // lock generation by renaming it aside. Exactly
                        // one breaker's rename succeeds; the losers see
                        // NotFound and simply re-race.
                        let tomb = path.with_extension(format!("broken.{me}.{nonce}"));
                        if std::fs::rename(&path, &tomb).is_ok() {
                            // Re-check what we actually broke: if a
                            // racing waiter already broke the dead lock
                            // and re-acquired, the file we renamed is
                            // its live claim — give it back. hard_link
                            // refuses to clobber a newer claim, and the
                            // victim's own post-create re-check covers
                            // the remainder.
                            let stolen = read_holder_meta(&tomb)
                                .ok()
                                .flatten()
                                .is_some_and(|m| !holder_is_stale(m));
                            if stolen {
                                let _ = std::fs::hard_link(&tomb, &path);
                            }
                            let _ = std::fs::remove_file(&tomb);
                        }
                    } else {
                        // det-audit: allow(wall-clock) — same deadline check.
                        if std::time::Instant::now() >= deadline {
                            return Err(LockError::Held { pid: holder });
                        }
                        std::thread::sleep(RETRY_EVERY);
                        continue;
                    }
                }
                Err(e) => return Err(LockError::Io(e)),
            }
            // Broken a lock or lost our claim: back off a decorrelated
            // few milliseconds before re-racing `create_new`.
            attempt += 1;
            std::thread::sleep(jittered(nonce, attempt));
        }
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Release only the claim that is actually ours: if a breaker
        // stole this generation despite the re-checks, the path now
        // names the new holder and removing it would unlock a peer.
        match read_holder(&self.path) {
            Ok(Some(pid)) if pid == std::process::id() => {
                let _ = std::fs::remove_file(&self.path);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pid far above any default `pid_max`, so it is never alive.
    pub(crate) const DEAD_PID: u32 = 999_999_999;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histpc-lock-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_writes_and_drop_removes() {
        let root = scratch("basic");
        let lock = StoreLock::acquire(&root).unwrap();
        let path = StoreLock::path_in(&root);
        assert!(path.exists());
        assert_eq!(
            read_holder(&path).unwrap(),
            Some(std::process::id()),
            "lock names this process"
        );
        drop(lock);
        assert!(!path.exists());
    }

    #[test]
    fn stale_lock_is_broken() {
        let root = scratch("stale");
        let path = StoreLock::path_in(&root);
        std::fs::write(&path, format!("{LOCK_HEADER}\npid {DEAD_PID}\n")).unwrap();
        let _lock = StoreLock::acquire(&root).unwrap();
        assert_eq!(read_holder(&path).unwrap(), Some(std::process::id()));
    }

    #[test]
    fn garbage_lock_file_is_broken() {
        let root = scratch("garbage");
        std::fs::write(StoreLock::path_in(&root), "not a lock\n").unwrap();
        assert!(StoreLock::acquire(&root).is_ok());
    }

    #[test]
    fn live_holder_blocks_until_released() {
        let root = scratch("live");
        let lock = StoreLock::acquire(&root).unwrap();
        // Same pid counts as alive, so a second acquire waits; release
        // from another thread lets it through well before the deadline.
        std::thread::scope(|s| {
            let r = &root;
            let h = s.spawn(move || StoreLock::acquire(r).map(|_| ()));
            std::thread::sleep(Duration::from_millis(80));
            drop(lock);
            h.join().unwrap().unwrap();
        });
    }

    #[test]
    fn two_waiters_breaking_one_dead_lock_stay_mutually_exclusive() {
        // Both threads find the same dead-holder lock and race to break
        // it, repeatedly. The generation re-check must leave exactly one
        // holder at a time: an AtomicBool guards the critical section
        // and trips if both threads ever hold the lock together.
        use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
        let root = scratch("race");
        let path = StoreLock::path_in(&root);
        let in_critical = AtomicBool::new(false);
        let acquisitions = AtomicU32::new(0);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..2 {
                let (root, path) = (&root, &path);
                let (in_critical, acquisitions) = (&in_critical, &acquisitions);
                handles.push(s.spawn(move || {
                    for round in 0..20 {
                        let lock = StoreLock::acquire(root).expect("acquire");
                        assert!(
                            !in_critical.swap(true, Ordering::SeqCst),
                            "two threads held the store lock at once"
                        );
                        std::thread::sleep(Duration::from_micros(200));
                        in_critical.store(false, Ordering::SeqCst);
                        acquisitions.fetch_add(1, Ordering::SeqCst);
                        // Every few rounds, "crash" while holding: the
                        // release is skipped (the file no longer names
                        // us) and both waiters must race to break the
                        // dead generation left behind.
                        if round % 3 == 0 {
                            let _ =
                                std::fs::write(path, format!("{LOCK_HEADER}\npid {DEAD_PID}\n"));
                        }
                        drop(lock);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(acquisitions.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn lost_claim_is_not_released_by_drop() {
        // If a breaker replaces our lock file with its own claim, our
        // drop must not remove the new holder's file.
        let root = scratch("lostclaim");
        let path = StoreLock::path_in(&root);
        let lock = StoreLock::acquire(&root).unwrap();
        std::fs::write(&path, format!("{LOCK_HEADER}\npid {DEAD_PID}\n")).unwrap();
        drop(lock);
        assert!(path.exists(), "drop removed a claim that was not ours");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pid_alive_sanity() {
        assert!(pid_alive(std::process::id()));
        if Path::new("/proc").exists() {
            assert!(!pid_alive(DEAD_PID));
        }
    }

    #[test]
    fn holder_meta_parses_with_and_without_epoch() {
        let root = scratch("meta");
        let path = StoreLock::path_in(&root);
        std::fs::write(&path, format!("{LOCK_HEADER}\npid 41172\n")).unwrap();
        assert_eq!(
            read_holder_meta(&path).unwrap(),
            Some(HolderMeta {
                pid: 41172,
                epoch: None
            })
        );
        std::fs::write(&path, format!("{LOCK_HEADER}\npid 41172\nepoch 7\n")).unwrap();
        assert_eq!(
            read_holder_meta(&path).unwrap(),
            Some(HolderMeta {
                pid: 41172,
                epoch: Some(7)
            })
        );
        assert_eq!(read_holder(&path).unwrap(), Some(41172));
        std::fs::write(&path, "not a lock\n").unwrap();
        assert_eq!(
            read_holder_meta(&path).unwrap(),
            Some(HolderMeta {
                pid: 0,
                epoch: None
            })
        );
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_holder_meta(&path).unwrap(), None);
    }

    #[test]
    fn epoch_staleness_rules() {
        let me = std::process::id();
        let live = |epoch| HolderMeta { pid: me, epoch };
        // A live holder with no epoch is never epoch-stale.
        assert!(!holder_stale_for(live(None), None));
        assert!(!holder_stale_for(live(None), Some(9)));
        // Same or newer epoch: live. Strictly older: a previous
        // incarnation — stale even though the pid is alive.
        assert!(!holder_stale_for(live(Some(3)), Some(3)));
        assert!(!holder_stale_for(live(Some(4)), Some(3)));
        assert!(holder_stale_for(live(Some(2)), Some(3)));
        // Without a local epoch, a holder epoch is ignored.
        assert!(!holder_stale_for(live(Some(2)), None));
        // Dead or unknown pids stay stale regardless of epoch.
        assert!(holder_stale_for(
            HolderMeta {
                pid: DEAD_PID,
                epoch: Some(99)
            },
            None
        ));
        assert!(holder_stale_for(
            HolderMeta {
                pid: 0,
                epoch: None
            },
            None
        ));
    }
}
