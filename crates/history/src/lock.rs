//! Advisory store locking.
//!
//! Mutations take `<root>/LOCK`, created with `O_CREAT|O_EXCL` so exactly
//! one writer wins. The file names its holder:
//!
//! ```text
//! histpc-lock v1
//! pid 41172
//! ```
//!
//! A crashed holder leaves the file behind; acquisition (and `fsck`)
//! detects staleness by checking `/proc/<pid>` and breaks dead locks
//! automatically. Contention against a *live* holder retries briefly —
//! store mutations are millisecond-scale — and then fails with
//! [`LockError::Held`] rather than deadlocking two sessions.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Header line of the lock file.
pub const LOCK_HEADER: &str = "histpc-lock v1";

/// File name of the lock inside the store root.
pub const LOCK_FILE: &str = "LOCK";

const RETRY_EVERY: Duration = Duration::from_millis(25);
const GIVE_UP_AFTER: Duration = Duration::from_secs(2);

/// Distinguishes concurrent acquires (tomb names, backoff decorrelation)
/// within one process, where the pid alone cannot.
static ACQUIRE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Deterministic decorrelated backoff: derived from the pid and a
/// per-acquire nonce (never a wall clock or RNG), so two waiters that
/// both just broke the same dead lock re-race at different times
/// instead of stampeding `create_new` in lockstep.
fn jittered(nonce: u64, attempt: u32) -> Duration {
    let salt = (u64::from(std::process::id()) ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .rotate_left(attempt % 63);
    let cap_us = 1_000 * u64::from(attempt.min(4) + 1);
    RETRY_EVERY / 5 + Duration::from_micros(salt % cap_us)
}

/// Why the lock could not be taken.
#[derive(Debug)]
pub enum LockError {
    /// Another live process holds the lock.
    Held {
        /// Its pid (0 if the lock file was unreadable).
        pid: u32,
    },
    /// Filesystem failure.
    Io(io::Error),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Held { pid } => {
                write!(f, "store is locked by live process {pid}")
            }
            LockError::Io(e) => write!(f, "store lock I/O error: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

impl From<io::Error> for LockError {
    fn from(e: io::Error) -> Self {
        LockError::Io(e)
    }
}

/// True if `pid` names a live process. Uses `/proc`; on systems without
/// procfs the holder is conservatively assumed alive (a stale lock then
/// needs `histpc store repair --force-unlock` — better than two writers).
pub fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if proc_root.exists() {
        proc_root.join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Reads the pid recorded in a lock file. `Ok(None)` if the file does
/// not exist; a malformed file reads as pid 0 (unknown, treated stale).
pub fn read_holder(lock_path: &Path) -> io::Result<Option<u32>> {
    match std::fs::read_to_string(lock_path) {
        Ok(text) => {
            let mut lines = text.lines();
            let header_ok = lines.next().map(str::trim) == Some(LOCK_HEADER);
            let pid = lines
                .next()
                .and_then(|l| l.trim().strip_prefix("pid "))
                .and_then(|p| p.trim().parse().ok());
            Ok(Some(if header_ok { pid.unwrap_or(0) } else { 0 }))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// A held store lock; released (file removed) on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Path of the lock file for a store rooted at `root`.
    pub fn path_in(root: &Path) -> PathBuf {
        root.join(LOCK_FILE)
    }

    /// Acquires the store lock, breaking stale (dead-holder) locks and
    /// briefly waiting out live holders.
    ///
    /// Dead-holder breaking is hardened against the two-breaker race
    /// (both waiters read the same dead pid and break "the" lock
    /// concurrently, the slower one destroying the faster one's fresh
    /// claim): a break renames the dead file to a per-acquire tomb
    /// instead of unlinking the shared path — so a given lock
    /// *generation* can only be broken once — and the breaker re-checks
    /// the tomb's holder after the rename, restoring a live lock it
    /// stole by mistake. Every successful `create_new` is then
    /// re-verified by reading the holder back; a claim that no longer
    /// names us was broken in the window and we retry with jittered
    /// backoff rather than assume ownership.
    pub fn acquire(root: &Path) -> Result<StoreLock, LockError> {
        let path = Self::path_in(root);
        let nonce = ACQUIRE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let me = std::process::id();
        // det-audit: allow(wall-clock) — lock give-up deadline; never
        // feeds recorded data, only bounds how long we wait for a peer.
        let deadline = std::time::Instant::now() + GIVE_UP_AFTER;
        let mut attempt: u32 = 0;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use std::io::Write;
                    write!(f, "{LOCK_HEADER}\npid {me}\n")?;
                    f.sync_all()?;
                    drop(f);
                    // Generation re-check: a waiter that read the
                    // previous (dead) holder may have broken our fresh
                    // claim in the window. Only the claim the file
                    // still names is the real one.
                    if read_holder(&path)?.unwrap_or(0) == me {
                        return Ok(StoreLock { path });
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = read_holder(&path)?.unwrap_or(0);
                    if holder == 0 || !pid_alive(holder) {
                        // Dead (or unidentifiable) holder: break this
                        // lock generation by renaming it aside. Exactly
                        // one breaker's rename succeeds; the losers see
                        // NotFound and simply re-race.
                        let tomb = path.with_extension(format!("broken.{me}.{nonce}"));
                        if std::fs::rename(&path, &tomb).is_ok() {
                            // Re-check what we actually broke: if a
                            // racing waiter already broke the dead lock
                            // and re-acquired, the file we renamed is
                            // its live claim — give it back. hard_link
                            // refuses to clobber a newer claim, and the
                            // victim's own post-create re-check covers
                            // the remainder.
                            let stolen = read_holder(&tomb)
                                .ok()
                                .flatten()
                                .is_some_and(|p| p != 0 && pid_alive(p));
                            if stolen {
                                let _ = std::fs::hard_link(&tomb, &path);
                            }
                            let _ = std::fs::remove_file(&tomb);
                        }
                    } else {
                        // det-audit: allow(wall-clock) — same deadline check.
                        if std::time::Instant::now() >= deadline {
                            return Err(LockError::Held { pid: holder });
                        }
                        std::thread::sleep(RETRY_EVERY);
                        continue;
                    }
                }
                Err(e) => return Err(LockError::Io(e)),
            }
            // Broken a lock or lost our claim: back off a decorrelated
            // few milliseconds before re-racing `create_new`.
            attempt += 1;
            std::thread::sleep(jittered(nonce, attempt));
        }
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        // Release only the claim that is actually ours: if a breaker
        // stole this generation despite the re-checks, the path now
        // names the new holder and removing it would unlock a peer.
        match read_holder(&self.path) {
            Ok(Some(pid)) if pid == std::process::id() => {
                let _ = std::fs::remove_file(&self.path);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pid far above any default `pid_max`, so it is never alive.
    pub(crate) const DEAD_PID: u32 = 999_999_999;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histpc-lock-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_writes_and_drop_removes() {
        let root = scratch("basic");
        let lock = StoreLock::acquire(&root).unwrap();
        let path = StoreLock::path_in(&root);
        assert!(path.exists());
        assert_eq!(
            read_holder(&path).unwrap(),
            Some(std::process::id()),
            "lock names this process"
        );
        drop(lock);
        assert!(!path.exists());
    }

    #[test]
    fn stale_lock_is_broken() {
        let root = scratch("stale");
        let path = StoreLock::path_in(&root);
        std::fs::write(&path, format!("{LOCK_HEADER}\npid {DEAD_PID}\n")).unwrap();
        let _lock = StoreLock::acquire(&root).unwrap();
        assert_eq!(read_holder(&path).unwrap(), Some(std::process::id()));
    }

    #[test]
    fn garbage_lock_file_is_broken() {
        let root = scratch("garbage");
        std::fs::write(StoreLock::path_in(&root), "not a lock\n").unwrap();
        assert!(StoreLock::acquire(&root).is_ok());
    }

    #[test]
    fn live_holder_blocks_until_released() {
        let root = scratch("live");
        let lock = StoreLock::acquire(&root).unwrap();
        // Same pid counts as alive, so a second acquire waits; release
        // from another thread lets it through well before the deadline.
        std::thread::scope(|s| {
            let r = &root;
            let h = s.spawn(move || StoreLock::acquire(r).map(|_| ()));
            std::thread::sleep(Duration::from_millis(80));
            drop(lock);
            h.join().unwrap().unwrap();
        });
    }

    #[test]
    fn two_waiters_breaking_one_dead_lock_stay_mutually_exclusive() {
        // Both threads find the same dead-holder lock and race to break
        // it, repeatedly. The generation re-check must leave exactly one
        // holder at a time: an AtomicBool guards the critical section
        // and trips if both threads ever hold the lock together.
        use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
        let root = scratch("race");
        let path = StoreLock::path_in(&root);
        let in_critical = AtomicBool::new(false);
        let acquisitions = AtomicU32::new(0);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..2 {
                let (root, path) = (&root, &path);
                let (in_critical, acquisitions) = (&in_critical, &acquisitions);
                handles.push(s.spawn(move || {
                    for round in 0..20 {
                        let lock = StoreLock::acquire(root).expect("acquire");
                        assert!(
                            !in_critical.swap(true, Ordering::SeqCst),
                            "two threads held the store lock at once"
                        );
                        std::thread::sleep(Duration::from_micros(200));
                        in_critical.store(false, Ordering::SeqCst);
                        acquisitions.fetch_add(1, Ordering::SeqCst);
                        // Every few rounds, "crash" while holding: the
                        // release is skipped (the file no longer names
                        // us) and both waiters must race to break the
                        // dead generation left behind.
                        if round % 3 == 0 {
                            let _ =
                                std::fs::write(path, format!("{LOCK_HEADER}\npid {DEAD_PID}\n"));
                        }
                        drop(lock);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(acquisitions.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn lost_claim_is_not_released_by_drop() {
        // If a breaker replaces our lock file with its own claim, our
        // drop must not remove the new holder's file.
        let root = scratch("lostclaim");
        let path = StoreLock::path_in(&root);
        let lock = StoreLock::acquire(&root).unwrap();
        std::fs::write(&path, format!("{LOCK_HEADER}\npid {DEAD_PID}\n")).unwrap();
        drop(lock);
        assert!(path.exists(), "drop removed a claim that was not ours");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pid_alive_sanity() {
        assert!(pid_alive(std::process::id()));
        if Path::new("/proc").exists() {
            assert!(!pid_alive(DEAD_PID));
        }
    }
}
