//! Combining directives from multiple previous runs (paper §4.3).
//!
//! Two combination operators over the priority directives extracted from
//! runs A and B:
//!
//! * **A∩B** — "sets to a high/low priority only those hypothesis/focus
//!   pairs that tested true/false in both Versions A and B."
//! * **A∪B** — "sets to a high priority those hypothesis/focus pairs that
//!   tested true in either A or B, and sets to low priority those
//!   hypothesis/focus pairs which tested false in either version and did
//!   not test true in A or B."
//!
//! Prunes and thresholds are combined conservatively: the intersection
//! keeps only prunes present in both sets and takes the larger (less
//! aggressive) threshold; the union keeps all prunes and takes the
//! smaller (more sensitive) threshold. The paper only specifies the
//! priority rules; these extensions follow the same safety intuition.

use histpc_consultant::{PriorityDirective, PriorityLevel, SearchDirectives, ThresholdDirective};
use std::collections::HashMap;

type PairKey = (String, String); // (hypothesis, focus text)

fn priority_map(d: &SearchDirectives) -> HashMap<PairKey, (PriorityLevel, PriorityDirective)> {
    d.priorities
        .iter()
        .map(|p| {
            (
                (p.hypothesis.clone(), p.focus.to_string()),
                (p.level, p.clone()),
            )
        })
        .collect()
}

/// The A∩B combination.
pub fn intersect(a: &SearchDirectives, b: &SearchDirectives) -> SearchDirectives {
    let mut out = SearchDirectives::none();
    let bm = priority_map(b);
    for p in &a.priorities {
        let key = (p.hypothesis.clone(), p.focus.to_string());
        if let Some((level_b, _)) = bm.get(&key) {
            if *level_b == p.level {
                out.add_priority(p.clone());
            }
        }
    }
    for prune in &a.prunes {
        if b.prunes.contains(prune) {
            out.add_prune(prune.clone());
        }
    }
    for t in &a.thresholds {
        if let Some(vb) = b.threshold_for(&t.hypothesis) {
            out.add_threshold(ThresholdDirective {
                hypothesis: t.hypothesis.clone(),
                value: t.value.max(vb),
            });
        }
    }
    out
}

/// The A∪B combination.
pub fn union(a: &SearchDirectives, b: &SearchDirectives) -> SearchDirectives {
    let mut out = SearchDirectives::none();
    let am = priority_map(a);
    let bm = priority_map(b);
    let mut keys: Vec<&PairKey> = am.keys().chain(bm.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let la = am.get(key).map(|(l, _)| *l);
        let lb = bm.get(key).map(|(l, _)| *l);
        // High if true in either; Low if false in either and true in
        // neither.
        let level = if la == Some(PriorityLevel::High) || lb == Some(PriorityLevel::High) {
            PriorityLevel::High
        } else {
            PriorityLevel::Low
        };
        let template = am
            .get(key)
            .or_else(|| bm.get(key))
            .map(|(_, p)| p)
            .expect("key came from one of the maps");
        out.add_priority(PriorityDirective {
            hypothesis: template.hypothesis.clone(),
            focus: template.focus.clone(),
            level,
        });
    }
    for prune in a.prunes.iter().chain(&b.prunes) {
        if !out.prunes.contains(prune) {
            out.add_prune(prune.clone());
        }
    }
    let mut hyps: Vec<&str> = a
        .thresholds
        .iter()
        .chain(&b.thresholds)
        .map(|t| t.hypothesis.as_str())
        .collect();
    hyps.sort();
    hyps.dedup();
    for h in hyps {
        let v = match (a.threshold_for(h), b.threshold_for(h)) {
            (Some(x), Some(y)) => x.min(y),
            (Some(x), None) | (None, Some(x)) => x,
            (None, None) => continue,
        };
        out.add_threshold(ThresholdDirective {
            hypothesis: h.to_string(),
            value: v,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_consultant::{Prune, PruneTarget};
    use histpc_resources::{Focus, ResourceName};

    fn wp() -> Focus {
        Focus::whole_program(["Code", "Process"])
    }

    fn f(sel: &str) -> Focus {
        wp().with_selection(ResourceName::parse(sel).unwrap())
    }

    fn pri(h: &str, focus: Focus, level: PriorityLevel) -> PriorityDirective {
        PriorityDirective {
            hypothesis: h.into(),
            focus,
            level,
        }
    }

    fn dirs(ps: Vec<PriorityDirective>) -> SearchDirectives {
        let mut d = SearchDirectives::none();
        for p in ps {
            d.add_priority(p);
        }
        d
    }

    #[test]
    fn intersect_keeps_only_agreement() {
        let a = dirs(vec![
            pri("H", f("/Code/x"), PriorityLevel::High),
            pri("H", f("/Code/y"), PriorityLevel::High),
            pri("H", f("/Code/z"), PriorityLevel::Low),
        ]);
        let b = dirs(vec![
            pri("H", f("/Code/x"), PriorityLevel::High),
            pri("H", f("/Code/y"), PriorityLevel::Low),
            pri("H", f("/Code/z"), PriorityLevel::Low),
        ]);
        let i = intersect(&a, &b);
        assert_eq!(i.priority_of("H", &f("/Code/x")), PriorityLevel::High);
        // Disagreement: dropped (defaults to Medium).
        assert_eq!(i.priority_of("H", &f("/Code/y")), PriorityLevel::Medium);
        assert_eq!(i.priority_of("H", &f("/Code/z")), PriorityLevel::Low);
        assert_eq!(i.priorities.len(), 2);
    }

    #[test]
    fn union_prefers_high_over_low() {
        let a = dirs(vec![
            pri("H", f("/Code/x"), PriorityLevel::High),
            pri("H", f("/Code/y"), PriorityLevel::Low),
        ]);
        let b = dirs(vec![
            pri("H", f("/Code/y"), PriorityLevel::High),
            pri("H", f("/Code/z"), PriorityLevel::Low),
        ]);
        let u = union(&a, &b);
        assert_eq!(u.priority_of("H", &f("/Code/x")), PriorityLevel::High);
        // True in either wins over false in the other.
        assert_eq!(u.priority_of("H", &f("/Code/y")), PriorityLevel::High);
        assert_eq!(u.priority_of("H", &f("/Code/z")), PriorityLevel::Low);
        assert_eq!(u.priorities.len(), 3);
    }

    #[test]
    fn intersection_is_subset_of_union() {
        let a = dirs(vec![
            pri("H", f("/Code/x"), PriorityLevel::High),
            pri("H", f("/Code/y"), PriorityLevel::Low),
            pri("H", f("/Code/w"), PriorityLevel::High),
        ]);
        let b = dirs(vec![
            pri("H", f("/Code/x"), PriorityLevel::High),
            pri("H", f("/Code/y"), PriorityLevel::Low),
            pri("H", f("/Code/z"), PriorityLevel::High),
        ]);
        let i = intersect(&a, &b);
        let u = union(&a, &b);
        assert!(i.priorities.len() <= u.priorities.len());
        for p in &i.priorities {
            // Every intersection pair appears in the union (the level may
            // only be promoted High in the union, never dropped).
            let ul = u.priority_of(&p.hypothesis, &p.focus);
            assert_ne!(ul, PriorityLevel::Medium);
        }
    }

    #[test]
    fn prunes_and_thresholds_combine_conservatively() {
        let mut a = SearchDirectives::none();
        let mut b = SearchDirectives::none();
        let shared = Prune {
            hypothesis: None,
            target: PruneTarget::Resource(ResourceName::parse("/Machine").unwrap()),
        };
        let only_a = Prune {
            hypothesis: Some("H".into()),
            target: PruneTarget::Resource(ResourceName::parse("/Code/x").unwrap()),
        };
        a.add_prune(shared.clone());
        a.add_prune(only_a.clone());
        b.add_prune(shared.clone());
        a.add_threshold(ThresholdDirective {
            hypothesis: "H".into(),
            value: 0.12,
        });
        b.add_threshold(ThresholdDirective {
            hypothesis: "H".into(),
            value: 0.2,
        });
        let i = intersect(&a, &b);
        assert_eq!(i.prunes, vec![shared.clone()]);
        assert_eq!(i.threshold_for("H"), Some(0.2)); // max = conservative
        let u = union(&a, &b);
        assert_eq!(u.prunes.len(), 2);
        assert_eq!(u.threshold_for("H"), Some(0.12)); // min = sensitive
    }

    #[test]
    fn empty_inputs() {
        let e = SearchDirectives::none();
        let a = dirs(vec![pri("H", wp(), PriorityLevel::High)]);
        assert_eq!(intersect(&a, &e).priorities.len(), 0);
        assert_eq!(union(&a, &e).priorities.len(), 1);
        assert_eq!(union(&e, &e).len(), 0);
    }
}
