//! Resource-name mapping between executions (paper §3.2).
//!
//! "If we are to relate performance results from a previous run to the
//! current run, we must be able to establish an equivalency between (map)
//! the differently named resources." Mappings are directives of the form
//! `map resourceName1 resourceName2`, applied to an extracted directive
//! list before it is read into the Performance Consultant.
//!
//! Beyond user-specified mapping files, [`MappingSet::suggest`] implements
//! the paper's future-work direction of *automating* the mapping: it pairs
//! resources unique to each of two executions by position (machine nodes,
//! processes) and by name/structure similarity (code modules and
//! functions).

use histpc_consultant::{PruneTarget, SearchDirectives};
use histpc_resources::diag::{tokenize, Diagnostic, Span, MEMORY_FILE};
use histpc_resources::{ResourceName, CODE, MACHINE, PROCESS};

/// An ordered list of `map from to` directives.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MappingSet {
    maps: Vec<(ResourceName, ResourceName)>,
}

/// One `map from to` line together with the source spans linters need to
/// point at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocatedMap {
    /// The name being mapped away from (the previous run's name).
    pub from: ResourceName,
    /// The name it maps to (the new run's name).
    pub to: ResourceName,
    /// Span of the whole `map` line (trimmed content).
    pub span: Span,
    /// Span of the `from` token.
    pub from_span: Span,
    /// Span of the `to` token.
    pub to_span: Span,
}

/// Parses a mapping file with error recovery: every line that parses
/// contributes a [`LocatedMap`], every line that does not contributes an
/// error-severity [`Diagnostic`] (codes `HL010`, `HL011`), and parsing
/// always continues to the end of the input. Cross-hierarchy maps are
/// rejected here (HL011) because applying one would produce a focus with
/// two selections in one hierarchy.
pub fn parse_with_spans(text: &str, file: &str) -> (Vec<LocatedMap>, Vec<Diagnostic>) {
    let mut located = Vec::new();
    let mut diags = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tokens = tokenize(raw);
        let line_span = Span::new(
            lineno,
            tokens[0].col_start,
            tokens.last().expect("non-empty line").col_end,
        );
        if tokens[0].text != "map" || tokens.len() != 3 {
            diags.push(
                Diagnostic::error(
                    "HL010",
                    format!("expected `map <from> <to>`, found `{trimmed}`"),
                )
                .with_file(file)
                .with_span(line_span),
            );
            continue;
        }
        let parse_name = |tok: histpc_resources::diag::Token<'_>| {
            ResourceName::parse(tok.text).map_err(|e| {
                Diagnostic::error("HL010", format!("malformed resource name: {e}"))
                    .with_file(file)
                    .with_span(tok.span(lineno))
            })
        };
        let (from, to) = match (parse_name(tokens[1]), parse_name(tokens[2])) {
            (Ok(f), Ok(t)) => (f, t),
            (a, b) => {
                diags.extend(a.err());
                diags.extend(b.err());
                continue;
            }
        };
        if from.hierarchy() != to.hierarchy() {
            diags.push(
                Diagnostic::error(
                    "HL011",
                    format!(
                        "mapping crosses hierarchies: `{from}` is in /{} but `{to}` is in /{}",
                        from.hierarchy(),
                        to.hierarchy()
                    ),
                )
                .with_file(file)
                .with_span(line_span)
                .with_suggestion("a resource can only be mapped within its own hierarchy"),
            );
            continue;
        }
        located.push(LocatedMap {
            from,
            to,
            span: line_span,
            from_span: tokens[1].span(lineno),
            to_span: tokens[2].span(lineno),
        });
    }
    (located, diags)
}

impl MappingSet {
    /// An empty mapping set.
    pub fn new() -> MappingSet {
        MappingSet::default()
    }

    /// Adds one mapping (from → to).
    pub fn add(&mut self, from: ResourceName, to: ResourceName) {
        self.maps.push((from, to));
    }

    /// The mappings, in application order.
    pub fn entries(&self) -> &[(ResourceName, ResourceName)] {
        &self.maps
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// True if no mappings are present.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Rewrites one resource name: the longest matching `from` prefix
    /// wins; unmatched names pass through unchanged.
    pub fn apply_to_name(&self, name: &ResourceName) -> ResourceName {
        let mut best: Option<&(ResourceName, ResourceName)> = None;
        for m in &self.maps {
            if m.0.is_prefix_of(name) {
                let better = match best {
                    None => true,
                    Some(b) => m.0.segments().len() > b.0.segments().len(),
                };
                if better {
                    best = Some(m);
                }
            }
        }
        match best {
            Some((from, to)) => name.rewrite_prefix(from, to).expect("prefix checked"),
            None => name.clone(),
        }
    }

    /// Rewrites every selection of a focus.
    pub fn apply_to_focus(&self, focus: &histpc_resources::Focus) -> histpc_resources::Focus {
        let sels: Vec<ResourceName> = focus.selections().map(|s| self.apply_to_name(s)).collect();
        // Mapped names stay within their hierarchy, so this cannot
        // produce duplicates.
        histpc_resources::Focus::new(sels).expect("mapping preserves hierarchies")
    }

    /// Rewrites all foci and resource names in a directive set — the
    /// paper's workflow: "we apply the specified mappings to the list of
    /// extracted search directives, then read the directives into the
    /// Performance Consultant."
    pub fn apply_to_directives(&self, d: &SearchDirectives) -> SearchDirectives {
        let mut out = SearchDirectives::none();
        for p in &d.prunes {
            out.add_prune(histpc_consultant::Prune {
                hypothesis: p.hypothesis.clone(),
                target: match &p.target {
                    PruneTarget::Resource(r) => PruneTarget::Resource(self.apply_to_name(r)),
                    PruneTarget::Pair(f) => PruneTarget::Pair(self.apply_to_focus(f)),
                },
            });
        }
        for p in &d.priorities {
            out.add_priority(histpc_consultant::PriorityDirective {
                hypothesis: p.hypothesis.clone(),
                focus: self.apply_to_focus(&p.focus),
                level: p.level,
            });
        }
        for t in &d.thresholds {
            out.add_threshold(t.clone());
        }
        out
    }

    /// Serializes to `map from to` lines.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# histpc mappings v1\n");
        for (from, to) in &self.maps {
            out.push_str(&format!("map {from} {to}\n"));
        }
        out
    }

    /// Parses `map from to` lines (blank lines and `#` comments skipped).
    /// On failure the first error-severity [`Diagnostic`] is returned; use
    /// [`parse_with_spans`] to recover all diagnostics at once.
    pub fn parse(text: &str) -> Result<MappingSet, Diagnostic> {
        let (located, diags) = parse_with_spans(text, MEMORY_FILE);
        match diags.into_iter().find(|d| d.is_error()) {
            Some(err) => Err(err),
            None => Ok(MappingSet::from_located(&located)),
        }
    }

    /// Builds a mapping set from located maps (spans discarded).
    pub fn from_located(located: &[LocatedMap]) -> MappingSet {
        let mut out = MappingSet::new();
        for m in located {
            out.add(m.from.clone(), m.to.clone());
        }
        out
    }

    /// Suggests mappings from the resources of a previous execution to
    /// those of a new one:
    ///
    /// * Machine nodes and processes unique to each side are paired
    ///   positionally (sorted order) — the paper's "8-node application
    ///   might run on nodes 0-7 during one run and 8-15 on the next".
    /// * Code modules unique to each side are paired by name similarity;
    ///   functions within paired modules are paired by name similarity
    ///   (covering renames like `oned.f` → `onednb.f`, `sweep1d` →
    ///   `nbsweep`).
    pub fn suggest(old: &[ResourceName], new: &[ResourceName]) -> MappingSet {
        let mut out = MappingSet::new();

        // Positional pairing for Machine and Process children.
        for hierarchy in [MACHINE, PROCESS] {
            let mut old_only = unique_depth1(old, new, hierarchy);
            let mut new_only = unique_depth1(new, old, hierarchy);
            old_only.sort();
            new_only.sort();
            for (f, t) in old_only.iter().zip(new_only.iter()) {
                out.add(f.clone(), t.clone());
            }
        }

        // Similarity pairing for Code modules.
        let old_mods = unique_depth1(old, new, CODE);
        let mut new_mods = unique_depth1(new, old, CODE);
        for om in &old_mods {
            let Some((best_idx, score)) = new_mods
                .iter()
                .enumerate()
                .map(|(i, nm)| (i, similarity(om.label(), nm.label())))
                .max_by(|a, b| a.1.total_cmp(&b.1))
            else {
                continue;
            };
            if score < 0.4 {
                continue; // too dissimilar to map confidently
            }
            let nm = new_mods.remove(best_idx);
            out.add(om.clone(), nm.clone());
            // Pair the functions under the two modules.
            let old_funcs = functions_under(old, om);
            let mut new_funcs = functions_under(new, &nm);
            for of in &old_funcs {
                if new_funcs.iter().any(|nf| nf.label() == of.label()) {
                    continue; // same name: no mapping needed after module map
                }
                let Some((bi, fscore)) = new_funcs
                    .iter()
                    .enumerate()
                    .map(|(i, nf)| (i, similarity(of.label(), nf.label())))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                else {
                    continue;
                };
                if fscore < 0.4 {
                    continue;
                }
                let nf = new_funcs.remove(bi);
                out.add(of.clone(), nf.clone());
            }
        }
        out
    }
}

/// Depth-1 resources of `hierarchy` present in `a` but not in `b`.
fn unique_depth1(a: &[ResourceName], b: &[ResourceName], hierarchy: &str) -> Vec<ResourceName> {
    a.iter()
        .filter(|r| r.hierarchy() == hierarchy && r.depth() == 1)
        .filter(|r| !b.contains(r))
        .cloned()
        .collect()
}

/// Depth-2 resources below `module`.
fn functions_under(all: &[ResourceName], module: &ResourceName) -> Vec<ResourceName> {
    all.iter()
        .filter(|r| r.depth() == 2 && module.is_ancestor_of(r))
        .cloned()
        .collect()
}

/// Name similarity in [0, 1]: longest common subsequence over max length.
fn similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[a.len()][b.len()] as f64 / a.len().max(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_consultant::{PriorityDirective, PriorityLevel};
    use histpc_resources::Focus;

    fn n(s: &str) -> ResourceName {
        ResourceName::parse(s).unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut m = MappingSet::new();
        m.add(n("/Code/oned.f"), n("/Code/onednb.f"));
        m.add(n("/Code/oned.f/main"), n("/Code/onednb.f/start"));
        // The function-level mapping is more specific and wins.
        assert_eq!(
            m.apply_to_name(&n("/Code/oned.f/main")),
            n("/Code/onednb.f/start")
        );
        // Other functions fall back to the module mapping.
        assert_eq!(
            m.apply_to_name(&n("/Code/oned.f/diff")),
            n("/Code/onednb.f/diff")
        );
        // Unrelated names pass through.
        assert_eq!(m.apply_to_name(&n("/Code/sweep.f")), n("/Code/sweep.f"));
    }

    #[test]
    fn apply_to_focus_rewrites_selections() {
        let mut m = MappingSet::new();
        m.add(n("/Machine/node01"), n("/Machine/node09"));
        let f = Focus::whole_program(["Code", "Machine"]).with_selection(n("/Machine/node01"));
        assert_eq!(
            m.apply_to_focus(&f).selection("Machine"),
            Some(&n("/Machine/node09"))
        );
    }

    #[test]
    fn apply_to_directives_rewrites_everything() {
        let mut m = MappingSet::new();
        m.add(n("/Code/oned.f"), n("/Code/onednb.f"));
        let mut d = SearchDirectives::none();
        d.add_priority(PriorityDirective {
            hypothesis: "CPUbound".into(),
            focus: Focus::whole_program(["Code"]).with_selection(n("/Code/oned.f/main")),
            level: PriorityLevel::High,
        });
        d.add_prune(histpc_consultant::Prune {
            hypothesis: None,
            target: PruneTarget::Resource(n("/Code/oned.f/main")),
        });
        let mapped = m.apply_to_directives(&d);
        assert_eq!(
            mapped.priorities[0].focus.selection("Code"),
            Some(&n("/Code/onednb.f/main"))
        );
        match &mapped.prunes[0].target {
            PruneTarget::Resource(r) => assert_eq!(r, &n("/Code/onednb.f/main")),
            _ => panic!("wrong target kind"),
        }
    }

    #[test]
    fn text_roundtrip() {
        let mut m = MappingSet::new();
        m.add(n("/Code/exchng1.f"), n("/Code/nbexchng.f"));
        m.add(n("/Machine/node01"), n("/Machine/node09"));
        let parsed = MappingSet::parse(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn parse_rejects_cross_hierarchy_and_garbage() {
        assert!(MappingSet::parse("map /Code/x /Machine/y").is_err());
        assert!(MappingSet::parse("map /Code/x").is_err());
        assert!(MappingSet::parse("remap /Code/x /Code/y").is_err());
        assert!(MappingSet::parse("map Code/x /Code/y").is_err());
        assert!(MappingSet::parse("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn suggest_pairs_machines_positionally() {
        // Nodes 1-4 in the old run, 9-12 in the new run.
        let old: Vec<ResourceName> = (1..=4)
            .map(|i| n(&format!("/Machine/node{i:02}")))
            .collect();
        let new: Vec<ResourceName> = (9..=12)
            .map(|i| n(&format!("/Machine/node{i:02}")))
            .collect();
        let m = MappingSet::suggest(&old, &new);
        assert_eq!(m.len(), 4);
        assert_eq!(m.apply_to_name(&n("/Machine/node01")), n("/Machine/node09"));
        assert_eq!(m.apply_to_name(&n("/Machine/node04")), n("/Machine/node12"));
    }

    #[test]
    fn suggest_pairs_renamed_modules_and_functions() {
        // The paper's fig. 3: version A vs version B of the Poisson code.
        let old = vec![
            n("/Code/oned.f"),
            n("/Code/oned.f/main"),
            n("/Code/exchng1.f"),
            n("/Code/exchng1.f/exchng1"),
            n("/Code/sweep.f"),
            n("/Code/sweep.f/sweep1d"),
            n("/Code/diff.f"),
            n("/Code/diff.f/diff"),
        ];
        let new = vec![
            n("/Code/onednb.f"),
            n("/Code/onednb.f/main"),
            n("/Code/nbexchng.f"),
            n("/Code/nbexchng.f/nbexchng1"),
            n("/Code/nbsweep.f"),
            n("/Code/nbsweep.f/nbsweep"),
            n("/Code/diff.f"),
            n("/Code/diff.f/diff"),
        ];
        let m = MappingSet::suggest(&old, &new);
        // Shared module diff.f needs no mapping.
        assert_eq!(
            m.apply_to_name(&n("/Code/diff.f/diff")),
            n("/Code/diff.f/diff")
        );
        assert_eq!(m.apply_to_name(&n("/Code/oned.f")), n("/Code/onednb.f"));
        // The paper's fig. 3 mapping exactly:
        // map /Code/exchng1.f/exchng1 /Code/nbexchng.f/nbexchng1
        assert_eq!(
            m.apply_to_name(&n("/Code/exchng1.f/exchng1")),
            n("/Code/nbexchng.f/nbexchng1")
        );
        // The function rename sweep1d -> nbsweep is similarity-paired.
        assert_eq!(
            m.apply_to_name(&n("/Code/sweep.f/sweep1d")),
            n("/Code/nbsweep.f/nbsweep")
        );
    }

    #[test]
    fn similarity_sanity() {
        assert!(similarity("exchng1", "nbexchng1") > 0.7);
        assert!(similarity("oned.f", "onednb.f") > 0.7);
        assert!(similarity("alpha", "omega") < 0.5);
        assert_eq!(similarity("same", "same"), 1.0);
        assert_eq!(similarity("", "x"), 0.0);
    }
}
