//! `histpc-history`: historical performance data for directed diagnosis.
//!
//! The paper's contribution (§3): save performance and structural data
//! from executions of an application, then extract knowledge useful for
//! diagnosis — **search directives** (prunes, priorities, thresholds) —
//! and **map** resource names between executions so directives from one
//! run (or one code version) apply to another.
//!
//! * [`record`] — the persisted result of one execution: resources,
//!   hypothesis/focus outcomes, thresholds, instrumentation statistics.
//! * [`store`] — a crash-consistent, directory-backed multi-execution
//!   store: checksum-framed records ([`frame`]), a write-ahead
//!   [`journal`], advisory multi-session [`lock`]ing, a versioned
//!   [`manifest`], a read-only checker ([`fsck`]), an advisory
//!   per-record derived-fact sidecar ([`factcache`]) for incremental
//!   corpus analysis, crash-safe daemon session [`lease`]s, and a
//!   per-source-run [`trust`] ledger fed by shadow audits and corpus
//!   conflicts.
//! * [`format`] — a line-oriented, human-diffable text serialization.
//! * [`extract`] — directive harvesting: priorities from true/false
//!   outcomes, historic prunes (trivial functions, false pairs, redundant
//!   one-to-one hierarchies), general prunes, and application-specific
//!   thresholds.
//! * [`mapping`] — `map res1 res2` directives plus automatic mapping
//!   suggestions between executions.
//! * [`combine`] — the paper's A∩B and A∪B multi-run combinations.
//! * [`compare`] — quantitative comparison of two executions (the §6
//!   experiment-management direction): structural and performance diffs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combine;
pub mod compare;
pub mod extract;
pub mod factcache;
pub mod format;
pub mod frame;
pub mod fsck;
pub mod journal;
pub mod lease;
pub mod lock;
pub mod manifest;
pub mod mapping;
pub mod record;
pub mod store;
pub mod trust;

pub use combine::{intersect, union};
pub use compare::{compare, ComparisonReport, PairDiff};
pub use extract::{
    derive_threshold_from_profile, detection_times, extract, ground_truth, postmortem_record,
    ExtractionOptions, MIN_THRESHOLD_SAMPLES,
};
pub use factcache::FactCache;
pub use format::FormatError;
pub use fsck::fsck;
pub use lease::Lease;
pub use mapping::{LocatedMap, MappingSet};
pub use record::ExecutionRecord;
pub use store::{ExecutionStore, StoreError};
pub use trust::{TrustLedger, TrustVerdict};
