//! Append-only write-ahead journal for store mutations.
//!
//! Every mutation of an [`ExecutionStore`](crate::store::ExecutionStore)
//! appends an intent line to `<root>/JOURNAL` *before* touching any
//! record file, and an `ok` line after the mutation (write + rename +
//! manifest update) completes:
//!
//! ```text
//! histpc-journal v1
//! put 8d2f6a901bc4e713 record poisson a1
//! ok
//! del shg poisson a1
//! ok
//! put 1f00dd0912aa34cd record poisson a2
//! ```
//!
//! A trailing intent without its `ok` means the process died mid-mutation;
//! recovery on the next [`open`](crate::store::ExecutionStore::open) uses
//! the intent (and its recorded payload checksum) to roll the mutation
//! forward or back. Writers are serialized by the store lock, so at most
//! the final entry can ever be uncommitted. The reader tolerates a torn
//! trailing line — an append cut mid-line parses as "no entry", which is
//! exactly what an unfinished append means.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Header line of the journal file.
pub const JOURNAL_HEADER: &str = "histpc-journal v1";

/// File name of the journal inside the store root.
pub const JOURNAL_FILE: &str = "JOURNAL";

/// One journal line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// Intent to write `<app>/<label>.<ext>` whose framed payload hashes
    /// to `fnv`.
    Put {
        /// FNV-1a 64 checksum of the payload being written.
        fnv: u64,
        /// File extension (`record`, `shg`, ...).
        ext: String,
        /// Application directory.
        app: String,
        /// Run label (may contain spaces; always the last field).
        label: String,
    },
    /// Intent to delete `<app>/<label>.<ext>`.
    Del {
        /// File extension.
        ext: String,
        /// Application directory.
        app: String,
        /// Run label.
        label: String,
    },
    /// The immediately preceding intent completed.
    Ok,
}

impl JournalEntry {
    fn to_line(&self) -> String {
        match self {
            JournalEntry::Put {
                fnv,
                ext,
                app,
                label,
            } => format!("put {fnv:016x} {ext} {app} {label}"),
            JournalEntry::Del { ext, app, label } => format!("del {ext} {app} {label}"),
            JournalEntry::Ok => "ok".to_string(),
        }
    }

    fn parse(line: &str) -> Option<JournalEntry> {
        let line = line.trim_end();
        if line == "ok" {
            return Some(JournalEntry::Ok);
        }
        if let Some(rest) = line.strip_prefix("put ") {
            let mut words = rest.splitn(4, ' ');
            let fnv = u64::from_str_radix(words.next()?, 16).ok()?;
            let ext = words.next()?.to_string();
            let app = words.next()?.to_string();
            let label = words.next()?.to_string();
            if ext.is_empty() || app.is_empty() || label.is_empty() {
                return None;
            }
            return Some(JournalEntry::Put {
                fnv,
                ext,
                app,
                label,
            });
        }
        if let Some(rest) = line.strip_prefix("del ") {
            let mut words = rest.splitn(3, ' ');
            let ext = words.next()?.to_string();
            let app = words.next()?.to_string();
            let label = words.next()?.to_string();
            if ext.is_empty() || app.is_empty() || label.is_empty() {
                return None;
            }
            return Some(JournalEntry::Del { ext, app, label });
        }
        None
    }
}

/// What a journal read found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalState {
    /// Entries that parsed, in file order.
    pub entries: Vec<JournalEntry>,
    /// True if any line failed to parse (a torn append or external
    /// damage). Parsing stops at the first such line.
    pub torn: bool,
}

impl JournalState {
    /// The trailing intent that never got its `ok`, if any.
    pub fn uncommitted(&self) -> Option<&JournalEntry> {
        match self.entries.last() {
            Some(e @ (JournalEntry::Put { .. } | JournalEntry::Del { .. })) => Some(e),
            _ => None,
        }
    }
}

/// Handle to a store's journal file.
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// The journal of the store rooted at `root`.
    pub fn at(root: &Path) -> Journal {
        Journal {
            path: root.join(JOURNAL_FILE),
        }
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True if the journal file exists (the store has been touched by
    /// the v1 write protocol at least once).
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Appends one entry, creating the journal (with its header) first
    /// if needed.
    pub fn append(&self, entry: &JournalEntry) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if f.metadata()?.len() == 0 {
            writeln!(f, "{JOURNAL_HEADER}")?;
        }
        writeln!(f, "{}", entry.to_line())?;
        Ok(())
    }

    /// Reads the journal. A missing file reads as empty and clean; a
    /// header-only file likewise. Unparseable lines stop the read and
    /// set `torn` (a torn trailing append is the normal crash shape).
    pub fn read(&self) -> io::Result<JournalState> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(JournalState {
                    entries: Vec::new(),
                    torn: false,
                })
            }
            Err(e) => return Err(e),
        };
        let mut entries = Vec::new();
        let mut torn = false;
        let ends_clean = text.ends_with('\n');
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if i == 0 {
                if line.trim() != JOURNAL_HEADER {
                    torn = true;
                    break;
                }
                continue;
            }
            let last = i + 1 == lines.len();
            match JournalEntry::parse(line) {
                // A final line without its newline is an append that
                // never finished — even if the bytes happen to parse,
                // the entry was not durably written.
                Some(e) if !last || ends_clean => entries.push(e),
                _ => {
                    torn = true;
                    break;
                }
            }
        }
        Ok(JournalState { entries, torn })
    }

    /// Truncates the journal back to just its header (after recovery has
    /// settled every entry, history is no longer needed).
    pub fn reset(&self) -> io::Result<()> {
        std::fs::write(&self.path, format!("{JOURNAL_HEADER}\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histpc-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn put(label: &str) -> JournalEntry {
        JournalEntry::Put {
            fnv: 0xdead_beef_0000_1111,
            ext: "record".into(),
            app: "poisson".into(),
            label: label.into(),
        }
    }

    #[test]
    fn append_and_read_roundtrip() {
        let j = Journal::at(&scratch("roundtrip"));
        assert!(!j.exists());
        j.append(&put("a1")).unwrap();
        j.append(&JournalEntry::Ok).unwrap();
        j.append(&JournalEntry::Del {
            ext: "shg".into(),
            app: "poisson".into(),
            label: "a1".into(),
        })
        .unwrap();
        let st = j.read().unwrap();
        assert!(!st.torn);
        assert_eq!(st.entries.len(), 3);
        assert_eq!(st.uncommitted(), st.entries.last());
        j.append(&JournalEntry::Ok).unwrap();
        assert_eq!(j.read().unwrap().uncommitted(), None);
    }

    #[test]
    fn missing_journal_reads_empty() {
        let j = Journal::at(&scratch("missing"));
        let st = j.read().unwrap();
        assert!(st.entries.is_empty());
        assert!(!st.torn);
        assert_eq!(st.uncommitted(), None);
    }

    #[test]
    fn label_with_spaces_survives() {
        let j = Journal::at(&scratch("spaces"));
        j.append(&put("run one two")).unwrap();
        let st = j.read().unwrap();
        assert_eq!(st.entries[0], put("run one two"));
    }

    #[test]
    fn torn_trailing_line_is_tolerated() {
        let dir = scratch("torn");
        let j = Journal::at(&dir);
        j.append(&put("a1")).unwrap();
        j.append(&JournalEntry::Ok).unwrap();
        // Simulate an append cut mid-line: no trailing newline.
        let mut text = std::fs::read_to_string(j.path()).unwrap();
        text.push_str("put 00ff");
        std::fs::write(j.path(), &text).unwrap();
        let st = j.read().unwrap();
        assert!(st.torn);
        assert_eq!(st.entries.len(), 2);
        assert_eq!(st.uncommitted(), None);
    }

    #[test]
    fn complete_looking_line_without_newline_is_still_torn() {
        let dir = scratch("nonewline");
        let j = Journal::at(&dir);
        j.append(&put("a1")).unwrap();
        let mut text = std::fs::read_to_string(j.path()).unwrap();
        text.push_str("ok"); // parses, but the append never finished
        std::fs::write(j.path(), &text).unwrap();
        let st = j.read().unwrap();
        assert!(st.torn);
        assert_eq!(st.uncommitted(), Some(&put("a1")));
    }

    #[test]
    fn reset_leaves_header_only() {
        let j = Journal::at(&scratch("reset"));
        j.append(&put("a1")).unwrap();
        j.reset().unwrap();
        let st = j.read().unwrap();
        assert!(st.entries.is_empty());
        assert!(!st.torn);
        assert_eq!(
            std::fs::read_to_string(j.path()).unwrap(),
            format!("{JOURNAL_HEADER}\n")
        );
    }
}
